//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment for this repository cannot reach crates.io, so this
//! workspace-local crate provides a small wall-clock benchmarking harness with
//! the same surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`bench_function`, `bench_with_input`, `sample_size`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurements are simple: per sample, the closure is run once and timed
//! with [`std::time::Instant`]; the harness reports min/mean/median over
//! `sample_size` samples after a few warm-up runs. There is no statistical
//! analysis, outlier detection, or HTML report. Set the environment variable
//! `CRITERION_QUICK=1` (the CI smoke job does) to cap samples at 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque value barrier that prevents the optimizer from deleting the
/// benchmarked computation.
///
/// Without inline assembly (this crate forbids `unsafe`), the strongest safe
/// barrier is a read through a volatile-like opaque function boundary; a
/// `#[inline(never)]` identity function is sufficient to keep the paper's
/// workloads from being constant-folded.
#[inline(never)]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus the input
/// parameter it was run with.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId { name: name.into(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine` by running it repeatedly and recording wall-clock
    /// durations.
    // The name mirrors the real criterion API this crate stands in for.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few iterations untimed so lazy initialization and
        // cache effects do not dominate the first sample.
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher =
            Bencher { samples: Vec::new(), sample_size: self.effective_sample_size() };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher =
            Bencher { samples: Vec::new(), sample_size: self.effective_sample_size() };
        routine(&mut bencher, input);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Finishes the group (prints a trailing newline for readability).
    pub fn finish(&mut self) {
        if !self.criterion.quiet {
            println!();
        }
    }

    fn effective_sample_size(&self) -> usize {
        if std::env::var_os("CRITERION_QUICK").is_some() {
            self.sample_size.min(10)
        } else {
            self.sample_size
        }
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        if self.criterion.quiet || samples.is_empty() {
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "{}/{:<40} min {:>12?}  mean {:>12?}  median {:>12?}  ({} samples)",
            self.name,
            id,
            sorted[0],
            mean,
            median,
            sorted.len()
        );
    }
}

/// The benchmark harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    quiet: bool,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut criterion = Criterion { quiet: true };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            });
        });
        group.finish();
        // 2 warm-up runs + 5 samples.
        assert_eq!(ran, 7);
    }

    #[test]
    fn id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("mul", 256).to_string(), "mul/256");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
