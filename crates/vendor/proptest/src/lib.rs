//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository cannot reach crates.io, so this
//! workspace-local crate reimplements the subset of the proptest API that the
//! workspace's property tests use: the [`proptest!`] macro with `arg in
//! strategy` bindings and an optional `#![proptest_config(..)]` header, the
//! [`strategy::Strategy`] trait (ranges, [`arbitrary::any`], `prop_map`),
//! [`collection::vec`], and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via the
//!   standard assertion message; it is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the test
//!   function name (or from `PROPTEST_SEED` if set), so runs are reproducible
//!   by default and can be varied explicitly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;

    /// A generator of random values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply draws a value from an RNG.
    pub trait Strategy {
        /// The type of values produced by this strategy.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_128 {
        ($t:ty, $u:ty) => {
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.abs_diff(self.start);
                    self.start.wrapping_add(crate::arbitrary::uniform_u128_below(rng, span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = end.abs_diff(start);
                    if span == u128::MAX {
                        return crate::arbitrary::random_u128(rng) as $t;
                    }
                    start.wrapping_add(crate::arbitrary::uniform_u128_below(rng, span + 1) as $t)
                }
            }
        };
    }

    impl_range_strategy_128!(u128, u128);
    impl_range_strategy_128!(i128, u128);
}

pub mod arbitrary {
    //! The [`any`] entry point for type-driven generation.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy generating arbitrary values of `T`; see [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// Returns a strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn random_u128(rng: &mut StdRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }

    /// Uniform sample in `[0, bound)` over 128 bits, avoiding modulo bias.
    pub(crate) fn uniform_u128_below(rng: &mut StdRng, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return random_u128(rng) & (bound - 1);
        }
        let zone = u128::MAX - (u128::MAX % bound) - 1;
        loop {
            let v = random_u128(rng);
            if v <= zone {
                return v % bound;
            }
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut StdRng) -> u128 {
            random_u128(rng)
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut StdRng) -> i128 {
            random_u128(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::RangeInclusive<usize>) -> VecStrategy<S> {
        VecStrategy { element, min: *size.start(), max: *size.end() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-run configuration.

    /// Configuration for a `proptest!` block (case count only).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Derives the RNG seed for a test: `PROPTEST_SEED` if set, otherwise a
    /// stable hash of the test name.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse() {
                return seed;
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import of the common proptest surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` test, reporting the values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` test, reporting the values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_eq!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        assert_eq!($lhs, $rhs, $($fmt)*)
    };
}

/// Declares property tests with `arg in strategy` bindings.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for _ in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
