//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this workspace-local crate provides the (small) subset of the `rand` 0.8
//! API that the workspace actually uses:
//!
//! * the [`Rng`] trait with `gen_range` (over integer and `f64` ranges) and
//!   `gen_bool`;
//! * the [`SeedableRng`] trait with `seed_from_u64`;
//! * [`rngs::StdRng`], here a xoshiro256** generator seeded via splitmix64.
//!
//! The generator is deterministic and high-quality for simulation purposes,
//! but it is **not** cryptographically secure and the exact streams differ
//! from the real `rand` crate. All consumers in this workspace seed
//! explicitly and only rely on determinism, not on a particular stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness, mirroring the subset of `rand::Rng` used here.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators, mirroring the subset of `rand::SeedableRng` used here.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // Use the top 53 bits for a uniformly distributed mantissa.
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Range types that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.abs_diff(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Uniform sample in `[0, bound)` by rejection, avoiding modulo bias.
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as recommended by the xoshiro
            // authors, so that nearby seeds give unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let x: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&x));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
