//! Weighted DNF lineage for aggregate queries.
//!
//! For a Boolean answer, lineage is a positive [`Dnf`] and attribution asks
//! how often a fact flips the answer. For an **aggregate** answer
//! (`COUNT(*)`, `SUM(e)`, `MIN(e)`, `MAX(e)` over an answer group), each
//! clause additionally carries the numeric contribution of its grounding, and
//! a possible world no longer evaluates to a truth value but to an aggregate:
//!
//! * `COUNT`/`SUM`: the sum of the weights of the satisfied clauses (bag
//!   semantics — every grounding contributes, even when its clause is
//!   subsumed by another);
//! * `MIN`/`MAX`: the least/greatest weight among the satisfied clauses.
//!
//! A world satisfying no clause evaluates to **0** by convention (the group
//! is empty, so its total is zero; for `MIN`/`MAX` this matches the common
//! SQL reading of an absent group as a zero contribution). The aggregate
//! Banzhaf value of a fact is the sum over all worlds of the change in the
//! aggregate caused by inserting the fact — the direct generalization of
//! Eq. (1) of the paper, following the aggregate-attribution follow-up work
//! (arXiv 2506.16923).
//!
//! [`WeightedDnf`] is the canonical carrier: clauses are sorted and
//! duplicates are merged *kind-aware* (`COUNT`/`SUM` add their weights,
//! `MIN`/`MAX` keep the least/greatest), so two presentations of the same
//! weighted function compare equal. [`AggregateValue`] is the small
//! propagation abstraction (count/sum with a zero identity, min/max with
//! ±∞ identities) used by world evaluation and sampling estimators.

use crate::{Assignment, Clause, Dnf, Var, VarSet};
use banzhaf_arith::Rational;
use std::fmt;

/// Maximum universe size the brute-force aggregate routines accept.
const MAX_BRUTE_VARS: usize = 26;

/// The aggregate function of a query head.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AggregateKind {
    /// `COUNT(*)` — every clause weighs 1.
    Count,
    /// `SUM(e)` — clauses weigh the grounding's value of `e`.
    Sum,
    /// `MIN(e)` — the least weight among satisfied clauses.
    Min,
    /// `MAX(e)` — the greatest weight among satisfied clauses.
    Max,
}

impl AggregateKind {
    /// All aggregate kinds.
    pub const ALL: [AggregateKind; 4] =
        [AggregateKind::Count, AggregateKind::Sum, AggregateKind::Min, AggregateKind::Max];

    /// The SQL spelling of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggregateKind::Count => "COUNT",
            AggregateKind::Sum => "SUM",
            AggregateKind::Min => "MIN",
            AggregateKind::Max => "MAX",
        }
    }

    /// `true` iff the aggregate is linear in its clauses (`COUNT`/`SUM`),
    /// i.e. the world value is a weighted sum of satisfied clauses. `MIN` and
    /// `MAX` are not linear and need the threshold decomposition instead.
    pub fn is_linear(self) -> bool {
        matches!(self, AggregateKind::Count | AggregateKind::Sum)
    }

    /// Merges the weights of two identical clauses under this aggregate.
    fn merge_weights(self, a: &Rational, b: &Rational) -> Rational {
        match self {
            AggregateKind::Count | AggregateKind::Sum => a + b,
            AggregateKind::Min => a.min(b).clone(),
            AggregateKind::Max => a.max(b).clone(),
        }
    }
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A running aggregate with the proper identity element: 0 for the linear
/// kinds, +∞ / −∞ (represented as `None`) for `MIN` / `MAX`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AggregateValue {
    /// Weighted sum (also `COUNT`, whose clauses weigh 1). Identity: 0.
    Sum(Rational),
    /// Minimum; `None` is the +∞ identity (no clause absorbed yet).
    Min(Option<Rational>),
    /// Maximum; `None` is the −∞ identity (no clause absorbed yet).
    Max(Option<Rational>),
}

impl AggregateValue {
    /// The identity element for the given aggregate kind.
    pub fn identity(kind: AggregateKind) -> Self {
        match kind {
            AggregateKind::Count | AggregateKind::Sum => AggregateValue::Sum(Rational::zero()),
            AggregateKind::Min => AggregateValue::Min(None),
            AggregateKind::Max => AggregateValue::Max(None),
        }
    }

    /// Absorbs the weight of one satisfied clause.
    pub fn absorb(&mut self, w: &Rational) {
        match self {
            AggregateValue::Sum(acc) => *acc += w,
            AggregateValue::Min(acc) => {
                if acc.as_ref().is_none_or(|m| w < m) {
                    *acc = Some(w.clone());
                }
            }
            AggregateValue::Max(acc) => {
                if acc.as_ref().is_none_or(|m| w > m) {
                    *acc = Some(w.clone());
                }
            }
        }
    }

    /// Combines two running aggregates of the same kind.
    ///
    /// # Panics
    /// Panics if the two values carry different aggregate kinds.
    pub fn merge(&mut self, other: &AggregateValue) {
        match (self, other) {
            (AggregateValue::Sum(a), AggregateValue::Sum(b)) => *a += b,
            (AggregateValue::Min(a), AggregateValue::Min(b)) => {
                if let Some(w) = b {
                    if a.as_ref().is_none_or(|m| w < m) {
                        *a = Some(w.clone());
                    }
                }
            }
            (AggregateValue::Max(a), AggregateValue::Max(b)) => {
                if let Some(w) = b {
                    if a.as_ref().is_none_or(|m| w > m) {
                        *a = Some(w.clone());
                    }
                }
            }
            _ => panic!("cannot merge aggregate values of different kinds"),
        }
    }

    /// The final aggregate, with the empty-group convention: a `MIN`/`MAX`
    /// that absorbed nothing finishes as 0.
    pub fn finish(&self) -> Rational {
        match self {
            AggregateValue::Sum(acc) => acc.clone(),
            AggregateValue::Min(acc) | AggregateValue::Max(acc) => {
                acc.clone().unwrap_or_else(Rational::zero)
            }
        }
    }
}

/// A positive DNF whose clauses carry numeric weights — the lineage of one
/// aggregate answer.
///
/// Canonical form: clauses are sorted; duplicate clauses are merged
/// kind-aware (`AggregateKind::merge_weights`); the weight vector is
/// aligned with [`Dnf::clauses`]. Clauses must be non-empty — a grounding
/// with no endogenous fact would contribute unconditionally and has no
/// Banzhaf reading.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeightedDnf {
    kind: AggregateKind,
    dnf: Dnf,
    weights: Vec<Rational>,
}

impl WeightedDnf {
    /// Builds a weighted DNF from `(clause, weight)` pairs.
    ///
    /// # Panics
    /// Panics if any clause is empty.
    pub fn from_weighted_clauses<I, C>(kind: AggregateKind, clauses: I) -> Self
    where
        I: IntoIterator<Item = (C, Rational)>,
        C: IntoIterator<Item = Var>,
    {
        let mut pairs: Vec<(Clause, Rational)> =
            clauses.into_iter().map(|(c, w)| (Clause::new(c), w)).collect();
        assert!(
            pairs.iter().all(|(c, _)| !c.is_empty()),
            "weighted clauses must mention at least one endogenous fact"
        );
        pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut merged: Vec<(Clause, Rational)> = Vec::with_capacity(pairs.len());
        for (c, w) in pairs {
            match merged.last_mut() {
                Some((last, acc)) if *last == c => *acc = kind.merge_weights(acc, &w),
                _ => merged.push((c, w)),
            }
        }
        let weights: Vec<Rational> = merged.iter().map(|(_, w)| w.clone()).collect();
        let dnf = Dnf::from_clauses(merged.into_iter().map(|(c, _)| c.vars().to_vec()));
        debug_assert_eq!(dnf.num_clauses(), weights.len());
        WeightedDnf { kind, dnf, weights }
    }

    /// Builds a `COUNT` lineage where every clause weighs 1 (duplicates add).
    pub fn count_of_clauses<I, C>(clauses: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Var>,
    {
        WeightedDnf::from_weighted_clauses(
            AggregateKind::Count,
            clauses.into_iter().map(|c| (c, Rational::one())),
        )
    }

    /// The same weighted function over a wider universe (a superset of the
    /// current one). The extra variables are irrelevant — they appear in no
    /// clause — but keep the aggregate defined over the same fact set as a
    /// sibling lineage, which matters to anything that scales by `2^n`.
    ///
    /// # Panics
    /// Panics if `universe` does not contain the current universe.
    pub fn widen_universe(&self, universe: VarSet) -> Self {
        WeightedDnf {
            kind: self.kind,
            dnf: self.dnf.widen_universe(universe),
            weights: self.weights.clone(),
        }
    }

    /// The aggregate kind of the answer.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// The Boolean skeleton: the same clauses with the weights forgotten.
    pub fn dnf(&self) -> &Dnf {
        &self.dnf
    }

    /// The clause weights, aligned with [`Dnf::clauses`] of the skeleton.
    pub fn weights(&self) -> &[Rational] {
        &self.weights
    }

    /// The variable universe (that of the skeleton).
    pub fn universe(&self) -> &VarSet {
        self.dnf.universe()
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.dnf.num_vars()
    }

    /// Number of (distinct) weighted clauses.
    pub fn num_clauses(&self) -> usize {
        self.dnf.num_clauses()
    }

    /// The distinct clause weights in ascending order — the thresholds of the
    /// rank decomposition for `MIN`/`MAX`.
    pub fn distinct_weights(&self) -> Vec<Rational> {
        let mut ws = self.weights.clone();
        ws.sort();
        ws.dedup();
        ws
    }

    /// The Boolean sub-DNF of clauses with weight `≥ θ`, over the full
    /// universe.
    pub fn threshold_ge(&self, theta: &Rational) -> Dnf {
        self.threshold(|w| w >= theta)
    }

    /// The Boolean sub-DNF of clauses with weight `< θ`, over the full
    /// universe.
    pub fn threshold_lt(&self, theta: &Rational) -> Dnf {
        self.threshold(|w| w < theta)
    }

    fn threshold(&self, keep: impl Fn(&Rational) -> bool) -> Dnf {
        Dnf::from_clauses_with_universe(
            self.dnf
                .clauses()
                .iter()
                .zip(&self.weights)
                .filter(|(_, w)| keep(w))
                .map(|(c, _)| c.vars().to_vec()),
            self.universe().clone(),
        )
    }

    /// Evaluates the aggregate value of one possible world.
    pub fn evaluate(&self, assignment: &Assignment) -> Rational {
        let mut acc = AggregateValue::identity(self.kind);
        for (c, w) in self.dnf.clauses().iter().zip(&self.weights) {
            if c.iter().all(|v| assignment.get(v)) {
                acc.absorb(w);
            }
        }
        acc.finish()
    }

    /// Exact aggregate Banzhaf value of `v` by the definition: the sum over
    /// all `Y ⊆ X∖{v}` of `val(Y ∪ {v}) − val(Y)`.
    ///
    /// # Panics
    /// Panics if the universe has more than 26 variables or `v` is not in it.
    pub fn brute_force_aggregate_banzhaf(&self, v: Var) -> Rational {
        assert!(self.universe().contains(v), "variable not in the universe");
        let others: Vec<Var> = self.universe().iter().filter(|&u| u != v).collect();
        assert!(
            others.len() < MAX_BRUTE_VARS,
            "brute-force aggregate Banzhaf limited to {MAX_BRUTE_VARS} variables"
        );
        let mut value = Rational::zero();
        for mask in 0u64..(1u64 << others.len()) {
            let without = assignment_from_mask(&others, mask);
            let with = without.with(v);
            value += &(&self.evaluate(&with) - &self.evaluate(&without));
        }
        value
    }

    /// The sum of the aggregate over all `2^n` worlds — the aggregate
    /// analogue of the model count, used as a cross-check.
    ///
    /// # Panics
    /// Panics if the universe has more than 26 variables.
    pub fn brute_force_total(&self) -> Rational {
        let vars: Vec<Var> = self.universe().iter().collect();
        assert!(
            vars.len() <= MAX_BRUTE_VARS,
            "brute-force aggregate total limited to {MAX_BRUTE_VARS} variables"
        );
        let mut total = Rational::zero();
        for mask in 0u64..(1u64 << vars.len()) {
            total += &self.evaluate(&assignment_from_mask(&vars, mask));
        }
        total
    }
}

fn assignment_from_mask(vars: &[Var], mask: u64) -> Assignment {
    Assignment::from_true_vars(
        vars.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &v)| v),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_arith::{Int, Natural};

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rat(n: i64) -> Rational {
        Rational::from(n)
    }

    fn sum_of(clauses: Vec<(Vec<Var>, i64)>) -> WeightedDnf {
        WeightedDnf::from_weighted_clauses(
            AggregateKind::Sum,
            clauses.into_iter().map(|(c, w)| (c, rat(w))),
        )
    }

    #[test]
    fn canonicalization_merges_duplicates_kind_aware() {
        let sum = sum_of(vec![(vec![v(0), v(1)], 3), (vec![v(1), v(0)], 4)]);
        assert_eq!(sum.num_clauses(), 1);
        assert_eq!(sum.weights(), &[rat(7)]);
        let min = WeightedDnf::from_weighted_clauses(
            AggregateKind::Min,
            vec![(vec![v(0)], rat(3)), (vec![v(0)], rat(4))],
        );
        assert_eq!(min.weights(), &[rat(3)]);
        let max = WeightedDnf::from_weighted_clauses(
            AggregateKind::Max,
            vec![(vec![v(0)], rat(3)), (vec![v(0)], rat(4))],
        );
        assert_eq!(max.weights(), &[rat(4)]);
        // Presentation order never matters.
        let a = sum_of(vec![(vec![v(2)], 1), (vec![v(0), v(1)], 5)]);
        let b = sum_of(vec![(vec![v(0), v(1)], 5), (vec![v(2)], 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn world_evaluation_follows_the_conventions() {
        let w = WeightedDnf::from_weighted_clauses(
            AggregateKind::Min,
            vec![(vec![v(0)], rat(5)), (vec![v(1)], rat(-2))],
        );
        assert_eq!(w.evaluate(&Assignment::empty()), rat(0)); // Empty group.
        assert_eq!(w.evaluate(&Assignment::from_true_vars([v(0)])), rat(5));
        assert_eq!(w.evaluate(&Assignment::from_true_vars([v(0), v(1)])), rat(-2));
        let s = sum_of(vec![(vec![v(0)], 5), (vec![v(1)], -2)]);
        assert_eq!(s.evaluate(&Assignment::from_true_vars([v(0), v(1)])), rat(3));
    }

    #[test]
    fn count_banzhaf_reduces_to_boolean_on_single_clause() {
        // A single clause behaves like the Boolean function scaled by 1.
        let w = WeightedDnf::count_of_clauses(vec![vec![v(0), v(1)]]);
        let boolean = Dnf::from_clauses(vec![vec![v(0), v(1)]]);
        for x in [v(0), v(1)] {
            assert_eq!(
                w.brute_force_aggregate_banzhaf(x),
                Rational::from(Int::from(boolean.brute_force_banzhaf(x).to_i128().unwrap() as i64))
            );
        }
    }

    #[test]
    fn sum_banzhaf_matches_the_linear_formula() {
        // B(x) = Σ_{c ∋ x} w_c · 2^{n−|c|} for SUM/COUNT.
        let w = sum_of(vec![(vec![v(0), v(1)], 3), (vec![v(0), v(2)], -2), (vec![v(3)], 7)]);
        let n = w.num_vars();
        for x in w.universe().iter() {
            let mut expect = Rational::zero();
            for (c, weight) in w.dnf().clauses().iter().zip(w.weights()) {
                if c.contains(x) {
                    expect += &weight.mul_natural(&Natural::pow2(n - c.len()));
                }
            }
            assert_eq!(w.brute_force_aggregate_banzhaf(x), expect, "var {x}");
        }
    }

    #[test]
    fn min_attribution_can_be_negative() {
        // Adding the fact enabling the small value drags the minimum down.
        let w = WeightedDnf::from_weighted_clauses(
            AggregateKind::Min,
            vec![(vec![v(0)], rat(10)), (vec![v(1)], rat(1))],
        );
        assert!(w.brute_force_aggregate_banzhaf(v(1)).is_negative());
        // Concretely: worlds {} → {v1}: 0→1 (+1); {v0} → {v0,v1}: 10→1 (−9).
        assert_eq!(w.brute_force_aggregate_banzhaf(v(1)), rat(-8));
    }

    #[test]
    fn threshold_subdnfs_partition_the_skeleton() {
        let w = WeightedDnf::from_weighted_clauses(
            AggregateKind::Max,
            vec![(vec![v(0)], rat(1)), (vec![v(1)], rat(2)), (vec![v(2)], rat(2))],
        );
        let thetas = w.distinct_weights();
        assert_eq!(thetas, vec![rat(1), rat(2)]);
        assert_eq!(w.threshold_ge(&rat(1)), *w.dnf());
        assert_eq!(w.threshold_ge(&rat(2)).num_clauses(), 2);
        assert_eq!(w.threshold_lt(&rat(2)).num_clauses(), 1);
        // Threshold DNFs keep the full universe so model counts stay
        // comparable.
        assert_eq!(w.threshold_ge(&rat(2)).num_vars(), 3);
    }

    #[test]
    #[should_panic(expected = "endogenous")]
    fn empty_clauses_are_rejected() {
        WeightedDnf::from_weighted_clauses(AggregateKind::Sum, vec![(vec![], rat(1))]);
    }
}
