//! iDNF bound functions `L(φ)` and `U(φ)` and their linear-time counting.
//!
//! An *iDNF* (independent DNF, [22] in the paper) is a positive DNF in which
//! every variable occurs at most once. Model counting for iDNF functions is
//! linear time because the clauses are over pairwise disjoint variable sets.
//!
//! Section 3.2.1 of the paper uses two mappings from an arbitrary positive DNF
//! `φ` to iDNF functions:
//!
//! * `L(φ)` — keep a maximal subset of pairwise variable-disjoint clauses;
//!   every model of `L(φ)` extends to a model of `φ`, so `#L(φ) ≤ #φ`.
//! * `U(φ)` — keep the first occurrence of every variable and delete repeated
//!   occurrences from later clauses; clauses only get easier to satisfy, so
//!   `#φ ≤ #U(φ)`.
//!
//! Together with Prop. 12 these yield cheap lower/upper bounds on model
//! counts and Banzhaf values for the non-trivial leaves of a partial d-tree.

use crate::{Clause, Dnf, Var, VarSet};
use banzhaf_arith::{Int, Natural};

impl Dnf {
    /// `true` iff the function is an iDNF: no variable occurs in two clauses
    /// (nor twice in one clause, which the clause representation already
    /// rules out).
    pub fn is_idnf(&self) -> bool {
        let mut seen = VarSet::empty();
        for c in self.clauses() {
            for v in c.iter() {
                if seen.contains(v) {
                    return false;
                }
                seen.insert(v);
            }
        }
        true
    }

    /// Model count of an iDNF function in time linear in its size.
    ///
    /// Non-models must falsify every clause; for a clause with `k` variables
    /// there are `2^k − 1` falsifying assignments of its own variables, and
    /// the clauses are variable-disjoint, so the counts multiply. Variables of
    /// the universe that appear in no clause are unconstrained.
    ///
    /// # Panics
    /// Panics (in debug builds) if the function is not an iDNF.
    pub fn idnf_model_count(&self) -> Natural {
        debug_assert!(self.is_idnf(), "idnf_model_count requires an iDNF input");
        if self.is_true() {
            return Natural::pow2(self.num_vars());
        }
        if self.is_false() {
            return Natural::zero();
        }
        let used: usize = self.clauses().iter().map(Clause::len).sum();
        let free = self.num_vars() - used;
        let mut non_models = Natural::pow2(free);
        for c in self.clauses() {
            let ways = &Natural::pow2(c.len()) - &Natural::one();
            non_models = non_models.mul_ref(&ways);
        }
        &Natural::pow2(self.num_vars()) - &non_models
    }
}

/// The iDNF lower-bound function `L(φ)`: a maximal (greedy) subset of pairwise
/// variable-disjoint clauses of `φ`, over the same universe.
///
/// Clauses are scanned shortest-first so that more clauses tend to be kept,
/// which makes the lower bound tighter in practice; any greedy selection is
/// sound. Unlike the paper (which restricts `L(φ)` to the variables occurring
/// in the kept clauses), we keep the full universe — every model of the kept
/// clauses over the universe already satisfies `φ`, which yields a tighter yet
/// still sound lower bound.
pub fn lower_bound_fn(phi: &Dnf) -> Dnf {
    if phi.is_constant() {
        return phi.clone();
    }
    let mut order: Vec<&Clause> = phi.clauses().iter().collect();
    order.sort_by_key(|c| c.len());
    let mut used = VarSet::empty();
    let mut kept: Vec<Clause> = Vec::new();
    for c in order {
        if c.iter().all(|v| !used.contains(v)) {
            for v in c.iter() {
                used.insert(v);
            }
            kept.push(c.clone());
        }
    }
    Dnf::from_parts(phi.universe().clone(), kept)
}

/// The iDNF upper-bound function `U(φ)`: keeps the first occurrence of every
/// variable and drops repeated occurrences from later clauses, over the same
/// universe. If a clause loses all its variables the result is the constant
/// `true` (a sound, if loose, upper bound).
pub fn upper_bound_fn(phi: &Dnf) -> Dnf {
    if phi.is_constant() {
        return phi.clone();
    }
    let mut seen = VarSet::empty();
    let mut kept: Vec<Clause> = Vec::with_capacity(phi.num_clauses());
    for c in phi.clauses() {
        let fresh: Vec<Var> = c.iter().filter(|&v| !seen.contains(v)).collect();
        for &v in &fresh {
            seen.insert(v);
        }
        kept.push(Clause::new(fresh));
    }
    Dnf::from_parts(phi.universe().clone(), kept)
}

/// Lower and upper bounds for the model count and the Banzhaf value of one
/// variable in a positive DNF leaf, per Prop. 12 of the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdnfCounts {
    /// Lower bound on `Banzhaf(φ, x)`.
    pub banzhaf_lower: Int,
    /// Upper bound on `Banzhaf(φ, x)`.
    pub banzhaf_upper: Int,
    /// Lower bound on `#φ`.
    pub count_lower: Natural,
    /// Upper bound on `#φ`.
    pub count_upper: Natural,
}

impl IdnfCounts {
    /// Computes the Prop. 12 bounds for variable `x` in `phi`:
    ///
    /// ```text
    ///   #L(φ) ≤ #φ ≤ #U(φ)
    ///   #L(φ[x:=1]) − #U(φ[x:=0]) ≤ Banzhaf(φ, x) ≤ #U(φ[x:=1]) − #L(φ[x:=0])
    /// ```
    ///
    /// Since `φ` is positive, its Banzhaf values are non-negative, so the
    /// lower bound is additionally clamped at zero.
    pub fn for_leaf(phi: &Dnf, x: Var) -> IdnfCounts {
        let count_lower = lower_bound_fn(phi).idnf_model_count();
        let count_upper = upper_bound_fn(phi).idnf_model_count();
        let pos = phi.condition(x, true);
        let neg = phi.condition(x, false);
        let lower = Int::sub_naturals(
            &lower_bound_fn(&pos).idnf_model_count(),
            &upper_bound_fn(&neg).idnf_model_count(),
        );
        let upper = Int::sub_naturals(
            &upper_bound_fn(&pos).idnf_model_count(),
            &lower_bound_fn(&neg).idnf_model_count(),
        );
        let banzhaf_lower = if lower.is_negative() { Int::zero() } else { lower };
        IdnfCounts { banzhaf_lower, banzhaf_upper: upper, count_lower, count_upper }
    }

    /// Variant of [`IdnfCounts::for_leaf`] implementing optimization (4) of
    /// Sec. 3.2.4: bound `Banzhaf(φ, x) = #φ − 2·#φ[x := 0]` using bounds on
    /// `#φ` and `#φ[x := 0]` instead of on `#φ[x := 1]` and `#φ[x := 0]`.
    /// The two bound forms are then intersected.
    pub fn for_leaf_opt4(phi: &Dnf, x: Var) -> IdnfCounts {
        let base = IdnfCounts::for_leaf(phi, x);
        let neg = phi.condition(x, false);
        let neg_lower = lower_bound_fn(&neg).idnf_model_count();
        let neg_upper = upper_bound_fn(&neg).idnf_model_count();
        // Banzhaf = #φ − 2·#φ[x:=0]
        let two = Natural::from(2u64);
        let alt_lower = Int::sub_naturals(&base.count_lower, &two.mul_ref(&neg_upper));
        let alt_upper = Int::sub_naturals(&base.count_upper, &two.mul_ref(&neg_lower));
        let alt_lower = if alt_lower.is_negative() { Int::zero() } else { alt_lower };
        IdnfCounts {
            banzhaf_lower: base.banzhaf_lower.max(alt_lower),
            banzhaf_upper: base.banzhaf_upper.min(alt_upper),
            count_lower: base.count_lower,
            count_upper: base.count_upper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn idnf_recognition() {
        assert!(Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2)]]).is_idnf());
        assert!(!Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]).is_idnf());
        assert!(Dnf::constant_true(VarSet::empty()).is_idnf());
        assert!(Dnf::constant_false(VarSet::from_iter([v(0)])).is_idnf());
    }

    #[test]
    fn idnf_counting_matches_brute_force() {
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2)]]),
            Dnf::from_clauses(vec![vec![v(0)], vec![v(1)], vec![v(2), v(3), v(4)]]),
            Dnf::from_clauses_with_universe(
                vec![vec![v(0), v(1)]],
                VarSet::from_iter([v(0), v(1), v(2), v(3)]),
            ),
            Dnf::constant_true(VarSet::from_iter([v(0), v(1)])),
            Dnf::constant_false(VarSet::from_iter([v(0), v(1)])),
        ];
        for phi in functions {
            assert_eq!(phi.idnf_model_count(), phi.brute_force_model_count(), "{phi}");
        }
    }

    #[test]
    fn example_13_bounds() {
        // φ = (x ∧ y) ∨ (x ∧ z) ∨ u from Example 13.
        let x = v(0);
        let phi = Dnf::from_clauses(vec![vec![x, v(1)], vec![x, v(2)], vec![v(3)]]);

        // φ[x := 1] = y ∨ z ∨ u and φ[x := 0] = u are already iDNF, so
        // L and U leave them unchanged.
        let pos = phi.condition(x, true);
        let neg = phi.condition(x, false);
        assert_eq!(lower_bound_fn(&pos), pos);
        assert_eq!(upper_bound_fn(&pos), pos);
        assert_eq!(lower_bound_fn(&neg), neg);
        assert_eq!(upper_bound_fn(&neg), neg);
        assert_eq!(pos.idnf_model_count().to_u64(), Some(7));
        assert_eq!(neg.idnf_model_count().to_u64(), Some(4));

        // The paper derives #L(φ) = 5 by counting L(φ) = (x∧y) ∨ u over only
        // the three variables that occur in it. We keep the full universe
        // (which is also sound and strictly tighter): the same L(φ) counted
        // over {x,y,z,u} has 10 models. U(φ) = (x∧y) ∨ z ∨ u has 13 models,
        // as in the paper.
        let l = lower_bound_fn(&phi);
        let u = upper_bound_fn(&phi);
        assert!(l.is_idnf() && u.is_idnf());
        assert_eq!(l.idnf_model_count().to_u64(), Some(10));
        assert_eq!(u.idnf_model_count().to_u64(), Some(13));

        // Prop. 12 bracketing: 10 ≤ 11 ≤ 13 and 3 ≤ Banzhaf = 3 ≤ 3.
        let counts = IdnfCounts::for_leaf(&phi, x);
        assert_eq!(counts.count_lower.to_u64(), Some(10));
        assert_eq!(counts.count_upper.to_u64(), Some(13));
        assert_eq!(counts.banzhaf_lower.to_i128(), Some(3));
        assert_eq!(counts.banzhaf_upper.to_i128(), Some(3));
    }

    #[test]
    fn bounds_bracket_brute_force() {
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(3)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1), v(2)], vec![v(0), v(3)], vec![v(3), v(4)]]),
            Dnf::from_clauses(vec![vec![v(0)], vec![v(0), v(1)], vec![v(1), v(2), v(3)]]),
        ];
        for phi in functions {
            let exact = phi.brute_force_model_count();
            assert!(lower_bound_fn(&phi).idnf_model_count() <= exact);
            assert!(upper_bound_fn(&phi).idnf_model_count() >= exact);
            for x in phi.universe().iter() {
                let exact_b = phi.brute_force_banzhaf(x);
                for counts in [IdnfCounts::for_leaf(&phi, x), IdnfCounts::for_leaf_opt4(&phi, x)] {
                    assert!(counts.banzhaf_lower <= exact_b, "{phi} {x}");
                    assert!(counts.banzhaf_upper >= exact_b, "{phi} {x}");
                    assert!(counts.banzhaf_lower <= counts.banzhaf_upper);
                }
            }
        }
    }

    #[test]
    fn opt4_bounds_never_looser() {
        let phi = Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(0), v(2)],
            vec![v(1), v(3)],
            vec![v(2), v(4)],
        ]);
        for x in phi.universe().iter() {
            let base = IdnfCounts::for_leaf(&phi, x);
            let opt = IdnfCounts::for_leaf_opt4(&phi, x);
            assert!(opt.banzhaf_lower >= base.banzhaf_lower);
            assert!(opt.banzhaf_upper <= base.banzhaf_upper);
        }
    }

    #[test]
    fn upper_bound_may_collapse_to_true() {
        // Duplicate clause: the second occurrence loses all variables,
        // turning U(φ) into the constant true — still a sound upper bound.
        let phi = Dnf::from_parts(
            VarSet::from_iter([v(0), v(1)]),
            vec![Clause::new([v(0), v(1)]), Clause::new([v(0)])],
        );
        let u = upper_bound_fn(&phi);
        assert!(u.idnf_model_count() >= phi.brute_force_model_count());
    }

    #[test]
    fn lower_bound_keeps_short_clauses_first() {
        // Clauses: {x0,x1,x2}, {x0}, {x3}; greedy shortest-first keeps {x0},{x3}.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1), v(2)], vec![v(0)], vec![v(3)]]);
        let l = lower_bound_fn(&phi);
        assert_eq!(l.num_clauses(), 2);
        assert!(l.is_idnf());
        assert!(l.idnf_model_count() <= phi.brute_force_model_count());
    }
}
