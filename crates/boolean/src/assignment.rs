//! Truth assignments, identified with the set of variables mapped to 1.

use crate::{Var, VarSet};

/// A truth assignment over some variable universe, represented (as in the
/// paper) by the set of variables mapped to `1`; everything else is `0`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Assignment {
    trues: VarSet,
}

impl Assignment {
    /// The all-zero assignment.
    pub fn empty() -> Self {
        Assignment { trues: VarSet::empty() }
    }

    /// Builds an assignment from the set of variables mapped to 1.
    pub fn from_true_vars<I: IntoIterator<Item = Var>>(vars: I) -> Self {
        Assignment { trues: VarSet::from_iter(vars) }
    }

    /// The value assigned to `v`.
    pub fn get(&self, v: Var) -> bool {
        self.trues.contains(v)
    }

    /// Sets `v` to `value`.
    pub fn set(&mut self, v: Var, value: bool) {
        if value {
            self.trues.insert(v);
        } else {
            self.trues.remove(v);
        }
    }

    /// The set of variables mapped to 1.
    pub fn true_vars(&self) -> &VarSet {
        &self.trues
    }

    /// Number of variables mapped to 1.
    pub fn weight(&self) -> usize {
        self.trues.len()
    }

    /// Returns a copy with `v` additionally set to 1.
    pub fn with(&self, v: Var) -> Assignment {
        let mut a = self.clone();
        a.set(v, true);
        a
    }

    /// Returns a copy with `v` set to 0.
    pub fn without(&self, v: Var) -> Assignment {
        let mut a = self.clone();
        a.set(v, false);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut a = Assignment::empty();
        assert!(!a.get(Var(1)));
        a.set(Var(1), true);
        a.set(Var(2), true);
        a.set(Var(1), false);
        assert!(!a.get(Var(1)));
        assert!(a.get(Var(2)));
        assert_eq!(a.weight(), 1);
    }

    #[test]
    fn with_without() {
        let a = Assignment::from_true_vars([Var(1), Var(3)]);
        assert_eq!(a.with(Var(2)).weight(), 3);
        assert_eq!(a.without(Var(3)).weight(), 1);
        // Originals untouched.
        assert_eq!(a.weight(), 2);
    }
}
