//! Positive DNF Boolean functions — the representation of query lineage.
//!
//! The lineage of a select-project-join-union query over a database is a
//! *positive* Boolean function in disjunctive normal form whose variables are
//! the endogenous facts of the database (Sec. 2 of the paper). This crate
//! provides that representation together with the operations every algorithm
//! in the workspace relies on:
//!
//! * [`Dnf`] — a positive DNF with an explicit variable *universe* (the
//!   function may be defined over more variables than it mentions, which
//!   matters for model counting, cf. Example 13 of the paper);
//! * conditioning `φ[x := b]`, evaluation, and structural queries;
//! * independence partitioning (connected components of the variable/clause
//!   incidence graph) and common-variable factoring — the decomposition steps
//!   used by d-tree compilation;
//! * the iDNF lower/upper bound constructions `L(φ)` and `U(φ)` of
//!   Sec. 3.2.1 with their linear-time model counting;
//! * brute-force model counting and Banzhaf evaluation used as a test oracle.
//!
//! # Example
//!
//! ```
//! use banzhaf_boolean::{Dnf, Var};
//!
//! // φ = (x ∧ y) ∨ (x ∧ z)   (Example 9 of the paper)
//! let x = Var(0); let y = Var(1); let z = Var(2);
//! let phi = Dnf::from_clauses(vec![vec![x, y], vec![x, z]]);
//! assert_eq!(phi.num_vars(), 3);
//! assert_eq!(phi.brute_force_model_count().to_u64(), Some(3));
//! assert_eq!(phi.brute_force_banzhaf(x).to_i128(), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod brute;
mod clause;
mod dnf;
mod idnf;
mod partition;
mod var;
mod weighted;

pub use assignment::Assignment;
pub use clause::Clause;
pub use dnf::Dnf;
pub use idnf::{lower_bound_fn, upper_bound_fn, IdnfCounts};
pub use partition::{common_variables, independent_components, Factored};
pub use var::{Var, VarSet};
pub use weighted::{AggregateKind, AggregateValue, WeightedDnf};
