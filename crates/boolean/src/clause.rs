//! Conjunctive clauses of a positive DNF.

use crate::Var;
use std::fmt;

/// A clause: a conjunction of (positive) variables.
///
/// Clauses are kept sorted and deduplicated. The *empty* clause is the
/// constant `true` conjunction; a DNF containing it is a tautology.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Clause {
    vars: Vec<Var>,
}

impl Clause {
    /// Builds a clause from an arbitrary iterator of variables.
    pub fn new<I: IntoIterator<Item = Var>>(vars: I) -> Self {
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        Clause { vars }
    }

    /// The empty (always-true) clause.
    pub fn empty() -> Self {
        Clause { vars: Vec::new() }
    }

    /// Number of variables in the clause.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` iff the clause is the empty conjunction (constant true).
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: Var) -> bool {
        self.vars.binary_search(&v).is_ok()
    }

    /// Iterates over the clause's variables in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().copied()
    }

    /// The sorted variable slice.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Returns a copy of the clause with `v` removed (used when conditioning
    /// on `v := 1` or when factoring out a common variable).
    pub fn without(&self, v: Var) -> Clause {
        // Exactly-sized copy around the removed position; removing one
        // element from a sorted, deduplicated list preserves canonical form,
        // so no re-sort is needed either.
        match self.vars.binary_search(&v) {
            Err(_) => self.clone(),
            Ok(pos) => {
                let mut vars = Vec::with_capacity(self.vars.len() - 1);
                vars.extend_from_slice(&self.vars[..pos]);
                vars.extend_from_slice(&self.vars[pos + 1..]);
                Clause { vars }
            }
        }
    }

    /// `true` iff every variable of `self` is contained in `other`
    /// (i.e. `other` implies `self`, so `other` is absorbed by `self`).
    pub fn subsumes(&self, other: &Clause) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.iter().all(|v| other.contains(v))
    }

    /// `true` iff the clause shares no variable with `other`.
    pub fn is_disjoint(&self, other: &Clause) -> bool {
        let (small, large) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        small.iter().all(|v| !large.contains(v))
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "⊤");
        }
        let parts: Vec<String> = self.vars.iter().map(ToString::to_string).collect();
        write!(f, "{}", parts.join("∧"))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Var> for Clause {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        Clause::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let c = Clause::new([Var(3), Var(1), Var(3)]);
        assert_eq!(c.vars(), &[Var(1), Var(3)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(Clause::empty().is_empty());
    }

    #[test]
    fn without_and_contains() {
        let c = Clause::new([Var(1), Var(2), Var(3)]);
        assert!(c.contains(Var(2)));
        let d = c.without(Var(2));
        assert_eq!(d.vars(), &[Var(1), Var(3)]);
        assert!(!d.contains(Var(2)));
        // Removing an absent variable is a no-op copy.
        assert_eq!(c.without(Var(9)), c);
    }

    #[test]
    fn subsumption() {
        let small = Clause::new([Var(1)]);
        let big = Clause::new([Var(1), Var(2)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(Clause::empty().subsumes(&big));
        assert!(big.subsumes(&big));
    }

    #[test]
    fn disjointness() {
        let a = Clause::new([Var(1), Var(2)]);
        let b = Clause::new([Var(3)]);
        let c = Clause::new([Var(2), Var(3)]);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
        assert!(Clause::empty().is_disjoint(&a));
    }

    #[test]
    fn display() {
        assert_eq!(Clause::new([Var(2), Var(1)]).to_string(), "x1∧x2");
        assert_eq!(Clause::empty().to_string(), "⊤");
    }
}
