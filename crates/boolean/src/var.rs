//! Propositional variables and sorted variable sets.

use std::fmt;

/// A propositional variable identifying an endogenous database fact.
///
/// Variables are small integers; the mapping between facts and variables is
/// maintained by the database layer (`banzhaf-db`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The numeric index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for Var {
    fn from(v: u32) -> Self {
        Var(v)
    }
}

/// A sorted, deduplicated set of variables.
///
/// Lineages routinely contain thousands of variables; a sorted vector gives
/// cache-friendly iteration and `O(log n)` membership, which is all the
/// algorithms need.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct VarSet {
    vars: Vec<Var>,
}

impl VarSet {
    /// The empty set.
    pub fn empty() -> Self {
        VarSet { vars: Vec::new() }
    }

    /// Builds a set from a vector that is already sorted and deduplicated.
    ///
    /// # Panics
    /// Debug-panics if the input is not sorted/deduplicated.
    pub fn from_sorted(vars: Vec<Var>) -> Self {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "VarSet input not sorted");
        VarSet { vars }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: Var) -> bool {
        self.vars.binary_search(&v).is_ok()
    }

    /// Iterates over the variables in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().copied()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[Var] {
        &self.vars
    }

    /// Inserts a variable, keeping the set sorted.
    pub fn insert(&mut self, v: Var) {
        if let Err(pos) = self.vars.binary_search(&v) {
            self.vars.insert(pos, v);
        }
    }

    /// Removes a variable if present; returns whether it was present.
    pub fn remove(&mut self, v: Var) -> bool {
        match self.vars.binary_search(&v) {
            Ok(pos) => {
                self.vars.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.vars[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.vars[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.vars[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.vars[i..]);
        out.extend_from_slice(&other.vars[j..]);
        VarSet { vars: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        // Linear merge walk with exact worst-case preallocation (the result
        // never exceeds |self|); this is a hot operation during d-tree
        // decomposition, where re-allocation and per-element binary searches
        // both show up in profiles.
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.vars[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.vars[i..]);
        VarSet { vars: out }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        // Linear merge walk; the result never exceeds the smaller operand.
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.vars[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        VarSet { vars: out }
    }

    /// `true` iff the two sets share no variable.
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        // Walk the smaller set and probe the larger.
        let (small, large) = if self.len() <= other.len() { (self, other) } else { (other, self) };
        small.iter().all(|v| !large.contains(v))
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        self.iter().all(|v| other.contains(v))
    }
}

impl FromIterator<Var> for VarSet {
    /// Builds a set from arbitrary (possibly unsorted, duplicated) variables.
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        let mut vars: Vec<Var> = iter.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        VarSet { vars }
    }
}

impl IntoIterator for VarSet {
    type Item = Var;
    type IntoIter = std::vec::IntoIter<Var>;
    fn into_iter(self) -> Self::IntoIter {
        self.vars.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> VarSet {
        ids.iter().map(|&i| Var(i)).collect()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = vs(&[5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[Var(1), Var(3), Var(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn membership_and_mutation() {
        let mut s = vs(&[1, 3]);
        assert!(s.contains(Var(3)));
        assert!(!s.contains(Var(2)));
        s.insert(Var(2));
        assert_eq!(s.as_slice(), &[Var(1), Var(2), Var(3)]);
        s.insert(Var(2));
        assert_eq!(s.len(), 3);
        assert!(s.remove(Var(1)));
        assert!(!s.remove(Var(1)));
        assert_eq!(s.as_slice(), &[Var(2), Var(3)]);
    }

    #[test]
    fn set_algebra() {
        let a = vs(&[1, 2, 3, 4]);
        let b = vs(&[3, 4, 5]);
        assert_eq!(a.union(&b), vs(&[1, 2, 3, 4, 5]));
        assert_eq!(a.difference(&b), vs(&[1, 2]));
        assert_eq!(a.intersection(&b), vs(&[3, 4]));
        assert!(!a.is_disjoint(&b));
        assert!(vs(&[1, 2]).is_disjoint(&vs(&[3, 4])));
        assert!(vs(&[2, 3]).is_subset(&a));
        assert!(!vs(&[2, 9]).is_subset(&a));
        assert!(VarSet::empty().is_subset(&a));
        assert!(VarSet::empty().is_disjoint(&VarSet::empty()));
    }
}
