//! Positive DNF functions with an explicit variable universe.

use crate::{Assignment, Clause, Var, VarSet};
use std::collections::HashMap;
use std::fmt;

/// A positive Boolean function in disjunctive normal form.
///
/// The function is defined over an explicit *universe* of variables, which may
/// strictly include the variables that occur in its clauses. This matters for
/// model counting: conditioning `φ[x := 0]` may drop clauses, but the
/// resulting function is still defined over the remaining `n-1` variables of
/// the universe (Example 13 of the paper).
///
/// Canonical form:
/// * clauses are sorted and deduplicated;
/// * a tautology is represented by the single empty clause;
/// * the constant `false` is represented by an empty clause list.
#[derive(Clone, PartialEq, Eq)]
pub struct Dnf {
    universe: VarSet,
    clauses: Vec<Clause>,
}

impl Dnf {
    /// Builds a DNF from clause variable lists. The universe is the set of
    /// variables occurring in the clauses.
    pub fn from_clauses<I, C>(clauses: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Var>,
    {
        let clauses: Vec<Clause> = clauses.into_iter().map(Clause::new).collect();
        let universe: VarSet = clauses.iter().flat_map(Clause::iter).collect();
        Dnf::from_parts(universe, clauses)
    }

    /// Builds a DNF from clauses over an explicitly given universe.
    ///
    /// # Panics
    /// Panics if a clause mentions a variable outside the universe.
    pub fn from_clauses_with_universe<I, C>(clauses: I, universe: VarSet) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Var>,
    {
        let clauses: Vec<Clause> = clauses.into_iter().map(Clause::new).collect();
        for c in &clauses {
            for v in c.iter() {
                assert!(universe.contains(v), "clause variable {v} outside the universe");
            }
        }
        Dnf::from_parts(universe, clauses)
    }

    /// Internal constructor enforcing the canonical form.
    pub(crate) fn from_parts(universe: VarSet, mut clauses: Vec<Clause>) -> Self {
        if clauses.iter().any(Clause::is_empty) {
            return Dnf { universe, clauses: vec![Clause::empty()] };
        }
        // Skip the O(n log n) sort when the input is provably canonical
        // already — strictly increasing means sorted *and* deduplicated.
        // Conditioning on `v := 0` only drops clauses from a canonical list
        // (order and uniqueness preserved), so the hottest construction path
        // during d-tree compilation takes this linear check alone.
        if !clauses.windows(2).all(|w| w[0] < w[1]) {
            clauses.sort_unstable();
            clauses.dedup();
        }
        Dnf { universe, clauses }
    }

    /// The constant `true` function over the given universe.
    pub fn constant_true(universe: VarSet) -> Self {
        Dnf { universe, clauses: vec![Clause::empty()] }
    }

    /// The constant `false` function over the given universe.
    pub fn constant_false(universe: VarSet) -> Self {
        Dnf { universe, clauses: Vec::new() }
    }

    /// The single-variable function `v`.
    pub fn variable(v: Var) -> Self {
        Dnf { universe: VarSet::from_iter([v]), clauses: vec![Clause::new([v])] }
    }

    /// The universe the function is defined over.
    pub fn universe(&self) -> &VarSet {
        &self.universe
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.universe.len()
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        if self.is_true() {
            0
        } else {
            self.clauses.len()
        }
    }

    /// Total number of literal occurrences (the `|φ|` size measure).
    pub fn size(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// The clauses of the function.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// `true` iff the function is the constant `true`.
    pub fn is_true(&self) -> bool {
        self.clauses.first().is_some_and(Clause::is_empty)
    }

    /// `true` iff the function is the constant `false`.
    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    /// `true` iff the function is a constant.
    pub fn is_constant(&self) -> bool {
        self.is_true() || self.is_false()
    }

    /// `true` iff the function is a single positive literal over a singleton
    /// universe.
    pub fn is_single_literal(&self) -> Option<Var> {
        if self.universe.len() == 1 && self.clauses.len() == 1 && self.clauses[0].len() == 1 {
            Some(self.clauses[0].vars()[0])
        } else {
            None
        }
    }

    /// The set of variables that actually occur in some clause.
    pub fn used_vars(&self) -> VarSet {
        self.clauses.iter().flat_map(Clause::iter).collect()
    }

    /// `true` iff the variable occurs in some clause.
    pub fn uses_var(&self, v: Var) -> bool {
        self.clauses.iter().any(|c| c.contains(v))
    }

    /// Evaluates the function under an assignment.
    pub fn evaluate(&self, assignment: &Assignment) -> bool {
        self.clauses.iter().any(|c| c.iter().all(|v| assignment.get(v)))
    }

    /// Number of occurrences of each used variable across all clauses.
    pub fn occurrence_counts(&self) -> HashMap<Var, usize> {
        let mut counts = HashMap::new();
        for c in &self.clauses {
            for v in c.iter() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts
    }

    /// A used variable with the largest number of occurrences, if any.
    ///
    /// This is the default Shannon-expansion pivot heuristic (Sec. 3.1):
    /// conditioning on the most frequent variable tends to break the most
    /// clause interactions. Ties are broken by the smaller variable index so
    /// the choice is deterministic.
    pub fn most_frequent_var(&self) -> Option<Var> {
        let counts = self.occurrence_counts();
        counts.into_iter().max_by(|(v1, c1), (v2, c2)| c1.cmp(c2).then(v2.cmp(v1))).map(|(v, _)| v)
    }

    /// The first used variable (lowest index), if any. Used by the ablation
    /// benchmark comparing pivot-selection heuristics.
    pub fn first_var(&self) -> Option<Var> {
        self.used_vars().iter().next()
    }

    /// Conditioning: the function `φ[v := value]` over the universe minus `v`.
    pub fn condition(&self, v: Var, value: bool) -> Dnf {
        let mut universe = self.universe.clone();
        universe.remove(v);
        if self.is_true() {
            return Dnf::constant_true(universe);
        }
        // Exact preallocation: setting `v := 1` keeps every clause (some
        // shortened), setting `v := 0` keeps exactly the clauses avoiding v.
        let kept = if value {
            self.clauses.len()
        } else {
            self.clauses.iter().filter(|c| !c.contains(v)).count()
        };
        let mut clauses = Vec::with_capacity(kept);
        for c in &self.clauses {
            if c.contains(v) {
                if value {
                    clauses.push(c.without(v));
                }
                // value == false: the clause is falsified and dropped.
            } else {
                clauses.push(c.clone());
            }
        }
        Dnf::from_parts(universe, clauses)
    }

    /// Returns the same function defined over a larger universe.
    ///
    /// # Panics
    /// Panics if the new universe does not contain the old one.
    pub fn widen_universe(&self, universe: VarSet) -> Dnf {
        assert!(
            self.universe.is_subset(&universe),
            "widen_universe: new universe must contain the old one"
        );
        Dnf { universe, clauses: self.clauses.clone() }
    }

    /// The same clauses over the universe of variables that actually occur.
    ///
    /// [`condition`](Dnf::condition) can orphan variables: dropping the
    /// clauses that mention `v` may leave other variables of the universe
    /// without any occurrence. Banzhaf values and model counts scale with
    /// `2^(unused universe variables)`, so a conditioned lineage must be
    /// restricted to its used variables before it can be compared — or
    /// cached — interchangeably with a lineage built fresh from its clauses.
    pub fn restrict_to_used(&self) -> Dnf {
        Dnf { universe: self.used_vars(), clauses: self.clauses.clone() }
    }

    /// Removes clauses that are subsumed by (are supersets of) other clauses.
    ///
    /// Absorption (`x ∨ (x ∧ y) = x`) does not change the function but can
    /// shrink lineages produced by union queries considerably. Quadratic in
    /// the number of clauses, so it is exposed as an explicit step rather than
    /// applied on every construction.
    pub fn absorb(&self) -> Dnf {
        if self.is_constant() {
            return self.clone();
        }
        let mut kept: Vec<Clause> = Vec::with_capacity(self.clauses.len());
        // Shorter clauses absorb longer ones; process by increasing length.
        let mut by_len = self.clauses.clone();
        by_len.sort_by_key(Clause::len);
        'outer: for c in by_len {
            for k in &kept {
                if k.subsumes(&c) {
                    continue 'outer;
                }
            }
            kept.push(c);
        }
        Dnf::from_parts(self.universe.clone(), kept)
    }

    /// Disjunction of two functions over the union of their universes.
    pub fn or(&self, other: &Dnf) -> Dnf {
        let universe = self.universe.union(&other.universe);
        if self.is_true() || other.is_true() {
            return Dnf::constant_true(universe);
        }
        let clauses = self.clauses.iter().chain(other.clauses.iter()).cloned().collect();
        Dnf::from_parts(universe, clauses)
    }

    /// Conjunction of two functions over the union of their universes
    /// (cartesian product of clauses).
    pub fn and(&self, other: &Dnf) -> Dnf {
        let universe = self.universe.union(&other.universe);
        if self.is_false() || other.is_false() {
            return Dnf::constant_false(universe);
        }
        if self.is_true() {
            return other.widen_universe(universe);
        }
        if other.is_true() {
            return self.widen_universe(universe);
        }
        let mut clauses = Vec::with_capacity(self.clauses.len() * other.clauses.len());
        for a in &self.clauses {
            for b in &other.clauses {
                clauses.push(Clause::new(a.iter().chain(b.iter())));
            }
        }
        Dnf::from_parts(universe, clauses)
    }
}

impl fmt::Debug for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "⊥[{} vars]", self.num_vars());
        }
        if self.is_true() {
            return write!(f, "⊤[{} vars]", self.num_vars());
        }
        let parts: Vec<String> = self.clauses.iter().map(|c| format!("({c})")).collect();
        write!(f, "{} [{} vars]", parts.join(" ∨ "), self.num_vars())
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// φ = (x ∧ y) ∨ (x ∧ z), Example 9.
    fn example9() -> Dnf {
        Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]])
    }

    #[test]
    fn construction_and_stats() {
        let phi = example9();
        assert_eq!(phi.num_vars(), 3);
        assert_eq!(phi.num_clauses(), 2);
        assert_eq!(phi.size(), 4);
        assert!(!phi.is_constant());
        assert!(phi.uses_var(v(0)));
        assert!(!phi.uses_var(v(7)));
    }

    #[test]
    fn constants() {
        let u = VarSet::from_iter([v(0), v(1)]);
        let t = Dnf::constant_true(u.clone());
        let f = Dnf::constant_false(u.clone());
        assert!(t.is_true() && !t.is_false());
        assert!(f.is_false() && !f.is_true());
        assert_eq!(t.num_vars(), 2);
        // A DNF containing an empty clause collapses to the canonical true.
        let phi = Dnf::from_clauses_with_universe(vec![vec![v(0)], vec![]], u);
        assert!(phi.is_true());
        assert_eq!(phi.num_clauses(), 0);
    }

    #[test]
    fn evaluation() {
        let phi = example9();
        assert!(!phi.evaluate(&Assignment::empty()));
        assert!(!phi.evaluate(&Assignment::from_true_vars([v(1), v(2)])));
        assert!(phi.evaluate(&Assignment::from_true_vars([v(0), v(1)])));
        assert!(phi.evaluate(&Assignment::from_true_vars([v(0), v(2)])));
        assert!(phi.evaluate(&Assignment::from_true_vars([v(0), v(1), v(2)])));
        assert!(!phi.evaluate(&Assignment::from_true_vars([v(0)])));
    }

    #[test]
    fn conditioning_shrinks_universe() {
        let phi = example9();
        // φ[x := 1] = y ∨ z over {y, z}.
        let pos = phi.condition(v(0), true);
        assert_eq!(pos.num_vars(), 2);
        assert_eq!(pos.num_clauses(), 2);
        assert!(pos.evaluate(&Assignment::from_true_vars([v(1)])));
        // φ[x := 0] = false over {y, z}.
        let neg = phi.condition(v(0), false);
        assert!(neg.is_false());
        assert_eq!(neg.num_vars(), 2);
        // Conditioning on y keeps the x∧z clause intact.
        let cy = phi.condition(v(1), true);
        assert_eq!(cy.num_clauses(), 2);
        // One of the clauses is now just x; after absorption only x remains.
        assert_eq!(cy.absorb().num_clauses(), 1);
    }

    #[test]
    fn conditioning_example13() {
        // φ = (x ∧ y) ∨ (x ∧ z) ∨ u;  φ[x := 0] = u but over three variables.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let cond = phi.condition(v(0), false);
        assert_eq!(cond.num_vars(), 3);
        assert_eq!(cond.num_clauses(), 1);
        assert_eq!(cond.brute_force_model_count().to_u64(), Some(4));
    }

    #[test]
    fn restricting_to_used_drops_orphaned_variables() {
        // φ[x := 0] = u over {y, z, u}; y and z are orphaned and inflate the
        // model count until the universe is restricted to the used variables.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let cond = phi.condition(v(0), false).restrict_to_used();
        assert_eq!(cond.num_vars(), 1);
        assert_eq!(cond.num_clauses(), 1);
        assert_eq!(cond.brute_force_model_count().to_u64(), Some(1));
        assert_eq!(cond, Dnf::from_clauses(vec![vec![v(3)]]));
        // A lineage whose universe already equals its used variables is
        // unchanged.
        assert_eq!(phi.restrict_to_used(), phi);
    }

    #[test]
    fn most_frequent_var_heuristic() {
        let phi = example9();
        assert_eq!(phi.most_frequent_var(), Some(v(0)));
        assert_eq!(phi.first_var(), Some(v(0)));
        let single = Dnf::from_clauses(vec![vec![v(5), v(3)]]);
        assert!(single.most_frequent_var().is_some());
        assert_eq!(Dnf::constant_false(VarSet::empty()).most_frequent_var(), None);
    }

    #[test]
    fn absorption() {
        // x ∨ (x ∧ y) = x
        let phi = Dnf::from_clauses(vec![vec![v(0)], vec![v(0), v(1)]]);
        let a = phi.absorb();
        assert_eq!(a.num_clauses(), 1);
        assert_eq!(a.clauses()[0].vars(), &[v(0)]);
        assert_eq!(a.num_vars(), 2); // Universe is unchanged.
                                     // Model counts agree.
        assert_eq!(phi.brute_force_model_count(), a.brute_force_model_count());
    }

    #[test]
    fn or_and_composition() {
        let x = Dnf::variable(v(0));
        let y = Dnf::variable(v(1));
        let z = Dnf::variable(v(2));
        let xy_or_xz = x.and(&y).or(&x.and(&z));
        assert_eq!(xy_or_xz, example9());
        let t = Dnf::constant_true(VarSet::from_iter([v(9)]));
        assert!(x.or(&t).is_true());
        assert_eq!(x.and(&t).num_vars(), 2);
        let f = Dnf::constant_false(VarSet::from_iter([v(9)]));
        assert!(x.and(&f).is_false());
        assert_eq!(x.or(&f).num_clauses(), 1);
    }

    #[test]
    fn duplicate_clauses_are_merged() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(0)]]);
        assert_eq!(phi.num_clauses(), 1);
    }

    #[test]
    fn is_single_literal() {
        assert_eq!(Dnf::variable(v(3)).is_single_literal(), Some(v(3)));
        assert_eq!(example9().is_single_literal(), None);
        // A single-clause function over a wider universe is not a literal leaf.
        let phi =
            Dnf::from_clauses_with_universe(vec![vec![v(0)]], VarSet::from_iter([v(0), v(1)]));
        assert_eq!(phi.is_single_literal(), None);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn universe_mismatch_panics() {
        Dnf::from_clauses_with_universe(vec![vec![v(5)]], VarSet::from_iter([v(0)]));
    }
}
