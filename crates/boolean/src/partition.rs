//! Independence partitioning and common-variable factoring.
//!
//! These are the two "cheap" decomposition steps used during d-tree
//! compilation (Sec. 3.1 of the paper):
//!
//! * If the clause/variable incidence graph of `φ` has several connected
//!   components, `φ` is the disjunction of *independent* functions — an ⊗
//!   node.
//! * If some variable occurs in *every* clause, it can be factored out:
//!   `φ = x ∧ φ'` — an ⊙ node ("Our algorithm computing d-trees does this
//!   whenever a variable occurs in all clauses", Example 9).

use crate::{Dnf, Var, VarSet};
use std::collections::HashMap;

/// Union-find over dense indices.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Splits `φ` into independent components (functions over pairwise disjoint
/// variable sets whose disjunction is `φ`).
///
/// Returns `None` if no split is possible (a single connected component that
/// covers the whole universe). Otherwise returns at least two components:
/// one per connected component of the clause graph, plus — if some universe
/// variables occur in no clause — one constant-`false` component over those
/// unused variables (`φ ∨ ⊥ = φ`, and the unused variables only contribute a
/// `2^k` factor to the model count, which this encoding captures exactly).
pub fn independent_components(phi: &Dnf) -> Option<Vec<Dnf>> {
    if phi.is_constant() {
        return None;
    }
    let used = phi.used_vars();
    // Map used variables to dense indices for the union-find.
    let index: HashMap<Var, u32> = used.iter().zip(0u32..).collect();
    let mut uf = UnionFind::new(used.len());
    for c in phi.clauses() {
        let mut it = c.iter();
        if let Some(first) = it.next() {
            let fi = index[&first];
            for v in it {
                uf.union(fi, index[&v]);
            }
        }
    }
    // Group used variables by component root.
    let mut groups: HashMap<u32, VarSet> = HashMap::new();
    for v in used.iter() {
        let root = uf.find(index[&v]);
        groups.entry(root).or_default().insert(v);
    }
    let unused = phi.universe().difference(&used);
    if groups.len() <= 1 && unused.is_empty() {
        return None;
    }
    // Assign each clause to the component of its first variable.
    let mut components: Vec<(VarSet, Vec<crate::Clause>)> =
        groups.into_values().map(|vs| (vs, Vec::new())).collect();
    // Sort for determinism (by smallest variable in the component).
    components.sort_by_key(|(vs, _)| vs.iter().next());
    for c in phi.clauses() {
        let first = c.iter().next().expect("non-constant DNF has non-empty clauses");
        let pos = components
            .iter()
            .position(|(vs, _)| vs.contains(first))
            .expect("clause variable must belong to some component");
        components[pos].1.push(c.clone());
    }
    let mut out: Vec<Dnf> =
        components.into_iter().map(|(vs, clauses)| Dnf::from_parts(vs, clauses)).collect();
    if !unused.is_empty() {
        out.push(Dnf::constant_false(unused));
    }
    Some(out)
}

/// The set of variables that occur in *every* clause of `φ` (empty for
/// constants).
pub fn common_variables(phi: &Dnf) -> VarSet {
    if phi.is_constant() || phi.num_clauses() == 0 {
        return VarSet::empty();
    }
    let mut common: VarSet = phi.clauses()[0].iter().collect();
    for c in &phi.clauses()[1..] {
        let clause_vars: VarSet = c.iter().collect();
        common = common.intersection(&clause_vars);
        if common.is_empty() {
            break;
        }
    }
    common
}

/// Result of factoring out the variables common to all clauses:
/// `φ = (⋀ common) ∧ rest`, with `rest` over the remaining universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Factored {
    /// Variables occurring in every clause of the original function.
    pub common: VarSet,
    /// The residual function with the common variables removed from every
    /// clause; its universe is the original universe minus `common`.
    pub rest: Dnf,
}

impl Factored {
    /// Attempts to factor `φ`; returns `None` if no variable occurs in all
    /// clauses (or `φ` is constant).
    pub fn factor(phi: &Dnf) -> Option<Factored> {
        let common = common_variables(phi);
        if common.is_empty() {
            return None;
        }
        let mut rest_universe = phi.universe().clone();
        for v in common.iter() {
            rest_universe.remove(v);
        }
        let clauses: Vec<Vec<Var>> = phi
            .clauses()
            .iter()
            .map(|c| c.iter().filter(|v| !common.contains(*v)).collect())
            .collect();
        let rest = Dnf::from_clauses_with_universe(clauses, rest_universe);
        Some(Factored { common, rest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn no_split_for_connected_function() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)]]);
        assert!(independent_components(&phi).is_none());
        assert!(independent_components(&Dnf::constant_true(VarSet::empty())).is_none());
    }

    #[test]
    fn splits_disconnected_clauses() {
        // (x0 ∧ x1) ∨ (x2 ∧ x3) ∨ x4  → three components.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2), v(3)], vec![v(4)]]);
        let comps = independent_components(&phi).unwrap();
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(Dnf::num_vars).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        // Universes are pairwise disjoint and cover the original universe.
        let mut union = VarSet::empty();
        for c in &comps {
            assert!(union.is_disjoint(c.universe()));
            union = union.union(c.universe());
        }
        assert_eq!(&union, phi.universe());
    }

    #[test]
    fn unused_universe_vars_become_false_component() {
        let phi = Dnf::from_clauses_with_universe(
            vec![vec![v(0), v(1)]],
            VarSet::from_iter([v(0), v(1), v(2), v(3)]),
        );
        let comps = independent_components(&phi).unwrap();
        assert_eq!(comps.len(), 2);
        assert!(comps[1].is_false());
        assert_eq!(comps[1].num_vars(), 2);
        // Semantics preserved: disjunction of components equals the original.
        let rebuilt = comps.iter().fold(Dnf::constant_false(VarSet::empty()), |acc, c| acc.or(c));
        for mask in 0u32..16 {
            let assignment =
                Assignment::from_true_vars((0..4).filter(|i| mask & (1 << i) != 0).map(v));
            assert_eq!(phi.evaluate(&assignment), rebuilt.evaluate(&assignment));
        }
    }

    #[test]
    fn component_model_counts_multiply_correctly() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2)], vec![v(3), v(4)]]);
        let comps = independent_components(&phi).unwrap();
        // #non-models multiply across independent disjuncts.
        let total_vars: usize = comps.iter().map(Dnf::num_vars).sum();
        assert_eq!(total_vars, phi.num_vars());
        let brute = phi.brute_force_model_count();
        let mut non_models = banzhaf_arith::Natural::one();
        for c in &comps {
            let nm = &banzhaf_arith::Natural::pow2(c.num_vars()) - &c.brute_force_model_count();
            non_models = non_models.mul_ref(&nm);
        }
        let rebuilt = &banzhaf_arith::Natural::pow2(phi.num_vars()) - &non_models;
        assert_eq!(brute, rebuilt);
    }

    #[test]
    fn common_variable_detection() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        assert_eq!(common_variables(&phi).as_slice(), &[v(0)]);
        let none = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2)]]);
        assert!(common_variables(&none).is_empty());
        assert!(common_variables(&Dnf::constant_true(VarSet::empty())).is_empty());
    }

    #[test]
    fn factoring_example9() {
        // (x ∧ y) ∨ (x ∧ z) = x ∧ (y ∨ z).
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        let f = Factored::factor(&phi).unwrap();
        assert_eq!(f.common.as_slice(), &[v(0)]);
        assert_eq!(f.rest.num_clauses(), 2);
        assert_eq!(f.rest.num_vars(), 2);
        assert!(!f.rest.universe().contains(v(0)));
        // Factoring a function with no common variable fails.
        assert!(Factored::factor(&Dnf::from_clauses(vec![vec![v(0)], vec![v(1)]])).is_none());
    }

    #[test]
    fn factoring_clause_equal_to_common_set_gives_true_rest() {
        // x ∨ (x ∧ y) : common = {x}, rest = ⊤ ∨ y = ⊤ over {y}.
        let phi = Dnf::from_clauses(vec![vec![v(0)], vec![v(0), v(1)]]);
        let f = Factored::factor(&phi).unwrap();
        assert_eq!(f.common.as_slice(), &[v(0)]);
        assert!(f.rest.is_true());
        assert_eq!(f.rest.num_vars(), 1);
    }
}
