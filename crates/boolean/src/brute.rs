//! Brute-force model counting and Banzhaf evaluation.
//!
//! These exponential-time routines serve as the ground-truth oracle in tests
//! and property tests; they enumerate all `2^n` assignments over the
//! function's universe and therefore refuse to run beyond a small number of
//! variables.

use crate::{Assignment, Dnf, Var};
use banzhaf_arith::{Int, Natural};

/// Maximum universe size the brute-force routines accept.
const MAX_BRUTE_VARS: usize = 26;

impl Dnf {
    /// Exact model count `#φ` over the universe, by exhaustive enumeration.
    ///
    /// # Panics
    /// Panics if the universe has more than 26 variables.
    pub fn brute_force_model_count(&self) -> Natural {
        let vars: Vec<Var> = self.universe().iter().collect();
        assert!(
            vars.len() <= MAX_BRUTE_VARS,
            "brute-force counting limited to {MAX_BRUTE_VARS} variables"
        );
        let mut count = 0u64;
        for mask in 0u64..(1u64 << vars.len()) {
            let assignment = assignment_from_mask(&vars, mask);
            if self.evaluate(&assignment) {
                count += 1;
            }
        }
        Natural::from(count)
    }

    /// Exact Banzhaf value of `v` by the definition (Eq. (1) of the paper):
    /// the sum over all `Y ⊆ X∖{v}` of `φ[Y ∪ {v}] − φ[Y]`.
    ///
    /// # Panics
    /// Panics if the universe has more than 26 variables or `v` is not in it.
    pub fn brute_force_banzhaf(&self, v: Var) -> Int {
        assert!(self.universe().contains(v), "variable not in the universe");
        let others: Vec<Var> = self.universe().iter().filter(|&u| u != v).collect();
        assert!(
            others.len() < MAX_BRUTE_VARS,
            "brute-force Banzhaf limited to {MAX_BRUTE_VARS} variables"
        );
        let mut value = Int::zero();
        for mask in 0u64..(1u64 << others.len()) {
            let without = assignment_from_mask(&others, mask);
            let with = without.with(v);
            let delta = (self.evaluate(&with) as i64) - (self.evaluate(&without) as i64);
            value += &Int::from(delta);
        }
        value
    }

    /// Exact Banzhaf values of all universe variables, brute force.
    pub fn brute_force_all_banzhaf(&self) -> Vec<(Var, Int)> {
        self.universe().iter().map(|v| (v, self.brute_force_banzhaf(v))).collect()
    }

    /// Number of models of each cardinality `k` (used to cross-check the
    /// size-stratified counts that the Shapley computation relies on).
    pub fn brute_force_model_counts_by_size(&self) -> Vec<Natural> {
        let vars: Vec<Var> = self.universe().iter().collect();
        assert!(
            vars.len() <= MAX_BRUTE_VARS,
            "brute-force counting limited to {MAX_BRUTE_VARS} variables"
        );
        let mut counts = vec![0u64; vars.len() + 1];
        for mask in 0u64..(1u64 << vars.len()) {
            let assignment = assignment_from_mask(&vars, mask);
            if self.evaluate(&assignment) {
                counts[mask.count_ones() as usize] += 1;
            }
        }
        counts.into_iter().map(Natural::from).collect()
    }
}

fn assignment_from_mask(vars: &[Var], mask: u64) -> Assignment {
    Assignment::from_true_vars(
        vars.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &v)| v),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSet;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn example_2_and_4_from_paper_positive_part() {
        // The paper's Example 2 uses a negated literal; the positive analogue
        // φ = x1 ∨ x2 has Banzhaf(x1) = #φ[x1:=1] − #φ[x1:=0] = 2 − 1 = 1.
        let phi = Dnf::from_clauses(vec![vec![v(1)], vec![v(2)]]);
        assert_eq!(phi.brute_force_model_count().to_u64(), Some(3));
        assert_eq!(phi.brute_force_banzhaf(v(1)).to_i128(), Some(1));
    }

    #[test]
    fn example_6_and_7_from_paper() {
        // Lineage of Example 6: (r ∧ s1 ∧ t) ∨ (r ∧ s2 ∧ t) over 4 facts.
        let r = v(0);
        let s1 = v(1);
        let s2 = v(2);
        let t = v(3);
        let phi = Dnf::from_clauses(vec![vec![r, s1, t], vec![r, s2, t]]);
        // Example 7 of the paper reports Banzhaf(R(1,2,3)) = 2, but by
        // Eq. (2) #φ[v(R):=1] = #((S4∧T)∨(S5∧T)) = 3 and #φ[v(R):=0] = 0,
        // so the value is 3 (the example in the paper miscounts the models of
        // the conditioned function). Banzhaf(S(1,2,4)) = 2 − 1 = 1 as stated.
        assert_eq!(phi.brute_force_banzhaf(r).to_i128(), Some(3));
        assert_eq!(phi.brute_force_banzhaf(s1).to_i128(), Some(1));
        assert_eq!(phi.brute_force_banzhaf(s2).to_i128(), Some(1));
        assert_eq!(phi.brute_force_banzhaf(t).to_i128(), Some(3));
        assert_eq!(phi.brute_force_model_count().to_u64(), Some(3));
    }

    #[test]
    fn example_11_from_paper() {
        // φ1 = x ∧ (y ∨ z): 3 models, Banzhaf(x) = 3.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        assert_eq!(phi.brute_force_model_count().to_u64(), Some(3));
        assert_eq!(phi.brute_force_banzhaf(v(0)).to_i128(), Some(3));
        assert_eq!(phi.brute_force_banzhaf(v(1)).to_i128(), Some(1));
    }

    #[test]
    fn example_13_from_paper() {
        // φ = (x ∧ y) ∨ (x ∧ z) ∨ u: #φ = 11, Banzhaf(x) = 3.
        let x = v(0);
        let phi = Dnf::from_clauses(vec![vec![x, v(1)], vec![x, v(2)], vec![v(3)]]);
        assert_eq!(phi.brute_force_model_count().to_u64(), Some(11));
        assert_eq!(phi.brute_force_banzhaf(x).to_i128(), Some(3));
        // φ[x := 0] has 4 models over three variables, φ[x := 1] has 7.
        assert_eq!(phi.condition(x, false).brute_force_model_count().to_u64(), Some(4));
        assert_eq!(phi.condition(x, true).brute_force_model_count().to_u64(), Some(7));
    }

    #[test]
    fn constants_and_unused_universe_vars() {
        let u = VarSet::from_iter([v(0), v(1), v(2)]);
        assert_eq!(Dnf::constant_true(u.clone()).brute_force_model_count().to_u64(), Some(8));
        assert_eq!(Dnf::constant_false(u.clone()).brute_force_model_count().to_u64(), Some(0));
        // x over universe {x, y, z}: 4 models; Banzhaf(y) = 0.
        let phi = Dnf::from_clauses_with_universe(vec![vec![v(0)]], u);
        assert_eq!(phi.brute_force_model_count().to_u64(), Some(4));
        assert_eq!(phi.brute_force_banzhaf(v(1)).to_i128(), Some(0));
        assert_eq!(phi.brute_force_banzhaf(v(0)).to_i128(), Some(4));
    }

    #[test]
    fn proposition_3_characterization() {
        // Banzhaf(φ, x) = #φ[x:=1] − #φ[x:=0] for a handful of functions.
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2), v(3)], vec![v(0), v(3)]]),
            Dnf::from_clauses(vec![vec![v(0)], vec![v(1), v(2)], vec![v(3), v(4)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1), v(2), v(3)]]),
        ];
        for phi in functions {
            for x in phi.universe().iter() {
                let direct = phi.brute_force_banzhaf(x);
                let by_counts = Int::sub_naturals(
                    &phi.condition(x, true).brute_force_model_count(),
                    &phi.condition(x, false).brute_force_model_count(),
                );
                assert_eq!(direct, by_counts);
            }
        }
    }

    #[test]
    fn counts_by_size_sum_to_total() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2)], vec![v(1), v(3)]]);
        let by_size = phi.brute_force_model_counts_by_size();
        let total: u64 = by_size.iter().map(|c| c.to_u64().unwrap()).sum();
        assert_eq!(Natural::from(total), phi.brute_force_model_count());
        assert_eq!(by_size.len(), phi.num_vars() + 1);
        assert_eq!(by_size[0].to_u64(), Some(0)); // Empty set satisfies nothing.
    }
}
