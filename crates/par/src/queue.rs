//! A bounded multi-producer/multi-consumer blocking queue.
//!
//! This is the request-queue substrate of the async serving layer
//! (`banzhaf-serve`): producers get an immediate, typed *rejection* when the
//! queue is full (backpressure instead of unbounded buffering), consumers
//! block until an item or shutdown arrives, and closing the queue wakes every
//! blocked consumer exactly once. Built on `Mutex` + `Condvar` only, like the
//! rest of this crate.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load or retry later.
    Full {
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The queue was closed; no further items will ever be accepted.
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full { capacity } => write!(f, "queue is full (capacity {capacity})"),
            PushError::Closed => write!(f, "queue is closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking MPMC queue with typed full/closed rejections.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (a racy snapshot, for reporting).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// `true` iff no items are currently queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or refuses with a typed [`PushError`] when the queue
    /// is at capacity or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full { capacity: self.capacity });
        }
        // Fault injection: pretend the queue is full (tests only; compiles
        // out without --features failpoints).
        crate::failpoint!("queue::try_push_full", {
            return Err(PushError::Full { capacity: self.capacity });
        });
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    ///
    /// Returns `None` once the queue is closed *and* drained — the consumer's
    /// signal to exit its loop. Items enqueued before the close are still
    /// delivered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Dequeues the oldest item without blocking (`None` when empty).
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().expect("queue lock poisoned").items.pop_front()
    }

    /// Closes the queue: further pushes are refused with [`PushError::Closed`]
    /// and every consumer blocked in [`BoundedQueue::pop`] wakes up. Items
    /// already queued remain poppable (graceful drain); use
    /// [`BoundedQueue::drain`] to reject them instead.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// `true` iff [`BoundedQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Removes and returns every currently queued item (used to fail pending
    /// requests on shutdown).
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn full_queue_rejects_with_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full { capacity: 2 }));
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_rejects_pushes_but_drains_gracefully() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = BoundedQueue::<u32>::new(1);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(5));
            q.close();
            assert_eq!(consumer.join().unwrap(), None);
        });
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_every_item() {
        let q = BoundedQueue::new(8);
        let consumed = AtomicU64::new(0);
        const ITEMS: u64 = 200;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..ITEMS {
                // Spin on backpressure: the queue is deliberately smaller
                // than the item count.
                loop {
                    match q.try_push(i) {
                        Ok(()) => break,
                        Err(PushError::Full { .. }) => std::thread::yield_now(),
                        Err(PushError::Closed) => panic!("queue closed early"),
                    }
                }
            }
            q.close();
        });
        assert_eq!(consumed.load(Ordering::Relaxed), ITEMS);
    }

    #[test]
    fn drain_empties_the_queue() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.drain(), vec![0, 1, 2]);
        assert!(q.is_empty());
    }
}
