//! Dependency-free fork-join parallelism for the attribution pipeline.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small parallel substrate the workspace needs on top of
//! [`std::thread::scope`]:
//!
//! * [`ThreadPool`] — a lightweight handle describing a worker count.
//!   Workers are *scoped*: they are spawned per batch call and joined before
//!   the call returns, so closures may borrow from the caller's stack and no
//!   `unsafe` lifetime laundering is needed.
//! * [`ThreadPool::parallel_map`] — map a function over a slice with
//!   **deterministic result ordering**: results come back indexed by input
//!   position regardless of which worker computed them or in which order.
//!   Scheduling is dynamic: the items are split into chunks on a shared queue
//!   and idle workers claim ("steal") the next unclaimed chunk, so a few
//!   expensive items do not serialize the batch on its slowest worker.
//! * [`ThreadPool::join`] — two-way fork-join for recursive splits.
//! * [`queue::BoundedQueue`] — a bounded blocking MPMC queue with typed
//!   full/closed rejections, the request-queue substrate reused by the async
//!   serving layer (`banzhaf-serve`).
//! * [`seed`] — splitmix64-style derivation of independent RNG seed streams
//!   from a base seed and a chunk index, so randomized estimators produce
//!   the *same* well-defined sample set at every thread count.
//!
//! Batches start inline and only spawn workers once their measured work
//! crosses [`INLINE_WORK_THRESHOLD`], so a parallel pool never loses to a
//! sequential one on batches too cheap to amortize fork-join overhead.
//!
//! A pool with `threads <= 1` runs everything inline on the caller's thread;
//! parallel and sequential execution are bit-identical for deterministic
//! closures because ordering never leaks into results.
//!
//! # Example
//!
//! ```
//! use banzhaf_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.parallel_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[cfg(feature = "failpoints")]
pub mod failpoints;
pub mod queue;

/// Evaluate a named fault-injection site (see [`failpoints`]).
///
/// * `failpoint!("site")` — hit the site; an armed `Panic`/`Sleep` action
///   takes effect here, a `Trigger` action is swallowed.
/// * `failpoint!("site", expr)` — hit the site and evaluate `expr` when an
///   armed `Trigger` action fires (typically an early `return`).
///
/// Without `--features failpoints` both forms compile to nothing, so planted
/// sites cost zero in production builds. The feature is resolved on *this*
/// crate: enabling `banzhaf-par/failpoints` anywhere in the build graph
/// activates every planted site in every dependent crate (cargo feature
/// unification), which is exactly what the chaos suite wants.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        let _ = $crate::failpoints::hit($site);
    };
    ($site:expr, $on_trigger:expr) => {
        if $crate::failpoints::hit($site) {
            $on_trigger
        }
    };
}

/// Inert form of [`failpoint!`]: without `--features failpoints` every
/// planted site compiles to nothing.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {};
    ($site:expr, $on_trigger:expr) => {};
}

/// The measured-work threshold below which [`ThreadPool::parallel_map`] stays
/// inline: workers are spawned only once the first items of a batch have
/// consumed this much wall-clock time on the caller's thread. Cheap batches
/// (per-item cost far below the cost of spawning a scoped worker) therefore
/// never pay the fork-join overhead, and expensive batches serialize at most
/// this prefix before fanning out.
pub const INLINE_WORK_THRESHOLD: Duration = Duration::from_micros(500);

/// A scoped fork-join thread pool.
///
/// The pool is a cheap, copyable description of a worker count; actual OS
/// threads are spawned per batch call inside a [`std::thread::scope`] and
/// joined before the call returns. This keeps the API free of `'static`
/// bounds (closures may borrow the caller's data) without any `unsafe`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool with the given number of worker threads, clamped to the
    /// machine's available parallelism.
    ///
    /// `0` means "one worker per available CPU" (as reported by
    /// [`std::thread::available_parallelism`], falling back to 1). Requests
    /// beyond the available CPUs are clamped down: a CPU-bound fork-join
    /// batch can never win by timeslicing one core between two workers — it
    /// measurably *loses* to the extra context switches and cache pressure —
    /// so `new(4)` on a single-core container runs inline rather than
    /// pretending to parallelize. Use [`ThreadPool::oversubscribed`] when
    /// more workers than cores is genuinely wanted.
    pub fn new(threads: usize) -> Self {
        let available = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        let threads = if threads == 0 { available } else { threads.min(available) };
        ThreadPool { threads }
    }

    /// A pool with exactly `threads` workers (at least 1), even beyond the
    /// machine's available parallelism.
    ///
    /// Oversubscription is useful for fairness/latency (a serving layer
    /// keeping requests independently interruptible) and for exercising the
    /// concurrent machinery in tests on small machines; for throughput of
    /// CPU-bound batches, prefer the clamped [`ThreadPool::new`].
    pub fn oversubscribed(threads: usize) -> Self {
        ThreadPool { threads: threads.max(1) }
    }

    /// The single-threaded pool: every batch call runs inline.
    pub fn sequential() -> Self {
        ThreadPool { threads: 1 }
    }

    /// The number of worker threads batch calls may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` iff batch calls run inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// `f` receives `(index, &item)` so callers can derive per-item seeds or
    /// labels from the input position. Items are scheduled dynamically in
    /// chunks of [`default_chunk_size`]; see [`ThreadPool::parallel_map_chunked`]
    /// to control the granularity.
    ///
    /// # Panics
    /// Propagates the first panic raised by `f` on any worker.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.parallel_map_chunked(items, default_chunk_size(items.len(), self.threads), f)
    }

    /// [`ThreadPool::parallel_map`] with an explicit chunk size.
    ///
    /// A chunk is the unit of scheduling: workers repeatedly claim the next
    /// unclaimed chunk from a shared queue. Smaller chunks balance uneven
    /// items better; larger chunks amortize the (one atomic op) claim cost.
    ///
    /// The batch starts *inline* on the caller's thread and only spawns
    /// workers once the measured work crosses [`INLINE_WORK_THRESHOLD`] — a
    /// batch whose per-item cost is too small to amortize fork-join overhead
    /// runs entirely inline (bit-identical either way, since result ordering
    /// never depends on scheduling), and 2 threads never lose to 1 on cheap
    /// batches just by paying thread-spawn cost.
    ///
    /// # Panics
    /// Panics if `chunk == 0`; propagates panics raised by `f`.
    pub fn parallel_map_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let n = items.len();
        if self.is_sequential() || n <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        // Adaptive inline prefix: run items on the caller's thread until the
        // batch has demonstrated enough work to be worth spawning for. The
        // probe is cumulative (not a single-item estimate), so one cheap
        // leading item cannot misclassify an otherwise expensive batch.
        let mut results: Vec<R> = Vec::with_capacity(n);
        let probe_start = Instant::now();
        while results.len() < n {
            if probe_start.elapsed() >= INLINE_WORK_THRESHOLD && n - results.len() > 1 {
                break;
            }
            let i = results.len();
            results.push(f(i, &items[i]));
        }
        let done = results.len();
        if done == n {
            return results;
        }
        // One write-once slot per remaining item keeps result ordering
        // deterministic: chunk ranges are disjoint so each slot's mutex is
        // taken exactly once (never contended), and the caller drains the
        // slots in input order after the scope joins every worker.
        let slots: Vec<Mutex<Option<R>>> = (done..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(done);
        let workers = self.threads.min(n - done);
        let work = || loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for (i, item) in items.iter().enumerate().take((start + chunk).min(n)).skip(start) {
                let result = f(i, item);
                *slots[i - done].lock().expect("no other thread writes this slot") = Some(result);
            }
        };
        std::thread::scope(|scope| {
            // The caller claims chunks too instead of idling in the join:
            // total concurrency stays at `workers` while one fewer OS thread
            // is spawned per batch.
            for _ in 1..workers {
                // The closure only captures shared references, so it is
                // `Copy`: each spawn gets its own copy, and the caller keeps
                // one to run below.
                scope.spawn(work);
            }
            work();
        });
        results.extend(slots.into_iter().map(|slot| {
            slot.into_inner()
                .expect("workers joined")
                .expect("every chunk was claimed and completed")
        }));
        results
    }

    /// Runs two closures, potentially in parallel, and returns both results.
    ///
    /// On a sequential pool (or when only one thread is available) `a` runs
    /// before `b` on the caller's thread.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.is_sequential() {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        std::thread::scope(|scope| {
            let handle = scope.spawn(b);
            let ra = a();
            let rb = handle.join().expect("join closure panicked");
            (ra, rb)
        })
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::sequential()
    }
}

/// The default scheduling granularity for a batch of `items` on `workers`
/// threads: roughly four chunks per worker, so stragglers can be absorbed by
/// idle workers without paying a queue operation per item.
pub fn default_chunk_size(items: usize, workers: usize) -> usize {
    if workers <= 1 {
        return items.max(1);
    }
    items.div_ceil(workers.saturating_mul(4).max(1)).max(1)
}

pub mod seed {
    //! Deterministic derivation of independent RNG seed streams.
    //!
    //! Randomized estimators that fan work across threads must not let the
    //! thread count change the sample set. The fix mirrors what the bench
    //! sweep already does per corpus: derive one seed per logical *chunk*
    //! (instance, variable, …) from a base seed and the chunk index, and give
    //! every chunk its own generator. [`derive()`] is that derivation — a
    //! splitmix64-style bijective mix, so nearby `(base, index)` pairs yield
    //! statistically unrelated seeds and no two chunks share a stream.

    /// The splitmix64 finalizer: a bijective avalanche mix of 64 bits.
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives the seed of stream `index` from `base`.
    ///
    /// Deterministic, and injective in `index` for a fixed `base` (the mix is
    /// a bijection applied to distinct inputs), so streams never collide for
    /// indices below 2⁶⁴.
    pub fn derive(base: u64, index: u64) -> u64 {
        mix(base
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(mix(index.wrapping_add(0x9E37_79B9_7F4A_7C15))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn distinct_indices_yield_distinct_seeds() {
            let mut seen = std::collections::HashSet::new();
            for i in 0..1000u64 {
                assert!(seen.insert(derive(42, i)));
            }
        }

        #[test]
        fn deterministic() {
            assert_eq!(derive(7, 3), derive(7, 3));
            assert_ne!(derive(7, 3), derive(8, 3));
            assert_ne!(derive(0, 0), derive(0, 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let items: Vec<u64> = (0..100).collect();
            let mapped = pool.parallel_map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(mapped, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_items_are_balanced_by_chunking() {
        // One expensive item among many cheap ones must not pin the result
        // ordering or drop items; chunk size 1 exercises the queue hardest.
        // Oversubscribed so the parallel path runs even on a 1-core machine.
        let pool = ThreadPool::oversubscribed(4);
        let items: Vec<u64> = (0..40).collect();
        let mapped = pool.parallel_map_chunked(&items, 1, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(mapped, items);
    }

    #[test]
    fn every_item_computed_exactly_once() {
        let calls = AtomicU64::new(0);
        let pool = ThreadPool::oversubscribed(3);
        let items: Vec<u32> = (0..97).collect();
        let mapped = pool.parallel_map(&items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(mapped.len(), 97);
        assert_eq!(calls.load(Ordering::Relaxed), 97);
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let pool = ThreadPool::oversubscribed(threads);
            let (a, b) = pool.join(|| 2 + 2, || "banzhaf".len());
            assert_eq!((a, b), (4, 7));
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = ThreadPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn chunk_size_heuristic() {
        assert_eq!(default_chunk_size(0, 4), 1);
        assert_eq!(default_chunk_size(100, 1), 100);
        assert_eq!(default_chunk_size(100, 4), 7);
        assert!(default_chunk_size(3, 8) >= 1);
    }

    #[test]
    fn cheap_batches_run_inline_on_the_callers_thread() {
        // Items far below the inline threshold should not spawn workers. The
        // probe is wall-clock driven, so a single OS preemption longer than
        // the threshold mid-batch can legitimately trigger a fan-out; retry a
        // few times and require one fully-inline run (the overwhelmingly
        // common case) rather than asserting on one timing sample.
        let pool = ThreadPool::oversubscribed(4);
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..16).collect();
        let fully_inline = (0..5).any(|_| {
            let threads: Vec<std::thread::ThreadId> =
                pool.parallel_map(&items, |_, _| std::thread::current().id());
            threads.iter().all(|&t| t == caller)
        });
        assert!(fully_inline, "a cheap batch must (at least sometimes) stay inline");
        // The deterministic part of the contract: the probe prefix always
        // starts on the caller's thread.
        let threads: Vec<std::thread::ThreadId> =
            pool.parallel_map(&items, |_, _| std::thread::current().id());
        assert_eq!(threads[0], caller);
    }

    #[test]
    fn expensive_batches_spawn_workers_after_the_inline_prefix() {
        // Oversubscribed: `new` clamps to the core count, and this test must
        // observe spawned workers even on a 1-core machine.
        let pool = ThreadPool::oversubscribed(4);
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..16).collect();
        let threads: Vec<std::thread::ThreadId> = pool.parallel_map(&items, |_, _| {
            std::thread::sleep(Duration::from_millis(1));
            std::thread::current().id()
        });
        assert!(threads.iter().any(|&t| t != caller), "expensive batch must fan out");
        // The inline prefix ran on the caller's thread, in input order.
        assert_eq!(threads[0], caller);
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        let items: Vec<u64> = (0..64).collect();
        let baseline =
            ThreadPool::sequential().parallel_map(&items, |i, &x| seed::derive(x, i as u64));
        for threads in [2, 3, 4, 7] {
            let pool = ThreadPool::oversubscribed(threads);
            let mapped = pool.parallel_map(&items, |i, &x| seed::derive(x, i as u64));
            assert_eq!(mapped, baseline);
        }
    }
}
