//! Deterministic fault injection for tests (`--features failpoints`).
//!
//! A *failpoint* is a named site in production code where a test can inject a
//! fault — a panic, an artificial delay, or a site-interpreted trigger (e.g.
//! "pretend the queue is full"). Sites are planted with the
//! [`failpoint!`](crate::failpoint) macro, which compiles to **nothing** unless
//! the `failpoints` cargo feature is enabled, so release binaries and the
//! gated micro-benches pay zero overhead.
//!
//! With the feature on, a site still does nothing until a test *arms* it via
//! [`arm`], which returns an RAII [`FailGuard`] that disarms the site on drop.
//! Arming is keyed by site name in a process-global registry; tests that arm
//! the same site must serialize themselves (the chaos suite uses distinct
//! sites per scenario or a shared mutex).
//!
//! Triggers are deterministic by construction: [`Trigger::NthHit`] fires on
//! exactly one hit, [`Trigger::EveryK`] on a fixed cadence, and
//! [`Trigger::Probability`] flips a splitmix64-seeded coin per hit — the same
//! seed always yields the same fault schedule, so a failing chaos case can be
//! replayed bit-for-bit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when its trigger fires.
#[derive(Clone, Debug)]
pub enum FailAction {
    /// Panic with the given message (exercises unwind/poison paths).
    Panic(&'static str),
    /// Sleep for the given duration (exercises contention/timeout paths).
    Sleep(Duration),
    /// Report `true` from the site; the site interprets it (e.g. a queue
    /// pretends to be full, a budget pretends to be exhausted).
    Trigger,
}

/// When an armed failpoint fires.
#[derive(Clone, Debug)]
pub enum Trigger {
    /// Fire on exactly the `n`-th hit (1-based), once.
    NthHit(u64),
    /// Fire on every `k`-th hit (`k` = 1 means every hit).
    EveryK(u64),
    /// Fire each hit independently with probability `p`, decided by a
    /// splitmix64 stream seeded from `seed` and the hit index —
    /// deterministic for a given seed.
    Probability {
        /// Stream seed; the same seed replays the same schedule.
        seed: u64,
        /// Per-hit firing probability in `[0, 1]`.
        p: f64,
    },
    /// Fire on every hit.
    Always,
}

struct Armed {
    trigger: Trigger,
    action: FailAction,
    hits: AtomicU64,
}

impl Armed {
    /// Count a hit and decide whether the trigger fires on it.
    fn fires(&self) -> bool {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        match self.trigger {
            Trigger::NthHit(n) => hit == n,
            Trigger::EveryK(k) => k > 0 && hit % k == 0,
            Trigger::Probability { seed, p } => {
                let draw = crate::seed::derive(seed, hit);
                // Map the top 53 bits onto [0, 1) exactly like a double draw.
                let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
                unit < p
            }
            Trigger::Always => true,
        }
    }
}

fn registry() -> &'static Mutex<HashMap<&'static str, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// RAII handle returned by [`arm`]; dropping it disarms the site.
#[must_use = "dropping the guard disarms the failpoint"]
pub struct FailGuard {
    site: &'static str,
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        // A poisoned registry just means some armed site panicked by design;
        // recover the map and disarm anyway.
        let mut map = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.remove(self.site);
    }
}

/// Arm `site` so that subsequent hits evaluate `trigger` and, when it fires,
/// perform `action`. Re-arming an already-armed site replaces its schedule
/// (and resets the hit counter).
pub fn arm(site: &'static str, trigger: Trigger, action: FailAction) -> FailGuard {
    let mut map = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    map.insert(site, Armed { trigger, action, hits: AtomicU64::new(0) });
    FailGuard { site }
}

/// Evaluate a hit on `site`. Called by the [`failpoint!`](crate::failpoint)
/// macro; not meant to be called directly.
///
/// Returns `true` iff the site is armed with [`FailAction::Trigger`] and the
/// trigger fired on this hit. [`FailAction::Panic`] panics from here;
/// [`FailAction::Sleep`] blocks and then returns `false`.
pub fn hit(site: &'static str) -> bool {
    let action = {
        let map = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map.get(site) {
            Some(armed) if armed.fires() => armed.action.clone(),
            _ => return false,
        }
    };
    match action {
        FailAction::Panic(msg) => panic!("failpoint {site}: {msg}"),
        FailAction::Sleep(d) => {
            std::thread::sleep(d);
            false
        }
        FailAction::Trigger => true,
    }
}

/// Number of hits recorded on `site` since it was (re-)armed; 0 if unarmed.
/// Lets tests assert a planted site was actually reached.
pub fn hits(site: &'static str) -> u64 {
    let map = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    map.get(site).map_or(0, |armed| armed.hits.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_hit_fires_once() {
        let _g = arm("fp-test-nth", Trigger::NthHit(3), FailAction::Trigger);
        let fired: Vec<bool> = (0..5).map(|_| hit("fp-test-nth")).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(hits("fp-test-nth"), 5);
    }

    #[test]
    fn every_k_fires_on_cadence() {
        let _g = arm("fp-test-everyk", Trigger::EveryK(2), FailAction::Trigger);
        let fired: Vec<bool> = (0..6).map(|_| hit("fp-test-everyk")).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn probability_is_deterministic() {
        let schedule = |seed| -> Vec<bool> {
            let _g =
                arm("fp-test-prob", Trigger::Probability { seed, p: 0.5 }, FailAction::Trigger);
            (0..64).map(|_| hit("fp-test-prob")).collect()
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f), "p=0.5 over 64 hits should fire");
        assert!(a.iter().any(|&f| !f), "p=0.5 over 64 hits should also skip");
    }

    #[test]
    fn unarmed_site_is_inert_and_guard_disarms() {
        assert!(!hit("fp-test-unarmed"));
        {
            let _g = arm("fp-test-guard", Trigger::Always, FailAction::Trigger);
            assert!(hit("fp-test-guard"));
        }
        assert!(!hit("fp-test-guard"), "guard drop must disarm");
    }

    #[test]
    fn panic_action_panics_and_registry_survives() {
        let _g = arm("fp-test-panic", Trigger::NthHit(1), FailAction::Panic("boom"));
        let err = std::panic::catch_unwind(|| hit("fp-test-panic"));
        assert!(err.is_err());
        // Registry still usable after the unwind.
        assert!(!hit("fp-test-panic"), "NthHit(1) already spent");
    }
}
