//! Property-based tests for the arbitrary-precision arithmetic, checked
//! against native `u128`/`i128` arithmetic and against algebraic identities
//! for operands that exceed machine width.

use banzhaf_arith::{Int, Natural, Ratio};
use proptest::prelude::*;

fn nat(v: u128) -> Natural {
    Natural::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        prop_assert_eq!((&nat(a) + &nat(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((&nat(hi) - &nat(lo)).to_u128(), Some(hi - lo));
        prop_assert_eq!(nat(lo).checked_sub(&nat(hi)).is_none(), hi != lo);
    }

    #[test]
    fn mul_matches_u128(a in 0u128..u64::MAX as u128, b in 0u128..u64::MAX as u128) {
        prop_assert_eq!((&nat(a) * &nat(b)).to_u128(), Some(a * b));
    }

    #[test]
    fn div_rem_roundtrip(a in any::<u128>(), b in 1u128..u64::MAX as u128) {
        let (q, r) = nat(a).div_rem(&nat(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn div_rem_invariant_large(bits_a in 0usize..400, bits_b in 1usize..300, add_a in any::<u64>(), add_b in any::<u64>()) {
        let a = &Natural::pow2(bits_a) + &Natural::from(add_a);
        let b = &Natural::pow2(bits_b) + &Natural::from(add_b);
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn mul_commutative_and_associative_large(
        e1 in 0usize..200, e2 in 0usize..200, e3 in 0usize..200,
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(),
    ) {
        let x = &Natural::pow2(e1) + &Natural::from(a);
        let y = &Natural::pow2(e2) + &Natural::from(b);
        let z = &Natural::pow2(e3) + &Natural::from(c);
        prop_assert_eq!(&x * &y, &y * &x);
        prop_assert_eq!(&(&x * &y) * &z, &x * &(&y * &z));
    }

    #[test]
    fn distributivity_large(e1 in 0usize..200, e2 in 0usize..200, a in any::<u64>(), b in any::<u64>()) {
        let x = &Natural::pow2(e1) + &Natural::from(a);
        let y = &Natural::pow2(e2) + &Natural::from(b);
        let z = Natural::from(123_456_789u64);
        prop_assert_eq!(&z * &(&x + &y), &(&z * &x) + &(&z * &y));
    }

    #[test]
    fn shifts_are_pow2_mul(v in any::<u64>(), s in 0usize..300) {
        let n = Natural::from(v);
        prop_assert_eq!(n.shl_bits(s), &n * &Natural::pow2(s));
        prop_assert_eq!(n.shl_bits(s).shr_bits(s), n);
    }

    #[test]
    fn decimal_roundtrip(a in any::<u128>()) {
        let n = nat(a);
        prop_assert_eq!(Natural::from_decimal(&n.to_string()), Some(n));
    }

    #[test]
    fn ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(nat(a).cmp(&nat(b)), a.cmp(&b));
    }

    #[test]
    fn int_ops_match_i128(a in -(1i128 << 100)..(1i128 << 100), b in -(1i128 << 100)..(1i128 << 100)) {
        let ia = int_from_i128(a);
        let ib = int_from_i128(b);
        prop_assert_eq!((&ia + &ib).to_i128(), Some(a + b));
        prop_assert_eq!((&ia - &ib).to_i128(), Some(a - b));
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn int_mul_matches_i128(a in -(1i128 << 60)..(1i128 << 60), b in -(1i128 << 60)..(1i128 << 60)) {
        let ia = int_from_i128(a);
        let ib = int_from_i128(b);
        prop_assert_eq!((&ia * &ib).to_i128(), Some(a * b));
    }

    #[test]
    fn ratio_ordering_matches_fraction(a in 0u64..10_000, b in 1u64..10_000, c in 0u64..10_000, d in 1u64..10_000) {
        let lhs = Ratio::from_u64(a, b);
        let rhs = Ratio::from_u64(c, d);
        let exact = (a as u128 * d as u128).cmp(&(c as u128 * b as u128));
        prop_assert_eq!(lhs.cmp(&rhs), exact);
    }

    #[test]
    fn ratio_error_condition_matches_f64(l in 0u64..1_000_000, span in 0u64..1_000_000, num in 0u64..100, den in 1u64..100) {
        // Compare the exact condition against a conservative f64 evaluation
        // away from the boundary.
        let u = l + span;
        let eps = Ratio::from_u64(num, den);
        let exact = eps.error_condition_met(&Natural::from(l), &Natural::from(u));
        let e = num as f64 / den as f64;
        let lhs = (1.0 - e) * u as f64;
        let rhs = (1.0 + e) * l as f64;
        if (lhs - rhs).abs() > 1e-3 * (lhs.abs() + rhs.abs() + 1.0) {
            prop_assert_eq!(exact, lhs <= rhs);
        }
    }

    #[test]
    fn factorial_recurrence(n in 1u64..200) {
        let f = Natural::factorial(n);
        let fm1 = Natural::factorial(n - 1);
        prop_assert_eq!(f, fm1.mul_u64(n));
    }

    #[test]
    fn binomial_symmetry(n in 0u64..80, k in 0u64..80) {
        if k <= n {
            prop_assert_eq!(Natural::binomial(n, k), Natural::binomial(n, n - k));
        } else {
            prop_assert_eq!(Natural::binomial(n, k), Natural::zero());
        }
    }
}

fn int_from_i128(v: i128) -> Int {
    if v < 0 {
        -Int::from(Natural::from(v.unsigned_abs()))
    } else {
        Int::from(Natural::from(v as u128))
    }
}
