//! Exact non-negative rationals used for ε-threshold comparisons.

use crate::Natural;
use std::cmp::Ordering;
use std::fmt;

/// A non-negative rational number `numer / denom` with `denom > 0`.
///
/// `AdaBan` needs to decide conditions such as `(1-ε)·U ≤ (1+ε)·L` and the
/// harness compares observed error ratios; doing this with exact cross
/// multiplication avoids any floating-point rounding subtleties near the
/// decision boundary.
#[derive(Clone, Debug)]
pub struct Ratio {
    numer: Natural,
    denom: Natural,
}

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ratio {}

impl Ratio {
    /// Builds `numer / denom`.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    pub fn new(numer: Natural, denom: Natural) -> Self {
        assert!(!denom.is_zero(), "Ratio denominator must be non-zero");
        Ratio { numer, denom }
    }

    /// Builds the ratio `n / d` from machine integers.
    pub fn from_u64(n: u64, d: u64) -> Self {
        Ratio::new(Natural::from(n), Natural::from(d))
    }

    /// The rational 0.
    pub fn zero() -> Self {
        Ratio::new(Natural::zero(), Natural::one())
    }

    /// The rational 1.
    pub fn one() -> Self {
        Ratio::new(Natural::one(), Natural::one())
    }

    /// Converts a small decimal like `0.1` or `0.05` into an exact ratio.
    ///
    /// Accepts strings of the form `I`, `I.F`, or `.F` where `I` and `F` are
    /// decimal digit strings. Returns `None` on malformed input.
    pub fn from_decimal_str(s: &str) -> Option<Self> {
        let (int_part, frac_part) = match s.split_once('.') {
            Some((i, f)) => (i, f),
            None => (s, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return None;
        }
        let int_digits = if int_part.is_empty() { "0" } else { int_part };
        let int_n = Natural::from_decimal(int_digits)?;
        let frac_n =
            if frac_part.is_empty() { Natural::zero() } else { Natural::from_decimal(frac_part)? };
        let denom = Natural::from(10u64).pow(frac_part.len() as u32);
        let numer = &int_n.mul_ref(&denom) + &frac_n;
        Some(Ratio::new(numer, denom))
    }

    /// Converts an `f64` in `[0, 1]` into an exact ratio with denominator
    /// 10^9, which is more than enough resolution for an error parameter.
    pub fn from_f64_approx(v: f64) -> Self {
        let v = v.clamp(0.0, 1.0e9);
        let denom = 1_000_000_000u64;
        let numer = (v * denom as f64).round() as u64;
        Ratio::from_u64(numer, denom)
    }

    /// Numerator.
    pub fn numer(&self) -> &Natural {
        &self.numer
    }

    /// Denominator.
    pub fn denom(&self) -> &Natural {
        &self.denom
    }

    /// `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.numer.to_f64() / self.denom.to_f64()
    }

    /// Exact product of two ratios (not reduced; fine for comparisons).
    pub fn mul(&self, other: &Ratio) -> Ratio {
        Ratio::new(self.numer.mul_ref(&other.numer), self.denom.mul_ref(&other.denom))
    }

    /// Exact sum of two ratios.
    pub fn add(&self, other: &Ratio) -> Ratio {
        let numer = &self.numer.mul_ref(&other.denom) + &other.numer.mul_ref(&self.denom);
        Ratio::new(numer, self.denom.mul_ref(&other.denom))
    }

    /// Multiplies the ratio by a natural number, yielding a new ratio.
    pub fn mul_natural(&self, n: &Natural) -> Ratio {
        Ratio::new(self.numer.mul_ref(n), self.denom.clone())
    }

    /// Decides `(1 - eps) * upper <= (1 + eps) * lower` exactly, where
    /// `lower` and `upper` are naturals and `eps` is this ratio.
    ///
    /// This is the stopping condition of `AdaBan` (Sec. 3.2.3 of the paper).
    /// Cross-multiplying by the (positive) denominator keeps everything in
    /// natural arithmetic: the condition is
    /// `(denom - numer) * upper <= (denom + numer) * lower`.
    /// If `eps >= 1` the left factor saturates at zero and the condition
    /// always holds.
    pub fn error_condition_met(&self, lower: &Natural, upper: &Natural) -> bool {
        let left_factor = self.denom.saturating_sub(&self.numer);
        let lhs = left_factor.mul_ref(upper);
        let rhs = (&self.denom + &self.numer).mul_ref(lower);
        lhs <= rhs
    }

    /// `(1 - eps) * value`, rounded down, as a natural.
    pub fn one_minus_times(&self, value: &Natural) -> Natural {
        let factor = self.denom.saturating_sub(&self.numer);
        let (q, _r) = factor.mul_ref(value).div_rem(&self.denom);
        q
    }

    /// `(1 + eps) * value`, rounded up, as a natural.
    pub fn one_plus_times(&self, value: &Natural) -> Natural {
        let factor = &self.denom + &self.numer;
        let prod = factor.mul_ref(value);
        let (q, r) = prod.div_rem(&self.denom);
        if r.is_zero() {
            q
        } else {
            &q + &Natural::one()
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (denominators are positive)
        self.numer.mul_ref(&other.denom).cmp(&other.numer.mul_ref(&self.denom))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.numer, self.denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parsing() {
        let r = Ratio::from_decimal_str("0.1").unwrap();
        assert_eq!(r, Ratio::from_u64(1, 10));
        let r = Ratio::from_decimal_str("2.5").unwrap();
        assert_eq!(r, Ratio::from_u64(25, 10));
        let r = Ratio::from_decimal_str(".25").unwrap();
        assert_eq!(r, Ratio::from_u64(25, 100));
        let r = Ratio::from_decimal_str("3").unwrap();
        assert_eq!(r, Ratio::from_u64(3, 1));
        assert!(Ratio::from_decimal_str("").is_none());
        assert!(Ratio::from_decimal_str("a.b").is_none());
    }

    #[test]
    fn ordering() {
        assert!(Ratio::from_u64(1, 3) < Ratio::from_u64(1, 2));
        assert!(Ratio::from_u64(2, 4) == Ratio::from_u64(1, 2));
        assert!(Ratio::from_u64(7, 3) > Ratio::one());
        assert!(Ratio::zero() < Ratio::from_u64(1, 1_000_000));
    }

    #[test]
    fn error_condition_examples_from_paper() {
        // Example 14: Lb = 43, Ub = 136. eps = 0.5 is not sufficient,
        // eps = 0.6 is sufficient.
        let lower = Natural::from(43u64);
        let upper = Natural::from(136u64);
        assert!(!Ratio::from_decimal_str("0.5").unwrap().error_condition_met(&lower, &upper));
        assert!(Ratio::from_decimal_str("0.6").unwrap().error_condition_met(&lower, &upper));
        // With eps = 0 the condition only holds when lower == upper.
        let eps0 = Ratio::zero();
        assert!(!eps0.error_condition_met(&lower, &upper));
        assert!(eps0.error_condition_met(&upper, &upper));
        // eps >= 1 always satisfies the condition.
        let eps1 = Ratio::one();
        assert!(eps1.error_condition_met(&Natural::zero(), &Natural::from(100u64)));
    }

    #[test]
    fn one_plus_minus_times() {
        let eps = Ratio::from_decimal_str("0.5").unwrap();
        assert_eq!(eps.one_minus_times(&Natural::from(100u64)).to_u64(), Some(50));
        assert_eq!(eps.one_plus_times(&Natural::from(100u64)).to_u64(), Some(150));
        // Rounding: (1 - 0.6) * 7 = 2.8 -> 2 (down);  (1 + 0.6) * 7 = 11.2 -> 12 (up).
        let eps = Ratio::from_decimal_str("0.6").unwrap();
        assert_eq!(eps.one_minus_times(&Natural::from(7u64)).to_u64(), Some(2));
        assert_eq!(eps.one_plus_times(&Natural::from(7u64)).to_u64(), Some(12));
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::from_u64(1, 3);
        let b = Ratio::from_u64(1, 6);
        assert_eq!(a.add(&b), Ratio::from_u64(9, 18));
        assert_eq!(a.mul(&b), Ratio::from_u64(1, 18));
        assert_eq!(a.mul_natural(&Natural::from(6u64)), Ratio::from_u64(6, 3));
    }

    #[test]
    fn f64_roundtrip() {
        let r = Ratio::from_f64_approx(0.1);
        assert!((r.to_f64() - 0.1).abs() < 1e-9);
    }
}
