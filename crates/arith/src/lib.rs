//! Arbitrary-precision integer arithmetic for exact Banzhaf computation.
//!
//! Model counts of Boolean functions over `n` variables can be as large as
//! `2^n`, and the lineages produced by real query workloads contain thousands
//! of variables. All counts and Banzhaf values in this reproduction are
//! therefore kept as exact arbitrary-precision integers; floating point is
//! only used at the reporting boundary.
//!
//! The crate provides three types:
//!
//! * [`Natural`] — an unsigned arbitrary-precision integer stored as base-2^64
//!   limbs, with addition, subtraction, multiplication (schoolbook and
//!   Karatsuba), long division, shifts, exponentiation, decimal conversion and
//!   lossy `f64` conversion.
//! * [`Int`] — a signed integer as a sign plus a [`Natural`] magnitude.
//!   Banzhaf values of variables in non-positive functions can be negative, so
//!   the signed type is what the algorithms expose.
//! * [`Ratio`] — a tiny exact rational used for ε-threshold comparisons such
//!   as `(1-ε)·U ≤ (1+ε)·L` without any floating-point rounding.
//!
//! # Example
//!
//! ```
//! use banzhaf_arith::{Natural, Int};
//!
//! let a = Natural::pow2(100);          // 2^100
//! let b = Natural::from(3u64);
//! assert_eq!((&a * &b).to_string(), "3802951800684688204490109616128");
//! let d = Int::from(&a) - Int::from(&b);
//! assert!(d.is_positive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod natural;
mod ratio;
mod rational;

pub use int::{Int, Sign};
pub use natural::Natural;
pub use ratio::Ratio;
pub use rational::Rational;
