//! Signed arbitrary-precision integers.

use crate::Natural;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Sign of an [`Int`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer: a sign and a [`Natural`] magnitude.
///
/// Banzhaf values of variables in general (non-positive) Boolean functions can
/// be negative (see Example 2 of the paper), and intermediate bound
/// computations subtract counts, so the algorithm layer works with `Int`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    sign: Sign,
    mag: Natural,
}

impl Int {
    /// The value 0.
    pub fn zero() -> Self {
        Int { sign: Sign::Zero, mag: Natural::zero() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Int { sign: Sign::Positive, mag: Natural::one() }
    }

    /// The value -1.
    pub fn minus_one() -> Self {
        Int { sign: Sign::Negative, mag: Natural::one() }
    }

    /// Builds an integer from a sign and magnitude (normalizing zero).
    pub fn from_sign_mag(sign: Sign, mag: Natural) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            match sign {
                Sign::Zero => Int::zero(),
                s => Int { sign: s, mag },
            }
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value).
    pub fn magnitude(&self) -> &Natural {
        &self.mag
    }

    /// Consumes the integer and returns its magnitude.
    pub fn into_magnitude(self) -> Natural {
        self.mag
    }

    /// `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Difference of two naturals as a signed integer (`a - b`).
    pub fn sub_naturals(a: &Natural, b: &Natural) -> Int {
        match a.cmp(b) {
            Ordering::Greater => Int::from_sign_mag(Sign::Positive, a - b),
            Ordering::Equal => Int::zero(),
            Ordering::Less => Int::from_sign_mag(Sign::Negative, b - a),
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        match self.sign {
            Sign::Zero => 0.0,
            Sign::Positive => self.mag.to_f64(),
            Sign::Negative => -self.mag.to_f64(),
        }
    }

    /// Conversion to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(m).ok(),
            Sign::Negative => {
                if m == (i128::MAX as u128) + 1 {
                    Some(i128::MIN)
                } else {
                    i128::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        Int::from_sign_mag(Sign::Positive, self.mag.clone())
    }

    /// Multiplies by a natural number.
    pub fn mul_natural(&self, n: &Natural) -> Int {
        Int::from_sign_mag(self.sign, self.mag.mul_ref(n))
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

impl From<&Natural> for Int {
    fn from(n: &Natural) -> Self {
        Int::from_sign_mag(Sign::Positive, n.clone())
    }
}

impl From<Natural> for Int {
    fn from(n: Natural) -> Self {
        Int::from_sign_mag(Sign::Positive, n)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        if v < 0 {
            Int::from_sign_mag(Sign::Negative, Natural::from(v.unsigned_abs()))
        } else {
            Int::from_sign_mag(Sign::Positive, Natural::from(v as u64))
        }
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int::from_sign_mag(Sign::Positive, Natural::from(v))
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        Int { sign, mag: self.mag }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl Add<&Int> for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Int::from_sign_mag(a, &self.mag + &rhs.mag),
            (a, _) => {
                // Opposite signs: subtract magnitudes.
                match self.mag.cmp(&rhs.mag) {
                    Ordering::Equal => Int::zero(),
                    Ordering::Greater => Int::from_sign_mag(a, &self.mag - &rhs.mag),
                    Ordering::Less => Int::from_sign_mag(rhs.sign, &rhs.mag - &self.mag),
                }
            }
        }
    }
}

impl Add for Int {
    type Output = Int;
    fn add(self, rhs: Int) -> Int {
        &self + &rhs
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}

impl Sub<&Int> for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs)
    }
}

impl Sub for Int {
    type Output = Int;
    fn sub(self, rhs: Int) -> Int {
        &self - &rhs
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}

impl Mul<&Int> for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        Int::from_sign_mag(sign, self.mag.mul_ref(&rhs.mag))
    }
}

impl Mul for Int {
    type Output = Int;
    fn mul(self, rhs: Int) -> Int {
        &self * &rhs
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => other.mag.cmp(&self.mag),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.mag.cmp(&other.mag),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn construction_and_signs() {
        assert!(int(0).is_zero());
        assert!(int(5).is_positive());
        assert!(int(-5).is_negative());
        assert_eq!(Int::from_sign_mag(Sign::Negative, Natural::zero()), Int::zero());
        assert_eq!(Int::minus_one().to_i128(), Some(-1));
    }

    #[test]
    fn addition_all_sign_combinations() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                assert_eq!((&int(a) + &int(b)).to_i128(), Some((a + b) as i128), "{a}+{b}");
            }
        }
    }

    #[test]
    fn subtraction_all_sign_combinations() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                assert_eq!((&int(a) - &int(b)).to_i128(), Some((a - b) as i128), "{a}-{b}");
            }
        }
    }

    #[test]
    fn multiplication_all_sign_combinations() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                assert_eq!((&int(a) * &int(b)).to_i128(), Some((a * b) as i128), "{a}*{b}");
            }
        }
    }

    #[test]
    fn ordering_matches_i64() {
        let values = [-7i64, -1, 0, 1, 3, 9];
        for &a in &values {
            for &b in &values {
                assert_eq!(int(a).cmp(&int(b)), a.cmp(&b));
            }
        }
    }

    #[test]
    fn sub_naturals() {
        let a = Natural::from(10u64);
        let b = Natural::from(17u64);
        assert_eq!(Int::sub_naturals(&a, &b).to_i128(), Some(-7));
        assert_eq!(Int::sub_naturals(&b, &a).to_i128(), Some(7));
        assert!(Int::sub_naturals(&a, &a).is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!(int(42).to_string(), "42");
        assert_eq!(int(0).to_string(), "0");
    }

    #[test]
    fn to_f64_sign() {
        assert_eq!(int(-3).to_f64(), -3.0);
        assert_eq!(int(3).to_f64(), 3.0);
        assert_eq!(int(0).to_f64(), 0.0);
    }

    #[test]
    fn mul_natural() {
        let v = int(-7).mul_natural(&Natural::from(6u64));
        assert_eq!(v.to_i128(), Some(-42));
    }
}
