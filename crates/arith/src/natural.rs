//! Unsigned arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};

/// Number of bits per limb.
const LIMB_BITS: usize = 64;

/// Operand size (in limbs) above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

/// An unsigned arbitrary-precision integer.
///
/// The value is stored as little-endian base-2^64 limbs with no trailing zero
/// limbs (the canonical representation of zero is an empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    /// Little-endian limbs; invariant: the last limb (if any) is non-zero.
    limbs: Vec<u64>,
}

impl Natural {
    /// The value 0.
    pub fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// `2^exp`.
    pub fn pow2(exp: usize) -> Self {
        let limb = exp / LIMB_BITS;
        let bit = exp % LIMB_BITS;
        let mut limbs = vec![0u64; limb + 1];
        limbs[limb] = 1u64 << bit;
        Natural { limbs }
    }

    /// Returns `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() - 1) * LIMB_BITS + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Number of limbs in the canonical representation.
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Builds a natural from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Returns the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64`.
    ///
    /// Values larger than `f64::MAX` saturate to `f64::INFINITY`; precision is
    /// the usual 53-bit mantissa. This is only used for reporting.
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => (self.limbs[1] as f64) * 2f64.powi(64) + self.limbs[0] as f64,
            n => {
                // Take the top 128 bits and scale by the remaining bit count.
                let hi = self.limbs[n - 1];
                let lo = self.limbs[n - 2];
                let top = (hi as f64) * 2f64.powi(64) + lo as f64;
                let shift = (n - 2) * LIMB_BITS;
                top * 2f64.powi(shift as i32)
            }
        }
    }

    /// Compares two naturals.
    fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Adds `other` into `self`.
    pub fn add_assign_ref(&mut self, other: &Natural) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    /// Panics if `other > self`; the algorithms in this workspace only ever
    /// subtract quantities that are provably smaller (e.g. model counts of
    /// sub-functions), so an underflow indicates a logic error.
    pub fn sub_assign_ref(&mut self, other: &Natural) {
        debug_assert!(
            Natural::cmp_limbs(&self.limbs, &other.limbs) != Ordering::Less,
            "Natural subtraction underflow"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        assert_eq!(borrow, 0, "Natural subtraction underflow");
        self.normalize();
    }

    /// Checked subtraction: returns `None` when `other > self`.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if Natural::cmp_limbs(&self.limbs, &other.limbs) == Ordering::Less {
            None
        } else {
            let mut r = self.clone();
            r.sub_assign_ref(other);
            Some(r)
        }
    }

    /// Saturating subtraction (`max(self - other, 0)`).
    pub fn saturating_sub(&self, other: &Natural) -> Natural {
        self.checked_sub(other).unwrap_or_else(Natural::zero)
    }

    /// Schoolbook multiplication of raw limb slices.
    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Adds `b` shifted left by `shift` limbs into `acc`.
    fn add_shifted(acc: &mut Vec<u64>, b: &[u64], shift: usize) {
        if b.is_empty() {
            return;
        }
        if acc.len() < b.len() + shift + 1 {
            acc.resize(b.len() + shift + 1, 0);
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let i = j + shift;
            let (s1, c1) = acc[i].overflowing_add(bj);
            let (s2, c2) = s1.overflowing_add(carry);
            acc[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        let mut i = b.len() + shift;
        while carry != 0 {
            if i >= acc.len() {
                acc.push(0);
            }
            let (s, c) = acc[i].overflowing_add(carry);
            acc[i] = s;
            carry = c as u64;
            i += 1;
        }
    }

    /// Subtracts `b` (not shifted) from `acc`; `acc >= b` must hold.
    fn sub_in_place(acc: &mut [u64], b: &[u64]) {
        let mut borrow = 0u64;
        for (i, limb) in acc.iter_mut().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
    }

    /// Karatsuba multiplication of raw limb slices.
    fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
            return Natural::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a_lo, a_hi) = a.split_at(half.min(a.len()));
        let (b_lo, b_hi) = b.split_at(half.min(b.len()));

        let z0 = Natural::mul_karatsuba(a_lo, b_lo);
        let z2 = Natural::mul_karatsuba(a_hi, b_hi);

        // (a_lo + a_hi) * (b_lo + b_hi)
        let a_sum = {
            let mut s = Natural::from_limbs(a_lo.to_vec());
            s.add_assign_ref(&Natural::from_limbs(a_hi.to_vec()));
            s
        };
        let b_sum = {
            let mut s = Natural::from_limbs(b_lo.to_vec());
            s.add_assign_ref(&Natural::from_limbs(b_hi.to_vec()));
            s
        };
        let mut z1 = Natural::mul_karatsuba(&a_sum.limbs, &b_sum.limbs);
        // z1 = z1 - z0 - z2
        while z1.len() < z0.len().max(z2.len()) {
            z1.push(0);
        }
        Natural::sub_in_place(&mut z1, &z0);
        Natural::sub_in_place(&mut z1, &z2);

        let mut out = z0;
        Natural::add_shifted(&mut out, &z1, half);
        Natural::add_shifted(&mut out, &z2, 2 * half);
        out
    }

    /// Multiplies two naturals.
    pub fn mul_ref(&self, other: &Natural) -> Natural {
        Natural::from_limbs(Natural::mul_karatsuba(&self.limbs, &other.limbs))
    }

    /// Multiplies by a `u64`.
    pub fn mul_u64(&self, m: u64) -> Natural {
        if m == 0 || self.is_zero() {
            return Natural::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let cur = (l as u128) * (m as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Natural::from_limbs(out)
    }

    /// Shifts left by `bits` bits (multiplies by 2^bits).
    pub fn shl_bits(&self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            if bit_shift == 0 {
                out[i + limb_shift] |= l;
            } else {
                out[i + limb_shift] |= l << bit_shift;
                out[i + limb_shift + 1] |= l >> (LIMB_BITS - bit_shift);
            }
        }
        Natural::from_limbs(out)
    }

    /// Shifts right by `bits` bits (divides by 2^bits, truncating).
    pub fn shr_bits(&self, bits: usize) -> Natural {
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut v = self.limbs[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    v |= next << (LIMB_BITS - bit_shift);
                }
            }
            out.push(v);
        }
        Natural::from_limbs(out)
    }

    /// Divides by a `u64`, returning the quotient and remainder.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero");
        let mut quo = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quo[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Natural::from_limbs(quo), rem as u64)
    }

    /// Long division: returns `(self / other, self % other)`.
    ///
    /// Uses simple bit-by-bit long division; adequate for the reporting and
    /// normalization paths where it is used (divisions are rare compared to
    /// additions/multiplications in the hot loops).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Natural) -> (Natural, Natural) {
        assert!(!other.is_zero(), "division by zero");
        if let (Some(a), Some(b)) = (self.to_u128(), other.to_u128()) {
            return (Natural::from_u128(a / b), Natural::from_u128(a % b));
        }
        match self.cmp(other) {
            Ordering::Less => return (Natural::zero(), self.clone()),
            Ordering::Equal => return (Natural::one(), Natural::zero()),
            Ordering::Greater => {}
        }
        let shift = self.bit_len() - other.bit_len();
        let mut remainder = self.clone();
        let mut quotient = Natural::zero();
        let mut divisor = other.shl_bits(shift);
        for s in (0..=shift).rev() {
            if remainder >= divisor {
                remainder.sub_assign_ref(&divisor);
                quotient.add_assign_ref(&Natural::pow2(s));
            }
            divisor = divisor.shr_bits(1);
        }
        (quotient, remainder)
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Natural {
        Natural::from_limbs(vec![v as u64, (v >> 64) as u64])
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// `n!` (factorial).
    pub fn factorial(n: u64) -> Natural {
        let mut acc = Natural::one();
        for k in 2..=n {
            acc = acc.mul_u64(k);
        }
        acc
    }

    /// Binomial coefficient `C(n, k)`.
    pub fn binomial(n: u64, k: u64) -> Natural {
        if k > n {
            return Natural::zero();
        }
        let k = k.min(n - k);
        let mut acc = Natural::one();
        for i in 0..k {
            acc = acc.mul_u64(n - i);
            let (q, r) = acc.div_rem_u64(i + 1);
            debug_assert_eq!(r, 0);
            acc = q;
        }
        acc
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Option<Natural> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = Natural::zero();
        for chunk in s.as_bytes().chunks(18) {
            let part: u64 = std::str::from_utf8(chunk).ok()?.parse().ok()?;
            acc = acc.mul_u64(10u64.pow(chunk.len() as u32));
            acc.add_assign_ref(&Natural::from(part));
        }
        Some(acc)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten fitting in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut parts = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            parts.push(r);
            cur = q;
        }
        let mut s = String::new();
        s.push_str(&parts.last().unwrap().to_string());
        for p in parts.iter().rev().skip(1) {
            s.push_str(&format!("{:019}", p));
        }
        write!(f, "{}", s)
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural({})", self)
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        Natural::cmp_limbs(&self.limbs, &other.limbs)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {
        $(impl From<$t> for Natural {
            fn from(v: $t) -> Self {
                Natural::from_limbs(vec![v as u64])
            }
        })*
    };
}
impl_from_uint!(u8, u16, u32, u64, usize);

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_u128(v)
    }
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(mut self, rhs: Natural) -> Natural {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        self.add_assign_ref(rhs);
    }
}

impl Sub<&Natural> for &Natural {
    type Output = Natural;
    fn sub(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(mut self, rhs: Natural) -> Natural {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        self.sub_assign_ref(rhs);
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        self.mul_ref(rhs)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        self.mul_ref(&rhs)
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<usize> for &Natural {
    type Output = Natural;
    fn shl(self, bits: usize) -> Natural {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Natural {
    type Output = Natural;
    fn shr(self, bits: usize) -> Natural {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(Natural::zero().to_string(), "0");
        assert_eq!(Natural::one().to_string(), "1");
        assert_eq!(Natural::zero().bit_len(), 0);
        assert_eq!(Natural::one().bit_len(), 1);
    }

    #[test]
    fn pow2_values() {
        assert_eq!(Natural::pow2(0), Natural::one());
        assert_eq!(Natural::pow2(10).to_u64(), Some(1024));
        assert_eq!(Natural::pow2(64).to_u128(), Some(1u128 << 64));
        assert_eq!(Natural::pow2(127).to_u128(), Some(1u128 << 127));
        assert_eq!(Natural::pow2(200).bit_len(), 201);
    }

    #[test]
    fn addition_with_carries() {
        let a = Natural::from(u64::MAX);
        let b = Natural::from(1u64);
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(u64::MAX as u128 + 1));
        let big = Natural::pow2(128) + Natural::pow2(128);
        assert_eq!(big, Natural::pow2(129));
    }

    #[test]
    fn subtraction() {
        let a = Natural::pow2(128);
        let b = Natural::one();
        let d = &a - &b;
        assert_eq!(d.bit_len(), 128);
        assert_eq!(&d + &b, a);
        assert_eq!(Natural::from(5u64).checked_sub(&Natural::from(7u64)), None);
        assert_eq!(Natural::from(5u64).saturating_sub(&Natural::from(7u64)), Natural::zero());
    }

    #[test]
    fn multiplication_small() {
        let a = Natural::from(123456789u64);
        let b = Natural::from(987654321u64);
        assert_eq!((&a * &b).to_u128(), Some(123456789u128 * 987654321u128));
        assert_eq!((&a * &Natural::zero()), Natural::zero());
        assert_eq!((&a * &Natural::one()), a);
    }

    #[test]
    fn multiplication_large_matches_pow() {
        let a = Natural::pow2(1000);
        let b = Natural::pow2(2000);
        assert_eq!(&a * &b, Natural::pow2(3000));
        let three = Natural::from(3u64);
        assert_eq!(three.pow(200), three.pow(100) * three.pow(100));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands large enough to trigger the Karatsuba path.
        let mut a = Natural::one();
        let mut b = Natural::one();
        for i in 0..80u64 {
            a = a.mul_u64(1_000_000_007 + i);
            b = b.mul_u64(998_244_353 + i);
        }
        let k = Natural::from_limbs(Natural::mul_karatsuba(a.limbs(), b.limbs()));
        let s = Natural::from_limbs(Natural::mul_schoolbook(a.limbs(), b.limbs()));
        assert_eq!(k, s);
    }

    #[test]
    fn shifts() {
        let a = Natural::from(0b1011u64);
        assert_eq!(a.shl_bits(3).to_u64(), Some(0b1011000));
        assert_eq!(a.shl_bits(200).shr_bits(200), a);
        assert_eq!(a.shr_bits(2).to_u64(), Some(0b10));
        assert_eq!(a.shr_bits(64), Natural::zero());
    }

    #[test]
    fn div_rem_u64_roundtrip() {
        let a = Natural::from_decimal("123456789012345678901234567890").unwrap();
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(&q.mul_u64(97) + &Natural::from(r), a);
    }

    #[test]
    fn div_rem_general() {
        let a = Natural::pow2(200) + Natural::from(12345u64);
        let b = Natural::pow2(64) + Natural::from(7u64);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
        // Division by larger number.
        let (q2, r2) = b.div_rem(&a);
        assert!(q2.is_zero());
        assert_eq!(r2, b);
        // Exact division.
        let (q3, r3) = Natural::pow2(100).div_rem(&Natural::pow2(40));
        assert_eq!(q3, Natural::pow2(60));
        assert!(r3.is_zero());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "999999999999999999999999999999999999999",
        ];
        for c in cases {
            let n = Natural::from_decimal(c).unwrap();
            assert_eq!(n.to_string(), c);
        }
        assert!(Natural::from_decimal("12a").is_none());
        assert!(Natural::from_decimal("").is_none());
    }

    #[test]
    fn factorial_and_binomial() {
        assert_eq!(Natural::factorial(0), Natural::one());
        assert_eq!(Natural::factorial(5).to_u64(), Some(120));
        assert_eq!(Natural::factorial(20).to_u64(), Some(2_432_902_008_176_640_000));
        assert_eq!(Natural::binomial(10, 3).to_u64(), Some(120));
        assert_eq!(Natural::binomial(5, 7), Natural::zero());
        assert_eq!(Natural::binomial(52, 26).to_string(), "495918532948104");
        // Pascal identity on a larger case.
        let lhs = Natural::binomial(100, 50);
        let rhs = &Natural::binomial(99, 49) + &Natural::binomial(99, 50);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(Natural::from(12345u64).to_f64(), 12345.0);
        let big = Natural::pow2(300);
        let rel = (big.to_f64() - 2f64.powi(300)).abs() / 2f64.powi(300);
        assert!(rel < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Natural::pow2(65) > Natural::pow2(64));
        assert!(Natural::from(5u64) < Natural::from(6u64));
        assert_eq!(Natural::pow2(64).cmp(&Natural::pow2(64)), Ordering::Equal);
    }

    #[test]
    fn mul_u64_carries() {
        let a = Natural::from(u64::MAX);
        let p = a.mul_u64(u64::MAX);
        assert_eq!(p.to_u128(), Some(u64::MAX as u128 * u64::MAX as u128));
    }
}
