//! Unsigned arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};

/// Number of bits per limb.
const LIMB_BITS: usize = 64;

/// Operand size (in limbs) above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

/// The tagged representation behind [`Natural`].
///
/// Model counts and Banzhaf values start tiny (leaf counts are 0, 1 or 2)
/// and only grow large near the root of a d-tree, so the hot add/mul paths
/// overwhelmingly see one-limb operands. `Small` keeps those inline — no
/// heap allocation per temporary — while `Big` falls back to the limb-vector
/// algorithms.
///
/// Canonical-form invariant (relied upon by the derived `PartialEq`/`Hash`):
/// values below 2⁶⁴ are *always* `Small`; `Big` always holds at least two
/// limbs and its last limb is non-zero. Every constructor and operation
/// renormalizes through [`Natural::from_limbs`] or builds `Small` directly.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// A value fitting one limb, stored inline.
    Small(u64),
    /// Little-endian limbs; invariant: `len ≥ 2` and the last limb is
    /// non-zero.
    Big(Vec<u64>),
}

/// An unsigned arbitrary-precision integer.
///
/// The value is stored as little-endian base-2^64 limbs with no trailing zero
/// limbs; values below 2⁶⁴ are stored inline without heap allocation (the
/// canonical representation of zero is the inline 0).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Natural {
    repr: Repr,
}

impl Natural {
    /// The value 0.
    pub fn zero() -> Self {
        Natural { repr: Repr::Small(0) }
    }

    /// The value 1.
    pub fn one() -> Self {
        Natural { repr: Repr::Small(1) }
    }

    /// `2^exp`.
    pub fn pow2(exp: usize) -> Self {
        if exp < LIMB_BITS {
            return Natural { repr: Repr::Small(1u64 << exp) };
        }
        let limb = exp / LIMB_BITS;
        let bit = exp % LIMB_BITS;
        let mut limbs = vec![0u64; limb + 1];
        limbs[limb] = 1u64 << bit;
        Natural { repr: Repr::Big(limbs) }
    }

    /// Returns `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Returns `true` iff the value is 1.
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => (LIMB_BITS - v.leading_zeros() as usize) * usize::from(*v != 0),
            Repr::Big(limbs) => {
                let hi = *limbs.last().expect("Big is non-empty");
                (limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - hi.leading_zeros() as usize)
            }
        }
    }

    /// Number of limbs in the canonical representation.
    pub fn limb_count(&self) -> usize {
        match &self.repr {
            Repr::Small(0) => 0,
            Repr::Small(_) => 1,
            Repr::Big(limbs) => limbs.len(),
        }
    }

    /// Builds a natural from little-endian limbs, normalizing trailing zeros
    /// (and collapsing one-limb values to the inline representation).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Natural::zero(),
            1 => Natural { repr: Repr::Small(limbs[0]) },
            _ => Natural { repr: Repr::Big(limbs) },
        }
    }

    /// Returns the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        match &self.repr {
            Repr::Small(0) => &[],
            Repr::Small(v) => std::slice::from_ref(v),
            Repr::Big(limbs) => limbs,
        }
    }

    /// Consumes the natural into an owned limb vector.
    fn into_limbs(self) -> Vec<u64> {
        match self.repr {
            Repr::Small(0) => Vec::new(),
            Repr::Small(v) => vec![v],
            Repr::Big(limbs) => limbs,
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Big(_) => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as u128),
            Repr::Big(limbs) if limbs.len() == 2 => {
                Some((limbs[1] as u128) << 64 | limbs[0] as u128)
            }
            Repr::Big(_) => None,
        }
    }

    /// Lossy conversion to `f64`.
    ///
    /// Values larger than `f64::MAX` saturate to `f64::INFINITY`; precision is
    /// the usual 53-bit mantissa. This is only used for reporting.
    pub fn to_f64(&self) -> f64 {
        let limbs = self.limbs();
        match limbs.len() {
            0 => 0.0,
            1 => limbs[0] as f64,
            2 => (limbs[1] as f64) * 2f64.powi(64) + limbs[0] as f64,
            n => {
                // Take the top 128 bits and scale by the remaining bit count.
                let hi = limbs[n - 1];
                let lo = limbs[n - 2];
                let top = (hi as f64) * 2f64.powi(64) + lo as f64;
                let shift = (n - 2) * LIMB_BITS;
                top * 2f64.powi(shift as i32)
            }
        }
    }

    /// Compares two limb slices.
    fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            let cmp = a[i].cmp(&b[i]);
            if cmp != Ordering::Equal {
                return cmp;
            }
        }
        Ordering::Equal
    }

    /// Adds `other` into `self`.
    pub fn add_assign_ref(&mut self, other: &Natural) {
        // Hot path: both operands fit one limb — no allocation unless the
        // sum overflows into a second limb.
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            let (sum, carry) = a.overflowing_add(*b);
            self.repr = if carry { Repr::Big(vec![sum, 1]) } else { Repr::Small(sum) };
            return;
        }
        let mut limbs = std::mem::take(self).into_limbs();
        let other_limbs = other.limbs();
        let mut carry = 0u64;
        let n = limbs.len().max(other_limbs.len());
        limbs.resize(n, 0);
        for (i, limb) in limbs.iter_mut().enumerate() {
            let b = other_limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        *self = Natural::from_limbs(limbs);
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    /// Panics if `other > self`; the algorithms in this workspace only ever
    /// subtract quantities that are provably smaller (e.g. model counts of
    /// sub-functions), so an underflow indicates a logic error.
    pub fn sub_assign_ref(&mut self, other: &Natural) {
        debug_assert!(
            Natural::cmp_limbs(self.limbs(), other.limbs()) != Ordering::Less,
            "Natural subtraction underflow"
        );
        // Hot path: one-limb operands subtract inline.
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            let (diff, borrow) = a.overflowing_sub(*b);
            assert!(!borrow, "Natural subtraction underflow");
            self.repr = Repr::Small(diff);
            return;
        }
        let mut limbs = std::mem::take(self).into_limbs();
        let other_limbs = other.limbs();
        // A longer canonical operand is strictly larger: the loop below only
        // walks `self`'s limbs, so this case must be rejected up front or the
        // high limbs of `other` would be silently ignored in release builds.
        assert!(other_limbs.len() <= limbs.len(), "Natural subtraction underflow");
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let b = other_limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        assert_eq!(borrow, 0, "Natural subtraction underflow");
        *self = Natural::from_limbs(limbs);
    }

    /// Checked subtraction: returns `None` when `other > self`.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if Natural::cmp_limbs(self.limbs(), other.limbs()) == Ordering::Less {
            None
        } else {
            let mut r = self.clone();
            r.sub_assign_ref(other);
            Some(r)
        }
    }

    /// Saturating subtraction (`max(self - other, 0)`).
    pub fn saturating_sub(&self, other: &Natural) -> Natural {
        self.checked_sub(other).unwrap_or_else(Natural::zero)
    }

    /// Schoolbook multiplication of raw limb slices.
    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Adds `b` shifted left by `shift` limbs into `acc`.
    fn add_shifted(acc: &mut Vec<u64>, b: &[u64], shift: usize) {
        if b.is_empty() {
            return;
        }
        if acc.len() < b.len() + shift + 1 {
            acc.resize(b.len() + shift + 1, 0);
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let i = j + shift;
            let (s1, c1) = acc[i].overflowing_add(bj);
            let (s2, c2) = s1.overflowing_add(carry);
            acc[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        let mut i = b.len() + shift;
        while carry != 0 {
            if i >= acc.len() {
                acc.push(0);
            }
            let (s, c) = acc[i].overflowing_add(carry);
            acc[i] = s;
            carry = c as u64;
            i += 1;
        }
    }

    /// Subtracts `b` (not shifted) from `acc`; `acc >= b` must hold.
    fn sub_in_place(acc: &mut [u64], b: &[u64]) {
        let mut borrow = 0u64;
        for (i, limb) in acc.iter_mut().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
    }

    /// Karatsuba multiplication of raw limb slices.
    fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
            return Natural::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a_lo, a_hi) = a.split_at(half.min(a.len()));
        let (b_lo, b_hi) = b.split_at(half.min(b.len()));

        let z0 = Natural::mul_karatsuba(a_lo, b_lo);
        let z2 = Natural::mul_karatsuba(a_hi, b_hi);

        // (a_lo + a_hi) * (b_lo + b_hi)
        let a_sum = {
            let mut s = Natural::from_limbs(a_lo.to_vec());
            s.add_assign_ref(&Natural::from_limbs(a_hi.to_vec()));
            s
        };
        let b_sum = {
            let mut s = Natural::from_limbs(b_lo.to_vec());
            s.add_assign_ref(&Natural::from_limbs(b_hi.to_vec()));
            s
        };
        let mut z1 = Natural::mul_karatsuba(a_sum.limbs(), b_sum.limbs());
        // z1 = z1 - z0 - z2
        while z1.len() < z0.len().max(z2.len()) {
            z1.push(0);
        }
        Natural::sub_in_place(&mut z1, &z0);
        Natural::sub_in_place(&mut z1, &z2);

        let mut out = z0;
        Natural::add_shifted(&mut out, &z1, half);
        Natural::add_shifted(&mut out, &z2, 2 * half);
        out
    }

    /// Multiplies two naturals.
    pub fn mul_ref(&self, other: &Natural) -> Natural {
        // Hot path: a one-limb product needs only a u128 widening multiply.
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return Natural::from_u128((*a as u128) * (*b as u128));
        }
        Natural::from_limbs(Natural::mul_karatsuba(self.limbs(), other.limbs()))
    }

    /// Multiplies by a `u64`.
    pub fn mul_u64(&self, m: u64) -> Natural {
        match &self.repr {
            Repr::Small(v) => Natural::from_u128((*v as u128) * (m as u128)),
            Repr::Big(_) if m == 0 => Natural::zero(),
            Repr::Big(limbs) => {
                let mut out = Vec::with_capacity(limbs.len() + 1);
                let mut carry = 0u128;
                for &l in limbs {
                    let cur = (l as u128) * (m as u128) + carry;
                    out.push(cur as u64);
                    carry = cur >> 64;
                }
                if carry != 0 {
                    out.push(carry as u64);
                }
                Natural::from_limbs(out)
            }
        }
    }

    /// Shifts left by `bits` bits (multiplies by 2^bits).
    pub fn shl_bits(&self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        // A small value that stays within its limb shifts inline.
        if let Repr::Small(v) = &self.repr {
            if bits < LIMB_BITS && v.leading_zeros() as usize >= bits {
                return Natural { repr: Repr::Small(v << bits) };
            }
        }
        let limbs = self.limbs();
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u64; limbs.len() + limb_shift + 1];
        for (i, &l) in limbs.iter().enumerate() {
            if bit_shift == 0 {
                out[i + limb_shift] |= l;
            } else {
                out[i + limb_shift] |= l << bit_shift;
                out[i + limb_shift + 1] |= l >> (LIMB_BITS - bit_shift);
            }
        }
        Natural::from_limbs(out)
    }

    /// Shifts right by `bits` bits (divides by 2^bits, truncating).
    pub fn shr_bits(&self, bits: usize) -> Natural {
        if let Repr::Small(v) = &self.repr {
            return Natural { repr: Repr::Small(if bits < LIMB_BITS { v >> bits } else { 0 }) };
        }
        let limbs = self.limbs();
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        if limb_shift >= limbs.len() {
            return Natural::zero();
        }
        let mut out = Vec::with_capacity(limbs.len() - limb_shift);
        for i in limb_shift..limbs.len() {
            let mut v = limbs[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&next) = limbs.get(i + 1) {
                    v |= next << (LIMB_BITS - bit_shift);
                }
            }
            out.push(v);
        }
        Natural::from_limbs(out)
    }

    /// Divides by a `u64`, returning the quotient and remainder.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero");
        if let Repr::Small(v) = &self.repr {
            return (Natural { repr: Repr::Small(v / d) }, v % d);
        }
        let limbs = self.limbs();
        let mut quo = vec![0u64; limbs.len()];
        let mut rem = 0u128;
        for i in (0..limbs.len()).rev() {
            let cur = (rem << 64) | limbs[i] as u128;
            quo[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Natural::from_limbs(quo), rem as u64)
    }

    /// Long division: returns `(self / other, self % other)`.
    ///
    /// Uses simple bit-by-bit long division; adequate for the reporting and
    /// normalization paths where it is used (divisions are rare compared to
    /// additions/multiplications in the hot loops).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Natural) -> (Natural, Natural) {
        assert!(!other.is_zero(), "division by zero");
        if let (Some(a), Some(b)) = (self.to_u128(), other.to_u128()) {
            return (Natural::from_u128(a / b), Natural::from_u128(a % b));
        }
        match self.cmp(other) {
            Ordering::Less => return (Natural::zero(), self.clone()),
            Ordering::Equal => return (Natural::one(), Natural::zero()),
            Ordering::Greater => {}
        }
        let shift = self.bit_len() - other.bit_len();
        let mut remainder = self.clone();
        let mut quotient = Natural::zero();
        let mut divisor = other.shl_bits(shift);
        for s in (0..=shift).rev() {
            if remainder >= divisor {
                remainder.sub_assign_ref(&divisor);
                quotient.add_assign_ref(&Natural::pow2(s));
            }
            divisor = divisor.shr_bits(1);
        }
        (quotient, remainder)
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Natural {
        if v <= u64::MAX as u128 {
            return Natural { repr: Repr::Small(v as u64) };
        }
        Natural { repr: Repr::Big(vec![v as u64, (v >> 64) as u64]) }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// `n!` (factorial).
    pub fn factorial(n: u64) -> Natural {
        let mut acc = Natural::one();
        for k in 2..=n {
            acc = acc.mul_u64(k);
        }
        acc
    }

    /// Binomial coefficient `C(n, k)`.
    pub fn binomial(n: u64, k: u64) -> Natural {
        if k > n {
            return Natural::zero();
        }
        let k = k.min(n - k);
        let mut acc = Natural::one();
        for i in 0..k {
            acc = acc.mul_u64(n - i);
            let (q, r) = acc.div_rem_u64(i + 1);
            debug_assert_eq!(r, 0);
            acc = q;
        }
        acc
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Option<Natural> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = Natural::zero();
        for chunk in s.as_bytes().chunks(18) {
            let part: u64 = std::str::from_utf8(chunk).ok()?.parse().ok()?;
            acc = acc.mul_u64(10u64.pow(chunk.len() as u32));
            acc.add_assign_ref(&Natural::from(part));
        }
        Some(acc)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Repr::Small(v) = &self.repr {
            return write!(f, "{v}");
        }
        // Repeated division by 10^19 (largest power of ten fitting in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut parts = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            parts.push(r);
            cur = q;
        }
        write!(f, "{}", parts.last().unwrap())?;
        for p in parts.iter().rev().skip(1) {
            write!(f, "{p:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural({self})")
    }
}

impl Default for Natural {
    fn default() -> Self {
        Natural::zero()
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            (Repr::Small(_), Repr::Big(_)) => Ordering::Less,
            (Repr::Big(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Big(a), Repr::Big(b)) => Natural::cmp_limbs(a, b),
        }
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {
        $(impl From<$t> for Natural {
            fn from(v: $t) -> Self {
                Natural { repr: Repr::Small(v as u64) }
            }
        })*
    };
}
impl_from_uint!(u8, u16, u32, u64, usize);

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_u128(v)
    }
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(mut self, rhs: Natural) -> Natural {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        self.add_assign_ref(rhs);
    }
}

impl Sub<&Natural> for &Natural {
    type Output = Natural;
    fn sub(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(mut self, rhs: Natural) -> Natural {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        self.sub_assign_ref(rhs);
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        self.mul_ref(rhs)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        self.mul_ref(&rhs)
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<usize> for &Natural {
    type Output = Natural;
    fn shl(self, bits: usize) -> Natural {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Natural {
    type Output = Natural;
    fn shr(self, bits: usize) -> Natural {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(Natural::zero().to_string(), "0");
        assert_eq!(Natural::one().to_string(), "1");
        assert_eq!(Natural::zero().bit_len(), 0);
        assert_eq!(Natural::one().bit_len(), 1);
    }

    #[test]
    fn pow2_values() {
        assert_eq!(Natural::pow2(0), Natural::one());
        assert_eq!(Natural::pow2(10).to_u64(), Some(1024));
        assert_eq!(Natural::pow2(64).to_u128(), Some(1u128 << 64));
        assert_eq!(Natural::pow2(127).to_u128(), Some(1u128 << 127));
        assert_eq!(Natural::pow2(200).bit_len(), 201);
    }

    #[test]
    fn addition_with_carries() {
        let a = Natural::from(u64::MAX);
        let b = Natural::from(1u64);
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(u64::MAX as u128 + 1));
        let big = Natural::pow2(128) + Natural::pow2(128);
        assert_eq!(big, Natural::pow2(129));
    }

    #[test]
    fn subtraction() {
        let a = Natural::pow2(128);
        let b = Natural::one();
        let d = &a - &b;
        assert_eq!(d.bit_len(), 128);
        assert_eq!(&d + &b, a);
        assert_eq!(Natural::from(5u64).checked_sub(&Natural::from(7u64)), None);
        assert_eq!(Natural::from(5u64).saturating_sub(&Natural::from(7u64)), Natural::zero());
    }

    #[test]
    fn multiplication_small() {
        let a = Natural::from(123456789u64);
        let b = Natural::from(987654321u64);
        assert_eq!((&a * &b).to_u128(), Some(123456789u128 * 987654321u128));
        assert_eq!((&a * &Natural::zero()), Natural::zero());
        assert_eq!((&a * &Natural::one()), a);
    }

    #[test]
    fn multiplication_large_matches_pow() {
        let a = Natural::pow2(1000);
        let b = Natural::pow2(2000);
        assert_eq!(&a * &b, Natural::pow2(3000));
        let three = Natural::from(3u64);
        assert_eq!(three.pow(200), three.pow(100) * three.pow(100));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands large enough to trigger the Karatsuba path.
        let mut a = Natural::one();
        let mut b = Natural::one();
        for i in 0..80u64 {
            a = a.mul_u64(1_000_000_007 + i);
            b = b.mul_u64(998_244_353 + i);
        }
        let k = Natural::from_limbs(Natural::mul_karatsuba(a.limbs(), b.limbs()));
        let s = Natural::from_limbs(Natural::mul_schoolbook(a.limbs(), b.limbs()));
        assert_eq!(k, s);
    }

    #[test]
    fn shifts() {
        let a = Natural::from(0b1011u64);
        assert_eq!(a.shl_bits(3).to_u64(), Some(0b1011000));
        assert_eq!(a.shl_bits(200).shr_bits(200), a);
        assert_eq!(a.shr_bits(2).to_u64(), Some(0b10));
        assert_eq!(a.shr_bits(64), Natural::zero());
        // Shifts that cross the small/big boundary renormalize canonically.
        let high = Natural::from(u64::MAX).shl_bits(1);
        assert_eq!(high.limb_count(), 2);
        assert_eq!(high.shr_bits(1), Natural::from(u64::MAX));
        assert_eq!(high.shr_bits(1).limb_count(), 1);
    }

    #[test]
    fn div_rem_u64_roundtrip() {
        let a = Natural::from_decimal("123456789012345678901234567890").unwrap();
        let (q, r) = a.div_rem_u64(97);
        assert_eq!(&q.mul_u64(97) + &Natural::from(r), a);
    }

    #[test]
    fn div_rem_general() {
        let a = Natural::pow2(200) + Natural::from(12345u64);
        let b = Natural::pow2(64) + Natural::from(7u64);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
        // Division by larger number.
        let (q2, r2) = b.div_rem(&a);
        assert!(q2.is_zero());
        assert_eq!(r2, b);
        // Exact division.
        let (q3, r3) = Natural::pow2(100).div_rem(&Natural::pow2(40));
        assert_eq!(q3, Natural::pow2(60));
        assert!(r3.is_zero());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "999999999999999999999999999999999999999",
        ];
        for c in cases {
            let n = Natural::from_decimal(c).unwrap();
            assert_eq!(n.to_string(), c);
        }
        assert!(Natural::from_decimal("12a").is_none());
        assert!(Natural::from_decimal("").is_none());
    }

    #[test]
    fn factorial_and_binomial() {
        assert_eq!(Natural::factorial(0), Natural::one());
        assert_eq!(Natural::factorial(5).to_u64(), Some(120));
        assert_eq!(Natural::factorial(20).to_u64(), Some(2_432_902_008_176_640_000));
        assert_eq!(Natural::binomial(10, 3).to_u64(), Some(120));
        assert_eq!(Natural::binomial(5, 7), Natural::zero());
        assert_eq!(Natural::binomial(52, 26).to_string(), "495918532948104");
        // Pascal identity on a larger case.
        let lhs = Natural::binomial(100, 50);
        let rhs = &Natural::binomial(99, 49) + &Natural::binomial(99, 50);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(Natural::from(12345u64).to_f64(), 12345.0);
        let big = Natural::pow2(300);
        let rel = (big.to_f64() - 2f64.powi(300)).abs() / 2f64.powi(300);
        assert!(rel < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Natural::pow2(65) > Natural::pow2(64));
        assert!(Natural::from(5u64) < Natural::from(6u64));
        assert_eq!(Natural::pow2(64).cmp(&Natural::pow2(64)), Ordering::Equal);
    }

    #[test]
    fn mul_u64_carries() {
        let a = Natural::from(u64::MAX);
        let p = a.mul_u64(u64::MAX);
        assert_eq!(p.to_u128(), Some(u64::MAX as u128 * u64::MAX as u128));
    }

    #[test]
    fn canonical_form_across_representations() {
        // Values below 2^64 must always come out Small (limb_count ≤ 1) no
        // matter which operation produced them — the derived Eq/Hash rely on
        // the representation being canonical.
        let small_via_sub = &Natural::pow2(64) - &Natural::one();
        assert_eq!(small_via_sub.limb_count(), 1);
        assert_eq!(small_via_sub, Natural::from(u64::MAX));
        let small_via_div = Natural::pow2(128).div_rem(&Natural::pow2(65)).0;
        assert_eq!(small_via_div, Natural::pow2(63));
        assert_eq!(small_via_div.limb_count(), 1);
        let small_via_limbs = Natural::from_limbs(vec![42, 0, 0]);
        assert_eq!(small_via_limbs.to_u64(), Some(42));
        assert_eq!(small_via_limbs.limbs(), &[42]);
        assert_eq!(Natural::from_limbs(Vec::new()), Natural::zero());
        assert!(Natural::from_limbs(vec![0, 0]).limbs().is_empty());
    }

    #[test]
    fn small_fast_paths_agree_with_limb_algorithms() {
        // Cross-check every inline fast path against the general path by
        // round-tripping operands through from_limbs.
        let pairs = [(0u64, 0u64), (1, 1), (5, 7), (u64::MAX, 1), (u64::MAX, u64::MAX)];
        for (a, b) in pairs {
            let (sa, sb) = (Natural::from(a), Natural::from(b));
            let (la, lb) = (Natural::from_limbs(vec![a]), Natural::from_limbs(vec![b]));
            assert_eq!(&sa + &sb, &la + &lb);
            assert_eq!(&sa * &sb, &la * &lb);
            assert_eq!(sa.mul_u64(b), la.mul_ref(&lb));
            if a >= b {
                assert_eq!(&sa - &sb, &la - &lb);
            }
            assert_eq!(sa.cmp(&sb), la.cmp(&lb));
        }
    }
}
