//! Signed exact rationals in canonical (normalized) form.
//!
//! Aggregate attribution works with clause weights and Banzhaf values that are
//! signed and fractional (MIN attribution can be negative even for positive
//! weights, and expected aggregates divide by `2^n`). The existing [`Ratio`]
//! type is unsigned, is *not* reduced to lowest terms, and deliberately has no
//! `Hash` — fine for ε-threshold comparisons, unusable as a cache-key
//! component. [`Rational`] fills that gap: every value is kept normalized
//! (`gcd(|numer|, denom) = 1`, `denom ≥ 1`, zero is `0/1`), so the derived
//! `PartialEq`/`Eq`/`Hash` are structural and two equal values always hash
//! alike.
//!
//! [`Ratio`]: crate::Ratio

use crate::{Int, Natural};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A signed arbitrary-precision rational number in lowest terms.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: Int,
    denom: Natural, // invariant: denom ≥ 1 and gcd(|numer|, denom) = 1
}

/// Greatest common divisor by Euclid's algorithm on [`Natural::div_rem`].
fn gcd(a: &Natural, b: &Natural) -> Natural {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let (_, r) = a.div_rem(&b);
        a = b;
        b = r;
    }
    a
}

impl Rational {
    /// The value 0.
    pub fn zero() -> Self {
        Rational { numer: Int::zero(), denom: Natural::one() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rational { numer: Int::one(), denom: Natural::one() }
    }

    /// Builds a rational from a signed numerator and a positive denominator,
    /// reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if the denominator is zero.
    pub fn new(numer: Int, denom: Natural) -> Self {
        assert!(!denom.is_zero(), "Rational denominator must be non-zero");
        if numer.is_zero() {
            return Rational::zero();
        }
        let g = gcd(numer.magnitude(), &denom);
        let (mag, _) = numer.magnitude().div_rem(&g);
        let (denom, _) = denom.div_rem(&g);
        Rational { numer: Int::from_sign_mag(numer.sign(), mag), denom }
    }

    /// An integer as a rational.
    pub fn from_int(numer: Int) -> Self {
        Rational { numer, denom: Natural::one() }
    }

    /// The numerator (signed, in lowest terms).
    pub fn numer(&self) -> &Int {
        &self.numer
    }

    /// The denominator (positive, in lowest terms).
    pub fn denom(&self) -> &Natural {
        &self.denom
    }

    /// `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer.is_negative()
    }

    /// `true` iff the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.denom == Natural::one()
    }

    /// Multiplies by a signed integer.
    pub fn mul_int(&self, n: &Int) -> Rational {
        Rational::new(&self.numer * n, self.denom.clone())
    }

    /// Multiplies by a natural number (e.g. a `2^k` scaling factor).
    pub fn mul_natural(&self, n: &Natural) -> Rational {
        Rational::new(self.numer.mul_natural(n), self.denom.clone())
    }

    /// Divides by a natural number.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn div_natural(&self, n: &Natural) -> Rational {
        Rational::new(self.numer.clone(), self.denom.mul_ref(n))
    }

    /// Lossy conversion to `f64` (numerator over denominator).
    pub fn to_f64(&self) -> f64 {
        self.numer.to_f64() / self.denom.to_f64()
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(Int::from(v))
    }
}

impl From<Int> for Rational {
    fn from(v: Int) -> Self {
        Rational::from_int(v)
    }
}

impl From<&Natural> for Rational {
    fn from(n: &Natural) -> Self {
        Rational::from_int(Int::from(n))
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { numer: -&self.numer, denom: self.denom.clone() }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { numer: -self.numer, denom: self.denom }
    }
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let numer = &self.numer.mul_natural(&rhs.denom) + &rhs.numer.mul_natural(&self.denom);
        Rational::new(numer, self.denom.mul_ref(&rhs.denom))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(&self.numer * &rhs.numer, self.denom.mul_ref(&rhs.denom))
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d (b, d > 0)  ⇔  a·d vs c·b.
        self.numer.mul_natural(&other.denom).cmp(&other.numer.mul_natural(&self.denom))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: u64) -> Rational {
        Rational::new(Int::from(n), Natural::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-6, 9), rat(-2, 3));
        assert_eq!(rat(0, 7), Rational::zero());
        assert_eq!(rat(0, 7).denom(), &Natural::one());
        assert_eq!(rat(12, 4).to_string(), "3");
        assert_eq!(rat(-3, 6).to_string(), "-1/2");
    }

    #[test]
    fn structural_equality_enables_hashing() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |r: &Rational| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&rat(2, 4)), h(&rat(1, 2)));
        assert_eq!(h(&rat(-10, 5)), h(&Rational::from(-2i64)));
    }

    #[test]
    fn arithmetic_matches_f64() {
        let cases = [(1i64, 2u64), (3, 4), (-5, 6), (7, 3), (0, 1), (-2, 1)];
        for &(an, ad) in &cases {
            for &(bn, bd) in &cases {
                let (a, b) = (rat(an, ad), rat(bn, bd));
                let close = |x: f64, y: f64| (x - y).abs() < 1e-12;
                assert!(close((&a + &b).to_f64(), a.to_f64() + b.to_f64()), "{a}+{b}");
                assert!(close((&a - &b).to_f64(), a.to_f64() - b.to_f64()), "{a}-{b}");
                assert!(close((&a * &b).to_f64(), a.to_f64() * b.to_f64()), "{a}*{b}");
                assert_eq!(a.partial_cmp(&b), a.to_f64().partial_cmp(&b.to_f64()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn scaling_helpers() {
        let v = rat(3, 4);
        assert_eq!(v.mul_natural(&Natural::pow2(3)), Rational::from(6i64));
        assert_eq!(v.div_natural(&Natural::from(3u64)), rat(1, 4));
        assert_eq!(v.mul_int(&Int::from(-4i64)), Rational::from(-3i64));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        Rational::new(Int::one(), Natural::zero());
    }

    #[test]
    fn negation_and_signs() {
        assert!(rat(-1, 3).is_negative());
        assert!(!rat(1, 3).is_negative());
        assert_eq!(-&rat(1, 3), rat(-1, 3));
        assert!(Rational::zero().is_zero());
        assert!(rat(5, 1).is_integer());
        assert!(!rat(5, 2).is_integer());
    }
}
