//! Exact Shapley values and per-size critical-set counts over complete
//! d-trees (App. D of the paper).
//!
//! Both the Banzhaf and the Shapley value of a fact `f` can be written in
//! terms of the number `#kC(f)` of *critical sets* of each size `k` — sets
//! `Y ⊆ Dn∖{f}` such that adding `f` flips the query from false to true
//! (Eq. (16)/(17)):
//!
//! ```text
//!   Banzhaf(f) = Σ_k #kC(f)
//!   Shapley(f) = Σ_k  k!·(n−1−k)!/n!  ·  #kC(f)
//! ```
//!
//! Over a complete d-tree, `#kC` is computed exactly like ExaBan's
//! all-variables pass, except that scalars become *size-stratified* count
//! vectors and products become polynomial convolutions.

use banzhaf_arith::{Int, Natural};
use banzhaf_boolean::Var;
use banzhaf_dtree::{DTree, Node, NodeId, OpKind};
use std::cmp::Ordering;
use std::collections::HashMap;

/// An exact Shapley value represented as the rational `numer / denom` with
/// `denom = n!`.
#[derive(Clone, Debug)]
pub struct ShapleyValue {
    /// Numerator `Σ_k k!(n−1−k)!·#kC`.
    pub numer: Natural,
    /// Denominator `n!`.
    pub denom: Natural,
}

impl ShapleyValue {
    /// Lossy conversion to `f64` for reporting.
    pub fn to_f64(&self) -> f64 {
        if self.denom.is_zero() {
            0.0
        } else {
            self.numer.to_f64() / self.denom.to_f64()
        }
    }
}

impl PartialEq for ShapleyValue {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ShapleyValue {}

impl PartialOrd for ShapleyValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ShapleyValue {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d with positive denominators: compare a·d vs c·b.
        self.numer.mul_ref(&other.denom).cmp(&other.numer.mul_ref(&self.denom))
    }
}

/// Convolution of two count-by-size vectors.
fn convolve(a: &[Natural], b: &[Natural]) -> Vec<Natural> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Natural::zero(); a.len() + b.len() - 1];
    for (i, ai) in a.iter().enumerate() {
        if ai.is_zero() {
            continue;
        }
        for (j, bj) in b.iter().enumerate() {
            if bj.is_zero() {
                continue;
            }
            out[i + j] += &ai.mul_ref(bj);
        }
    }
    out
}

/// The vector of binomial coefficients `C(n, 0..=n)` — the count-by-size
/// vector of the constant-true function over `n` variables.
fn binomial_row(n: usize) -> Vec<Natural> {
    (0..=n as u64).map(|k| Natural::binomial(n as u64, k)).collect()
}

/// Count-by-size vectors (`c[k]` = number of models with exactly `k` true
/// variables) for every node of a complete d-tree.
fn model_counts_by_size(tree: &DTree) -> Vec<Vec<Natural>> {
    let mut counts: Vec<Vec<Natural>> = vec![Vec::new(); tree.num_nodes()];
    for id in tree.postorder() {
        let c = match tree.node(id) {
            Node::Leaf(dnf) => {
                if dnf.is_false() {
                    vec![Natural::zero(); dnf.num_vars() + 1]
                } else if dnf.is_true() {
                    binomial_row(dnf.num_vars())
                } else {
                    debug_assert!(dnf.is_single_literal().is_some(), "complete d-tree required");
                    vec![Natural::zero(), Natural::one()]
                }
            }
            Node::PosLit(_) => vec![Natural::zero(), Natural::one()],
            Node::NegLit(_) => vec![Natural::one(), Natural::zero()],
            Node::Op { op, children, num_vars } => match op {
                OpKind::IndependentAnd => {
                    let mut acc = vec![Natural::one()];
                    for &ch in children {
                        acc = convolve(&acc, &counts[ch.index()]);
                    }
                    acc
                }
                OpKind::IndependentOr => {
                    // Convolve the non-model vectors, then complement.
                    let mut acc = vec![Natural::one()];
                    for &ch in children {
                        let nv = tree.node(ch).num_vars();
                        let row = binomial_row(nv);
                        let nm: Vec<Natural> = row
                            .iter()
                            .zip(counts[ch.index()].iter())
                            .map(|(total, c)| total - c)
                            .collect();
                        acc = convolve(&acc, &nm);
                    }
                    binomial_row(*num_vars)
                        .iter()
                        .zip(acc.iter())
                        .map(|(total, nm)| total - nm)
                        .collect()
                }
                OpKind::Exclusive => {
                    let mut acc = vec![Natural::zero(); num_vars + 1];
                    for &ch in children {
                        for (k, v) in counts[ch.index()].iter().enumerate() {
                            acc[k] += v;
                        }
                    }
                    acc
                }
            },
        };
        counts[id.index()] = c;
    }
    counts
}

/// Computes, for every variable, the vector of critical-set counts by size:
/// `result[x][k] = #kC(x)` — the number of sets `Y` of size `k` not containing
/// `x` such that `φ[Y] = 0` and `φ[Y ∪ {x}] = 1`.
///
/// # Panics
/// Panics (in debug builds) if the d-tree is not complete.
pub fn critical_counts_all(tree: &DTree) -> HashMap<Var, Vec<Natural>> {
    let by_size = model_counts_by_size(tree);
    let n = tree.num_vars();

    // Top-down context propagation: the context of a node is the
    // count-by-size vector of the "environment" choices outside the subtree
    // that keep a critical set critical.
    let mut contexts: Vec<Vec<Natural>> = vec![Vec::new(); tree.num_nodes()];
    contexts[tree.root().index()] = vec![Natural::one()];

    let mut acc: HashMap<Var, Vec<Int>> = HashMap::new();
    let add_contribution =
        |acc: &mut HashMap<Var, Vec<Int>>, v: Var, ctx: &[Natural], negate: bool| {
            let entry = acc.entry(v).or_insert_with(|| vec![Int::zero(); n]);
            for (k, c) in ctx.iter().enumerate() {
                if k < entry.len() && !c.is_zero() {
                    let delta = Int::from(c.clone());
                    if negate {
                        entry[k] -= &delta;
                    } else {
                        entry[k] += &delta;
                    }
                }
            }
        };

    for id in tree.preorder() {
        let ctx = contexts[id.index()].clone();
        match tree.node(id) {
            Node::Leaf(dnf) => {
                if let Some(v) = dnf.is_single_literal() {
                    add_contribution(&mut acc, v, &ctx, false);
                } else {
                    for v in dnf.universe().iter() {
                        acc.entry(v).or_insert_with(|| vec![Int::zero(); n.max(1)]);
                    }
                }
            }
            Node::PosLit(v) => add_contribution(&mut acc, *v, &ctx, false),
            Node::NegLit(v) => add_contribution(&mut acc, *v, &ctx, true),
            Node::Op { op, children, .. } => match op {
                OpKind::Exclusive => {
                    for &ch in children {
                        contexts[ch.index()].clone_from(&ctx);
                    }
                }
                OpKind::IndependentAnd | OpKind::IndependentOr => {
                    // The sibling factor vectors: model counts by size (⊙)
                    // or non-model counts by size (⊗).
                    let factors: Vec<Vec<Natural>> = children
                        .iter()
                        .map(|&ch| sibling_factor(tree, ch, &by_size, *op))
                        .collect();
                    let k = children.len();
                    let mut prefix: Vec<Vec<Natural>> = Vec::with_capacity(k + 1);
                    prefix.push(vec![Natural::one()]);
                    for f in &factors {
                        let last = prefix.last().expect("non-empty");
                        prefix.push(convolve(last, f));
                    }
                    let mut suffix: Vec<Vec<Natural>> = vec![vec![Natural::one()]; k + 1];
                    for i in (0..k).rev() {
                        suffix[i] = convolve(&suffix[i + 1], &factors[i]);
                    }
                    for (i, &ch) in children.iter().enumerate() {
                        let siblings = convolve(&prefix[i], &suffix[i + 1]);
                        contexts[ch.index()] = convolve(&ctx, &siblings);
                    }
                }
            },
        }
    }

    acc.into_iter()
        .map(|(v, counts)| {
            let counts: Vec<Natural> = counts
                .into_iter()
                .map(|c| {
                    debug_assert!(
                        !c.is_negative(),
                        "critical counts of positive lineage are non-negative"
                    );
                    if c.is_negative() {
                        Natural::zero()
                    } else {
                        c.into_magnitude()
                    }
                })
                .collect();
            (v, counts)
        })
        .collect()
}

fn sibling_factor(
    tree: &DTree,
    child: NodeId,
    by_size: &[Vec<Natural>],
    op: OpKind,
) -> Vec<Natural> {
    match op {
        OpKind::IndependentAnd => by_size[child.index()].clone(),
        _ => {
            let nv = tree.node(child).num_vars();
            binomial_row(nv)
                .iter()
                .zip(by_size[child.index()].iter())
                .map(|(total, c)| total - c)
                .collect()
        }
    }
}

/// Exact Shapley values of all variables of a complete d-tree (Eq. (17)).
///
/// Also returns nothing extra: use [`critical_counts_all`] directly for the
/// per-size breakdown (the App. D table) and sum it for the Banzhaf value.
pub fn shapley_all(tree: &DTree) -> HashMap<Var, ShapleyValue> {
    let critical = critical_counts_all(tree);
    let n = tree.num_vars() as u64;
    let denom = Natural::factorial(n);
    // Precompute the coefficients k!·(n−1−k)! for k = 0..n−1.
    let coeffs: Vec<Natural> =
        (0..n).map(|k| Natural::factorial(k).mul_ref(&Natural::factorial(n - 1 - k))).collect();
    critical
        .into_iter()
        .map(|(v, counts)| {
            let mut numer = Natural::zero();
            for (k, c) in counts.iter().enumerate() {
                if !c.is_zero() {
                    numer += &coeffs[k].mul_ref(c);
                }
            }
            (v, ShapleyValue { numer, denom: denom.clone() })
        })
        .collect()
}

/// Sanity helper: the model count by size at the root, summed, must equal the
/// scalar model count.
#[cfg(test)]
pub(crate) fn total_from_sizes(tree: &DTree) -> Natural {
    let by_size = model_counts_by_size(tree);
    let mut total = Natural::zero();
    for c in &by_size[tree.root().index()] {
        total += c;
    }
    let scalar = crate::exaban::model_counts(tree)[tree.root().index()].clone();
    debug_assert_eq!(total, scalar);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exaban::exaban_all;
    use banzhaf_boolean::Dnf;
    use banzhaf_dtree::{Budget, PivotHeuristic};

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn compile(phi: Dnf) -> DTree {
        DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap()
    }

    /// Brute-force Shapley value via the definition (Eq. (15)) for testing.
    fn brute_shapley(phi: &Dnf, x: Var) -> f64 {
        let others: Vec<Var> = phi.universe().iter().filter(|&u| u != x).collect();
        let n = phi.num_vars() as f64;
        let mut total = 0.0;
        for mask in 0u64..(1 << others.len()) {
            let set: Vec<Var> = others
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &u)| u)
                .collect();
            let size = set.len() as f64;
            let without = banzhaf_boolean::Assignment::from_true_vars(set.clone());
            let with = without.with(x);
            let delta = (phi.evaluate(&with) as i64 - phi.evaluate(&without) as i64) as f64;
            if delta != 0.0 {
                // k!(n-k-1)!/n!
                let coeff = factorial(size) * factorial(n - size - 1.0) / factorial(n);
                total += coeff * delta;
            }
        }
        total
    }

    fn factorial(x: f64) -> f64 {
        if x <= 1.0 {
            1.0
        } else {
            x * factorial(x - 1.0)
        }
    }

    #[test]
    fn critical_counts_sum_to_banzhaf() {
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(3)]]),
            Dnf::from_clauses(vec![vec![v(0)], vec![v(1), v(2)], vec![v(3), v(4)]]),
        ];
        for phi in functions {
            let tree = compile(phi.clone());
            let exact = exaban_all(&tree);
            let critical = critical_counts_all(&tree);
            for x in phi.universe().iter() {
                let mut total = Natural::zero();
                for c in &critical[&x] {
                    total += c;
                }
                assert_eq!(&total, exact.value(x).unwrap(), "{phi} {x}");
            }
        }
    }

    #[test]
    fn shapley_matches_brute_force() {
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(0)]]),
        ];
        for phi in functions {
            let tree = compile(phi.clone());
            let shapley = shapley_all(&tree);
            for x in phi.universe().iter() {
                let expected = brute_shapley(&phi, x);
                let got = shapley[&x].to_f64();
                assert!((expected - got).abs() < 1e-9, "{phi} {x}: {expected} vs {got}");
            }
        }
    }

    #[test]
    fn shapley_efficiency_axiom() {
        // The Shapley values of all players sum to φ(full) − φ(empty) = 1 for
        // a satisfiable, non-tautological positive function.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2)]]);
        let tree = compile(phi);
        let shapley = shapley_all(&tree);
        let total: f64 = shapley.values().map(ShapleyValue::to_f64).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn size_stratified_counts_are_consistent() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(3)]]);
        let tree = compile(phi.clone());
        assert_eq!(total_from_sizes(&tree), phi.brute_force_model_count());
    }

    #[test]
    fn banzhaf_and_shapley_rankings_can_differ() {
        // Scaled-down version of the App. D example: Q() :- R(x),S(x,y),T(x,z)
        // with asymmetric fan-outs. The full 18-fact example is exercised in
        // the integration tests and the `app_d` experiment.
        let phi = Dnf::from_clauses(vec![
            // R(a1) joins with 2 S-facts and 1 T-fact.
            vec![v(0), v(2), v(5)],
            vec![v(0), v(3), v(5)],
            // R(a2) joins with 1 S-fact and 2 T-facts.
            vec![v(1), v(4), v(6)],
            vec![v(1), v(4), v(7)],
        ]);
        let tree = compile(phi.clone());
        let banzhaf = exaban_all(&tree);
        let shapley = shapley_all(&tree);
        // Both measures are positive for both R-facts.
        assert!(banzhaf.value(v(0)).unwrap() > &Natural::zero());
        assert!(shapley[&v(0)].to_f64() > 0.0);
        // By symmetry of this small instance the two R-facts tie under both
        // measures; the inequality direction is exercised on the full App. D
        // database in the integration tests.
        assert_eq!(banzhaf.value(v(0)), banzhaf.value(v(1)));
        assert_eq!(shapley[&v(0)], shapley[&v(1)]);
    }

    #[test]
    fn shapley_value_ordering() {
        let a = ShapleyValue { numer: Natural::from(1u64), denom: Natural::from(3u64) };
        let b = ShapleyValue { numer: Natural::from(2u64), denom: Natural::from(6u64) };
        let c = ShapleyValue { numer: Natural::from(1u64), denom: Natural::from(2u64) };
        assert_eq!(a, b);
        assert!(a < c);
        assert!((a.to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }
}
