//! Normalizations of Banzhaf values and error measures used in the evaluation.

use banzhaf_arith::Natural;
use banzhaf_boolean::Var;
use std::collections::HashMap;

/// The Penrose–Banzhaf *power* of each variable: the raw Banzhaf value divided
/// by `2^{n-1}`, the number of possible assignments of the other variables
/// (Sec. 2 of the paper). Returned as `f64` since it is a reporting quantity.
pub fn normalized_power(values: &HashMap<Var, Natural>, num_vars: usize) -> HashMap<Var, f64> {
    let denom = Natural::pow2(num_vars.saturating_sub(1)).to_f64();
    values.iter().map(|(v, b)| (*v, if denom == 0.0 { 0.0 } else { b.to_f64() / denom })).collect()
}

/// The Penrose–Banzhaf *index* of each variable: the raw Banzhaf value divided
/// by the sum of all Banzhaf values. If all values are zero the index is zero.
pub fn normalized_index(values: &HashMap<Var, Natural>) -> HashMap<Var, f64> {
    let total: f64 = values.values().map(Natural::to_f64).sum();
    values.iter().map(|(v, b)| (*v, if total == 0.0 { 0.0 } else { b.to_f64() / total })).collect()
}

/// ℓ1 distance between two normalized Banzhaf vectors, the accuracy measure of
/// Table 7 in the paper: both inputs are normalized (to the Penrose–Banzhaf
/// index) and the absolute differences are summed over the union of their
/// variables.
pub fn l1_distance_normalized(estimate: &HashMap<Var, f64>, exact: &HashMap<Var, Natural>) -> f64 {
    let exact_total: f64 = exact.values().map(Natural::to_f64).sum();
    let est_total: f64 = estimate.values().map(|v| v.max(0.0)).sum();
    let mut distance = 0.0;
    let mut vars: Vec<Var> = exact.keys().copied().collect();
    for v in estimate.keys() {
        if !exact.contains_key(v) {
            vars.push(*v);
        }
    }
    for v in vars {
        let e = if exact_total == 0.0 {
            0.0
        } else {
            exact.get(&v).map(Natural::to_f64).unwrap_or(0.0) / exact_total
        };
        let a = if est_total == 0.0 {
            0.0
        } else {
            estimate.get(&v).copied().unwrap_or(0.0).max(0.0) / est_total
        };
        distance += (e - a).abs();
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(pairs: &[(u32, u64)]) -> HashMap<Var, Natural> {
        pairs.iter().map(|&(v, b)| (Var(v), Natural::from(b))).collect()
    }

    #[test]
    fn power_normalization() {
        let vals = values(&[(0, 3), (1, 1), (2, 1)]);
        let power = normalized_power(&vals, 3);
        assert_eq!(power[&Var(0)], 0.75);
        assert_eq!(power[&Var(1)], 0.25);
    }

    #[test]
    fn index_normalization_sums_to_one() {
        let vals = values(&[(0, 3), (1, 1), (2, 1)]);
        let index = normalized_index(&vals);
        let total: f64 = index.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((index[&Var(0)] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_normalizes_to_zero() {
        let vals = values(&[(0, 0), (1, 0)]);
        assert!(normalized_index(&vals).values().all(|&v| v == 0.0));
        assert!(normalized_power(&vals, 2).values().all(|&v| v == 0.0));
    }

    #[test]
    fn l1_distance_zero_for_exact_estimate() {
        let exact = values(&[(0, 3), (1, 1)]);
        let estimate: HashMap<Var, f64> = [(Var(0), 3.0), (Var(1), 1.0)].into_iter().collect();
        assert!(l1_distance_normalized(&estimate, &exact) < 1e-12);
        // Scaling the estimate uniformly does not change the normalized distance.
        let scaled: HashMap<Var, f64> = [(Var(0), 30.0), (Var(1), 10.0)].into_iter().collect();
        assert!(l1_distance_normalized(&scaled, &exact) < 1e-12);
    }

    #[test]
    fn l1_distance_detects_wrong_estimates() {
        let exact = values(&[(0, 3), (1, 1)]);
        let estimate: HashMap<Var, f64> = [(Var(0), 1.0), (Var(1), 3.0)].into_iter().collect();
        let d = l1_distance_normalized(&estimate, &exact);
        assert!((d - 1.0).abs() < 1e-12); // |0.75-0.25| + |0.25-0.75| = 1.
                                          // A missing variable counts as estimate zero.
        let partial: HashMap<Var, f64> = [(Var(0), 1.0)].into_iter().collect();
        let d = l1_distance_normalized(&partial, &exact);
        assert!(d > 0.0);
    }
}
