//! IchiBan: Banzhaf-based ranking and top-k via interval separation (Sec. 4.1).
//!
//! IchiBan maintains an approximation interval per fact and incrementally
//! refines all of them over a *shared* partial d-tree until either
//!
//! * the intervals certify the answer (for top-k: all but `k` facts are
//!   dominated by at least `k` others; for ranking: adjacent intervals in the
//!   midpoint order are separated or are certified ties), or
//! * in the ε-relaxed mode, every remaining interval satisfies the relative
//!   error ε, in which case facts are ordered by interval midpoints.

use crate::adaban::ApproxInterval;
use crate::bounds::bounds_for_var;
use banzhaf_arith::Ratio;
use banzhaf_boolean::Var;
use banzhaf_dtree::{Budget, DTree, Interrupted, Node, PivotHeuristic};
use std::collections::HashMap;

/// Configuration of IchiBan.
#[derive(Clone, Debug)]
pub struct IchiBanOptions {
    /// When `Some(ε)`, IchiBan may stop as soon as every (remaining) interval
    /// satisfies the relative error ε and rank by interval midpoints; when
    /// `None` it runs until the answer is certain.
    pub epsilon: Option<Ratio>,
    /// Shannon pivot-selection heuristic for leaf expansion.
    pub heuristic: PivotHeuristic,
    /// Use the tighter leaf bounds of optimization (4).
    pub use_opt4: bool,
    /// Number of d-tree expansion steps performed between interval
    /// refinement rounds.
    pub expansion_batch: usize,
}

impl IchiBanOptions {
    /// Certain (exact separation) mode with default heuristics.
    pub fn certain() -> Self {
        IchiBanOptions {
            epsilon: None,
            heuristic: PivotHeuristic::MostFrequent,
            use_opt4: true,
            expansion_batch: 4,
        }
    }

    /// ε-relaxed mode (`IchiBan_ε` in the paper) with default heuristics.
    pub fn with_epsilon(epsilon: Ratio) -> Self {
        IchiBanOptions { epsilon: Some(epsilon), ..IchiBanOptions::certain() }
    }

    /// Convenience constructor taking ε as a decimal string such as `"0.1"`.
    ///
    /// # Panics
    /// Panics if the string is not a valid decimal.
    pub fn with_epsilon_str(epsilon: &str) -> Self {
        IchiBanOptions::with_epsilon(Ratio::from_decimal_str(epsilon).expect("valid ε"))
    }
}

impl Default for IchiBanOptions {
    fn default() -> Self {
        IchiBanOptions::certain()
    }
}

/// Result of a top-k computation.
#[derive(Clone, Debug)]
pub struct TopK {
    /// The requested k (clamped to the number of variables).
    pub k: usize,
    /// The selected facts, ordered by decreasing (estimated) Banzhaf value.
    pub members: Vec<Var>,
    /// The final approximation interval of every fact.
    pub intervals: HashMap<Var, ApproxInterval>,
    /// `true` iff the membership of the top-k set is certified by interval
    /// separation (as opposed to decided by ε-relaxed midpoints).
    pub certified: bool,
}

/// Result of a ranking computation.
#[derive(Clone, Debug)]
pub struct Ranking {
    /// All facts ordered by decreasing (estimated) Banzhaf value.
    pub order: Vec<Var>,
    /// The final approximation interval of every fact.
    pub intervals: HashMap<Var, ApproxInterval>,
    /// `true` iff every adjacent pair in the order is certified (separated
    /// intervals or exact ties).
    pub certified: bool,
}

/// Collects every variable mentioned anywhere in the (possibly partial)
/// d-tree — i.e. the universe of the represented function.
pub(crate) fn tree_vars(tree: &DTree) -> Vec<Var> {
    let mut set = banzhaf_boolean::VarSet::empty();
    for id in tree.preorder() {
        match tree.node(id) {
            Node::Leaf(dnf) => set = set.union(dnf.universe()),
            Node::PosLit(v) | Node::NegLit(v) => set.insert(*v),
            Node::Op { .. } => {}
        }
    }
    set.iter().collect()
}

fn interval_for(tree: &DTree, x: Var, use_opt4: bool) -> ApproxInterval {
    let quad = bounds_for_var(tree, x, use_opt4);
    let (lower, upper) = quad.banzhaf_bounds_clamped();
    let upper = if upper < lower { lower.clone() } else { upper };
    ApproxInterval::new(lower, upper)
}

/// Number of variables whose certified lower bound strictly exceeds the upper
/// bound of `x` — i.e. how many facts certainly dominate `x`.
fn dominated_by(x: Var, intervals: &HashMap<Var, ApproxInterval>) -> usize {
    let xi = &intervals[&x];
    intervals.iter().filter(|(v, i)| **v != x && i.lower > xi.upper).count()
}

/// Computes the facts with the `k` largest Banzhaf values (Sec. 4.1).
///
/// The d-tree is refined in place; on return it may be partially compiled.
pub fn ichiban_topk(
    tree: &mut DTree,
    k: usize,
    options: &IchiBanOptions,
    budget: &Budget,
) -> Result<TopK, Interrupted> {
    let vars = tree_vars(tree);
    let k = k.min(vars.len());
    // Candidates still in the running for the top-k set.
    let mut active: Vec<Var> = vars.clone();
    let mut intervals: HashMap<Var, ApproxInterval> = HashMap::new();

    loop {
        budget.check_deadline()?;
        for &x in &active {
            intervals.insert(x, interval_for(tree, x, options.use_opt4));
        }
        // Discard candidates dominated by at least k others.
        active.retain(|&x| dominated_by(x, &intervals) < k);

        let complete = tree.is_complete();
        let separated = active.len() <= k;
        let epsilon_ok = options
            .epsilon
            .as_ref()
            .is_some_and(|eps| active.iter().all(|x| intervals[x].meets_epsilon(eps)));
        if separated || complete || epsilon_ok {
            let mut order = active.clone();
            order.sort_by(|a, b| {
                let (ia, ib) = (&intervals[a], &intervals[b]);
                ib.midpoint()
                    .partial_cmp(&ia.midpoint())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            });
            order.truncate(k);
            // The set is certified when interval separation (or completion,
            // which makes all intervals exact) decided it — not when the
            // ε-relaxation cut the refinement short.
            let certified = separated || complete;
            return Ok(TopK { k, members: order, intervals, certified });
        }

        expand_batch(tree, options, budget)?;
    }
}

/// Ranks all facts by Banzhaf value (Sec. 4.1).
pub fn ichiban_rank(
    tree: &mut DTree,
    options: &IchiBanOptions,
    budget: &Budget,
) -> Result<Ranking, Interrupted> {
    let vars = tree_vars(tree);
    let mut intervals: HashMap<Var, ApproxInterval> = HashMap::new();

    loop {
        budget.check_deadline()?;
        for &x in &vars {
            intervals.insert(x, interval_for(tree, x, options.use_opt4));
        }
        let mut order = vars.clone();
        order.sort_by(|a, b| {
            let (ia, ib) = (&intervals[a], &intervals[b]);
            ib.midpoint()
                .partial_cmp(&ia.midpoint())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        // The order is certified when every adjacent pair is separated or is
        // an exact tie: separation is transitive along the sorted order.
        let certified = order.windows(2).all(|w| {
            let (hi, lo) = (&intervals[&w[0]], &intervals[&w[1]]);
            lo.strictly_below(hi) || lo.certified_tie(hi)
        });
        let complete = tree.is_complete();
        let epsilon_ok = options
            .epsilon
            .as_ref()
            .is_some_and(|eps| vars.iter().all(|x| intervals[x].meets_epsilon(eps)));
        if certified || complete || epsilon_ok {
            return Ok(Ranking { order, intervals, certified: certified || complete });
        }

        expand_batch(tree, options, budget)?;
    }
}

fn expand_batch(
    tree: &mut DTree,
    options: &IchiBanOptions,
    budget: &Budget,
) -> Result<(), Interrupted> {
    for _ in 0..options.expansion_batch.max(1) {
        budget.step()?;
        if !tree.expand_largest_leaf(options.heuristic) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exaban::exaban_all;
    use banzhaf_boolean::Dnf;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn hard_function() -> Dnf {
        Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(4)],
            vec![v(4), v(0)],
            vec![v(0), v(2)],
        ])
    }

    fn ground_truth_topk(phi: &Dnf, k: usize) -> Vec<Var> {
        let tree =
            DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
                .unwrap();
        exaban_all(&tree).top_k(k).into_iter().map(|(v, _)| v).collect()
    }

    #[test]
    fn certain_topk_matches_exact_topk() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]);
        let truth = ground_truth_topk(&phi, 2);
        let mut tree = DTree::from_leaf(phi);
        let topk =
            ichiban_topk(&mut tree, 2, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
        assert!(topk.certified);
        assert_eq!(topk.members, truth);
    }

    #[test]
    fn topk_with_epsilon_is_accurate_on_separated_values() {
        let phi = hard_function();
        let truth = ground_truth_topk(&phi, 3);
        let mut tree = DTree::from_leaf(phi);
        let topk = ichiban_topk(
            &mut tree,
            3,
            &IchiBanOptions::with_epsilon_str("0.1"),
            &Budget::unlimited(),
        )
        .unwrap();
        // precision@3 is measured as set overlap (Table 8).
        let hits = topk.members.iter().filter(|m| truth.contains(m)).count();
        assert!(hits >= 2, "expected at least 2/3 precision, got {hits}/3");
        assert_eq!(topk.members.len(), 3);
    }

    #[test]
    fn topk_k_larger_than_vars() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)]]);
        let mut tree = DTree::from_leaf(phi);
        let topk =
            ichiban_topk(&mut tree, 10, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
        assert_eq!(topk.k, 2);
        assert_eq!(topk.members.len(), 2);
    }

    #[test]
    fn certain_ranking_matches_exact_ranking_values() {
        let phi = hard_function();
        let tree_exact =
            DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
                .unwrap();
        let exact = exaban_all(&tree_exact);
        let mut tree = DTree::from_leaf(phi.clone());
        let ranking =
            ichiban_rank(&mut tree, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
        assert!(ranking.certified);
        assert_eq!(ranking.order.len(), phi.num_vars());
        // The ranking must be consistent with the exact values: values along
        // the returned order are non-increasing.
        let values: Vec<_> =
            ranking.order.iter().map(|x| exact.value(*x).unwrap().clone()).collect();
        for w in values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // And every final interval contains the exact value.
        for (x, interval) in &ranking.intervals {
            let exact_v = exact.value(*x).unwrap();
            assert!(&interval.lower <= exact_v && exact_v <= &interval.upper);
        }
    }

    #[test]
    fn epsilon_ranking_orders_by_midpoints() {
        let phi = hard_function();
        let mut tree = DTree::from_leaf(phi.clone());
        let ranking =
            ichiban_rank(&mut tree, &IchiBanOptions::with_epsilon_str("0.2"), &Budget::unlimited())
                .unwrap();
        assert_eq!(ranking.order.len(), phi.num_vars());
        // Midpoints are non-increasing along the reported order.
        let mids: Vec<f64> =
            ranking.order.iter().map(|x| ranking.intervals[x].midpoint()).collect();
        for w in mids.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn ties_are_handled() {
        // Fully symmetric function: all variables have the same value.
        let phi = Dnf::from_clauses(vec![vec![v(0)], vec![v(1)], vec![v(2)]]);
        let mut tree = DTree::from_leaf(phi);
        let ranking =
            ichiban_rank(&mut tree, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
        assert!(ranking.certified);
        assert_eq!(ranking.order.len(), 3);
        let mut tree2 =
            DTree::from_leaf(Dnf::from_clauses(vec![vec![v(0)], vec![v(1)], vec![v(2)]]));
        let topk =
            ichiban_topk(&mut tree2, 2, &IchiBanOptions::certain(), &Budget::unlimited()).unwrap();
        assert_eq!(topk.members.len(), 2);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let phi = hard_function();
        let mut tree = DTree::from_leaf(phi);
        let budget = Budget::with_max_steps(1);
        let result = ichiban_rank(&mut tree, &IchiBanOptions::certain(), &budget);
        assert_eq!(result.unwrap_err(), Interrupted);
    }

    #[test]
    fn tree_vars_collects_universe() {
        let phi = Dnf::from_clauses_with_universe(
            vec![vec![v(0), v(1)]],
            banzhaf_boolean::VarSet::from_iter([v(0), v(1), v(5)]),
        );
        let mut tree = DTree::from_leaf(phi);
        tree.expand_largest_leaf(PivotHeuristic::MostFrequent);
        let vars = tree_vars(&tree);
        assert_eq!(vars, vec![v(0), v(1), v(5)]);
    }
}
