//! Exact Banzhaf attribution for aggregate answers (COUNT/SUM/MIN/MAX).
//!
//! The aggregate Banzhaf value of a fact `x` generalizes Eq. (1) of the
//! paper: it is the sum over all worlds `Y ⊆ X∖{x}` of the change in the
//! aggregate caused by inserting `x`, `val(Y ∪ {x}) − val(Y)` (the
//! aggregate-attribution follow-up, arXiv 2506.16923). Two exact routes,
//! chosen by [`AggregateKind::is_linear`]:
//!
//! * **COUNT/SUM** are linear in their clauses: the marginal of `x` through
//!   clause `c ∋ x` is `w_c` exactly when `c∖{x} ⊆ Y`, so
//!   `B(x) = Σ_{c ∋ x} w_c · 2^{n−|c|}` in closed form — no d-tree needed,
//!   which is also why linear propagation is exact here.
//!
//! * **MIN/MAX** are not linear; they use the **rank/threshold
//!   decomposition**. With distinct weights `θ₁ < … < θ_k` and `φ_{≥θ}` the
//!   Boolean sub-DNF of clauses weighing at least `θ`:
//!
//!   `max(Y) = θ₁·φ(Y) + Σ_{j≥2} (θ_j − θ_{j−1})·φ_{≥θ_j}(Y)`
//!
//!   (and dually `min(Y) = θ_k·φ(Y) − Σ_{j≥2} (θ_j − θ_{j−1})·φ_{<θ_j}(Y)`,
//!   both with the empty-group-is-0 convention). Banzhaf is linear in the
//!   world-value function, so the aggregate value is the same combination of
//!   *Boolean* Banzhaf values — each computed by the existing ExaBan pass
//!   over a compiled d-tree of the threshold sub-DNF. This is how the whole
//!   Boolean machinery (compilation budgets, caching, parallel batches) is
//!   reused for the non-linear aggregates.

use crate::exaban::exaban_all;
use banzhaf_arith::{Int, Natural, Rational};
use banzhaf_boolean::{AggregateKind, Dnf, Var, WeightedDnf};
use banzhaf_dtree::{Budget, DTree, Interrupted, PivotHeuristic};
use std::collections::HashMap;

/// Exact aggregate Banzhaf values of every universe variable.
#[derive(Clone, Debug)]
pub struct AggregateBanzhafResult {
    /// The aggregate Banzhaf value of each variable (signed: MIN attribution
    /// is negative for facts that drag the minimum down).
    pub values: HashMap<Var, Rational>,
    /// `Σ_Y val(Y)` over all `2^n` worlds — the aggregate analogue of the
    /// model count.
    pub total: Rational,
    /// The expected aggregate over a uniformly random world, `total / 2^n`.
    pub expected: Rational,
}

/// Work accounting for an aggregate computation (d-tree compilations of the
/// threshold sub-DNFs; zero for the closed-form linear kinds).
#[derive(Clone, Copy, Debug, Default)]
pub struct AggregateCost {
    /// Total Shannon/decomposition expansions across all compiled trees.
    pub compile_steps: u64,
    /// Total nodes across all compiled trees.
    pub dtree_nodes: usize,
}

/// Computes the exact aggregate Banzhaf value of every variable of `w`.
///
/// The `budget` is charged for every d-tree expansion of the threshold
/// sub-DNF compilations (MIN/MAX); the linear kinds are closed-form and only
/// cost one budget step.
pub fn aggregate_banzhaf_all(
    w: &WeightedDnf,
    heuristic: PivotHeuristic,
    budget: &Budget,
) -> Result<(AggregateBanzhafResult, AggregateCost), Interrupted> {
    if w.kind().is_linear() {
        budget.step()?;
        Ok((linear_banzhaf_all(w), AggregateCost::default()))
    } else {
        threshold_banzhaf_all(w, heuristic, budget)
    }
}

/// Closed-form SUM/COUNT attribution: `B(x) = Σ_{c ∋ x} w_c · 2^{n−|c|}` and
/// `total = Σ_c w_c · 2^{n−|c|}`.
fn linear_banzhaf_all(w: &WeightedDnf) -> AggregateBanzhafResult {
    let n = w.num_vars();
    let mut values: HashMap<Var, Rational> =
        w.universe().iter().map(|v| (v, Rational::zero())).collect();
    let mut total = Rational::zero();
    for (clause, weight) in w.dnf().clauses().iter().zip(w.weights()) {
        let contribution = weight.mul_natural(&Natural::pow2(n - clause.len()));
        for v in clause.iter() {
            *values.get_mut(&v).expect("clause variables are in the universe") += &contribution;
        }
        total += &contribution;
    }
    let expected = total.div_natural(&Natural::pow2(n));
    AggregateBanzhafResult { values, total, expected }
}

/// Threshold-decomposition MIN/MAX attribution over compiled d-trees.
fn threshold_banzhaf_all(
    w: &WeightedDnf,
    heuristic: PivotHeuristic,
    budget: &Budget,
) -> Result<(AggregateBanzhafResult, AggregateCost), Interrupted> {
    let n = w.num_vars();
    let mut values: HashMap<Var, Rational> =
        w.universe().iter().map(|v| (v, Rational::zero())).collect();
    let mut total = Rational::zero();
    let mut cost = AggregateCost::default();
    let thetas = w.distinct_weights();

    if let Some((first, rest)) = thetas.split_first() {
        // The base layer: the full Boolean skeleton, scaled by θ₁ (MAX) or
        // θ_k (MIN).
        let base = match w.kind() {
            AggregateKind::Max => first,
            _ => thetas.last().expect("non-empty thresholds"),
        };
        add_layer(&mut values, &mut total, base, w.dnf(), n, heuristic, budget, &mut cost)?;
        // One layer per threshold step; each layer's Boolean function flips a
        // sub-DNF of the skeleton, so every layer reuses the same machinery.
        let mut prev = first;
        for theta in rest {
            let step = theta - prev;
            let (layer, coefficient) = match w.kind() {
                AggregateKind::Max => (w.threshold_ge(theta), step),
                _ => (w.threshold_lt(theta), -step),
            };
            add_layer(
                &mut values,
                &mut total,
                &coefficient,
                &layer,
                n,
                heuristic,
                budget,
                &mut cost,
            )?;
            prev = theta;
        }
    }

    let expected = total.div_natural(&Natural::pow2(n));
    Ok((AggregateBanzhafResult { values, total, expected }, cost))
}

/// Adds `coefficient · B(x; φ)` to every variable's accumulator and
/// `coefficient · #φ` to the running total, computing the Boolean Banzhaf
/// values of `φ` by ExaBan over a freshly compiled d-tree.
#[allow(clippy::too_many_arguments)]
fn add_layer(
    values: &mut HashMap<Var, Rational>,
    total: &mut Rational,
    coefficient: &Rational,
    phi: &Dnf,
    n: usize,
    heuristic: PivotHeuristic,
    budget: &Budget,
    cost: &mut AggregateCost,
) -> Result<(), Interrupted> {
    if coefficient.is_zero() {
        return Ok(());
    }
    if phi.is_false() {
        return Ok(());
    }
    // Compile over the used variables only; Banzhaf values and counts over
    // the full n-variable universe are the restricted ones times
    // 2^(unused vars). Variables unused by this layer contribute nothing.
    let restricted = phi.restrict_to_used();
    let unused = n - restricted.num_vars();
    let scale = Natural::pow2(unused);
    let tree = DTree::compile_full(restricted, heuristic, budget)?;
    cost.compile_steps += tree.expansions();
    cost.dtree_nodes += tree.num_nodes();
    let result = exaban_all(&tree);
    for (v, b) in &result.values {
        let lifted = Int::from(b.clone()).mul_natural(&scale);
        *values.get_mut(v).expect("layer variables are in the universe") +=
            &coefficient.mul_int(&lifted);
    }
    *total += &coefficient.mul_natural(&result.model_count.mul_ref(&scale));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rat(n: i64) -> Rational {
        Rational::from(n)
    }

    fn weighted(kind: AggregateKind, clauses: Vec<(Vec<Var>, i64)>) -> WeightedDnf {
        WeightedDnf::from_weighted_clauses(kind, clauses.into_iter().map(|(c, w)| (c, rat(w))))
    }

    fn assert_matches_brute_force(w: &WeightedDnf) {
        let (result, _) =
            aggregate_banzhaf_all(w, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        assert_eq!(result.total, w.brute_force_total(), "total for {w:?}");
        for x in w.universe().iter() {
            assert_eq!(
                result.values[&x],
                w.brute_force_aggregate_banzhaf(x),
                "value of {x} for {w:?}"
            );
        }
    }

    #[test]
    fn linear_kinds_match_brute_force() {
        for kind in [AggregateKind::Count, AggregateKind::Sum] {
            assert_matches_brute_force(&weighted(
                kind,
                vec![(vec![v(0), v(1)], 3), (vec![v(0), v(2)], -2), (vec![v(3)], 7)],
            ));
            assert_matches_brute_force(&weighted(
                kind,
                vec![(vec![v(0)], 1), (vec![v(0), v(1)], 1), (vec![v(1), v(2), v(3)], 5)],
            ));
        }
    }

    #[test]
    fn min_max_match_brute_force() {
        for kind in [AggregateKind::Min, AggregateKind::Max] {
            // Distinct weights, including negatives.
            assert_matches_brute_force(&weighted(
                kind,
                vec![(vec![v(0), v(1)], 3), (vec![v(0), v(2)], -2), (vec![v(3)], 7)],
            ));
            // Duplicate weights collapse threshold layers.
            assert_matches_brute_force(&weighted(
                kind,
                vec![(vec![v(0)], 2), (vec![v(1)], 2), (vec![v(2), v(3)], 5)],
            ));
            // Overlapping clauses (shared variables).
            assert_matches_brute_force(&weighted(
                kind,
                vec![(vec![v(0), v(1)], 1), (vec![v(1), v(2)], 4), (vec![v(2), v(0)], -3)],
            ));
            // A single clause.
            assert_matches_brute_force(&weighted(kind, vec![(vec![v(0), v(1)], -9)]));
        }
    }

    #[test]
    fn expected_value_is_total_over_world_count() {
        let w = weighted(AggregateKind::Sum, vec![(vec![v(0)], 4), (vec![v(1), v(2)], 8)]);
        let (result, cost) =
            aggregate_banzhaf_all(&w, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        // total = 4·2^2 + 8·2^1 = 32; expected = 32/8 = 4.
        assert_eq!(result.total, rat(32));
        assert_eq!(result.expected, rat(4));
        // The linear route never compiles a d-tree.
        assert_eq!(cost.compile_steps, 0);
        assert_eq!(cost.dtree_nodes, 0);
    }

    #[test]
    fn min_max_charge_the_budget_through_compilation() {
        let w = weighted(
            AggregateKind::Max,
            vec![(vec![v(0), v(1)], 1), (vec![v(1), v(2)], 2), (vec![v(2), v(3)], 3)],
        );
        let (_, cost) =
            aggregate_banzhaf_all(&w, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        assert!(cost.compile_steps > 0);
        assert!(cost.dtree_nodes > 0);
        // A starved budget interrupts instead of returning a wrong answer.
        let starved =
            aggregate_banzhaf_all(&w, PivotHeuristic::MostFrequent, &Budget::with_max_steps(1));
        assert_eq!(starved.unwrap_err(), Interrupted);
    }

    #[test]
    fn empty_lineage_is_all_zero() {
        let w = WeightedDnf::from_weighted_clauses(
            AggregateKind::Sum,
            Vec::<(Vec<Var>, Rational)>::new(),
        );
        let (result, _) =
            aggregate_banzhaf_all(&w, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        assert!(result.values.is_empty());
        assert!(result.total.is_zero());
        assert!(result.expected.is_zero());
    }
}
