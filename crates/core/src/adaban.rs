//! AdaBan: anytime deterministic approximation of Banzhaf values (Fig. 3).
//!
//! `AdaBan` interleaves incremental d-tree compilation with bound computation:
//! after each batch of expansion steps it recomputes the bound quadruple for
//! the variable of interest and stops as soon as the relative-error condition
//! `(1−ε)·U ≤ (1+ε)·L` holds. Because expansion steps can only tighten the
//! bounds (Prop. 15) and a complete d-tree yields the exact value (Lemma 20),
//! the loop always terminates with a certified ε-approximation — unless the
//! caller-provided budget runs out first.
//!
//! The four optimizations of Sec. 3.2.4 are represented as follows:
//! 1. *lazy bound recomputation* — bounds are recomputed only after a Shannon
//!    expansion (independence/factoring steps keep expanding);
//! 2. subtree bound caching is subsumed by recomputing over the (small)
//!    d-tree skeleton only; the expensive part, the iDNF bounds at leaves, is
//!    recomputed only for leaves that changed because unchanged leaves keep
//!    their DNF identity;
//! 3. *shared partial d-tree across variables* — [`adaban_all`] approximates
//!    one variable at a time, reusing the same tree;
//! 4. the tighter leaf bound based on `#φ − 2·#φ[x:=0]` (`use_opt4`).

use crate::bounds::bounds_for_var;
use banzhaf_arith::{Natural, Ratio};
use banzhaf_boolean::Var;
use banzhaf_dtree::{Budget, DTree, Interrupted, PivotHeuristic};

/// Configuration of the AdaBan approximation.
#[derive(Clone, Debug)]
pub struct AdaBanOptions {
    /// Relative error ε ∈ [0, 1]. With ε = 0 AdaBan degenerates to exact
    /// computation (it keeps expanding until lower and upper bounds meet).
    pub epsilon: Ratio,
    /// Shannon pivot-selection heuristic used for leaf expansion.
    pub heuristic: PivotHeuristic,
    /// Use the tighter leaf bounds of optimization (4).
    pub use_opt4: bool,
    /// Lazy bound recomputation (optimization (1)): keep expanding through
    /// factoring/partitioning steps and only recompute bounds after a Shannon
    /// expansion step (or completion).
    pub lazy: bool,
}

impl AdaBanOptions {
    /// Options with the paper's default configuration and the given ε.
    pub fn with_epsilon(epsilon: Ratio) -> Self {
        AdaBanOptions {
            epsilon,
            heuristic: PivotHeuristic::MostFrequent,
            use_opt4: true,
            lazy: true,
        }
    }

    /// Convenience constructor taking ε as a decimal string such as `"0.1"`.
    ///
    /// # Panics
    /// Panics if the string is not a valid decimal.
    pub fn with_epsilon_str(epsilon: &str) -> Self {
        AdaBanOptions::with_epsilon(Ratio::from_decimal_str(epsilon).expect("valid ε"))
    }
}

impl Default for AdaBanOptions {
    fn default() -> Self {
        AdaBanOptions::with_epsilon(Ratio::from_u64(1, 10))
    }
}

/// A certified approximation interval `[lower, upper]` containing the exact
/// Banzhaf value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApproxInterval {
    /// Certified lower bound on the Banzhaf value.
    pub lower: Natural,
    /// Certified upper bound on the Banzhaf value.
    pub upper: Natural,
}

impl ApproxInterval {
    /// Builds an interval, checking the orientation.
    pub fn new(lower: Natural, upper: Natural) -> Self {
        debug_assert!(lower <= upper, "interval bounds out of order");
        ApproxInterval { lower, upper }
    }

    /// `true` iff the interval is a single point (the exact value).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// `true` iff the relative-error condition `(1−ε)·upper ≤ (1+ε)·lower`
    /// holds, i.e. every value in `[(1−ε)·upper, (1+ε)·lower]` is an
    /// ε-approximation of the exact value (Prop. 16).
    pub fn meets_epsilon(&self, epsilon: &Ratio) -> bool {
        epsilon.error_condition_met(&self.lower, &self.upper)
    }

    /// Midpoint of the interval as `f64`, used as the point estimate when
    /// reporting approximate values and approximate rankings.
    pub fn midpoint(&self) -> f64 {
        f64::midpoint(self.lower.to_f64(), self.upper.to_f64())
    }

    /// `true` iff this interval lies strictly below `other` (their closures
    /// do not intersect), which certifies the ranking between the two
    /// variables.
    pub fn strictly_below(&self, other: &ApproxInterval) -> bool {
        self.upper < other.lower
    }

    /// `true` iff both intervals are the same single point (a certified tie).
    pub fn certified_tie(&self, other: &ApproxInterval) -> bool {
        self.is_exact() && other.is_exact() && self.lower == other.lower
    }
}

/// Runs AdaBan for a single variable on the given (typically un-expanded)
/// d-tree, refining it in place. Returns a certified interval that satisfies
/// the requested relative error.
///
/// The d-tree is mutated: expansions performed while approximating this
/// variable remain available to later calls (optimization (3)).
pub fn adaban(
    tree: &mut DTree,
    x: Var,
    options: &AdaBanOptions,
    budget: &Budget,
) -> Result<ApproxInterval, Interrupted> {
    // Trivial initial bounds [0, 2^{n-1}] (the Banzhaf value of a variable in
    // a positive function over n variables is at most 2^{n-1}).
    let n = tree.num_vars();
    let mut best_lower = Natural::zero();
    let mut best_upper = Natural::pow2(n.saturating_sub(1));

    loop {
        budget.check_deadline()?;
        let quad = bounds_for_var(tree, x, options.use_opt4);
        let (lower, upper) = quad.banzhaf_bounds_clamped();
        // Keep the best bounds seen so far (the quad bounds of a partial tree
        // are monotone in practice, but max/min keeps the invariant obvious).
        if lower > best_lower {
            best_lower = lower;
        }
        if upper < best_upper {
            best_upper = upper;
        }
        if best_upper < best_lower {
            // Numerically impossible for sound bounds; normalize defensively.
            best_upper = best_lower.clone();
        }
        if options.epsilon.error_condition_met(&best_lower, &best_upper) {
            return Ok(ApproxInterval::new(best_lower, best_upper));
        }
        // Not precise enough: expand the d-tree. With the lazy optimization we
        // keep expanding through cheap factoring/partitioning steps and stop
        // at the first Shannon step, since only Shannon steps change the
        // exclusive structure that the leaf bounds are blind to.
        let mut expanded_any = false;
        loop {
            budget.step()?;
            let shannon_before = tree.stats().exclusive;
            if !tree.expand_largest_leaf(options.heuristic) {
                break;
            }
            expanded_any = true;
            let shannon_after = tree.stats().exclusive;
            if !options.lazy || shannon_after > shannon_before {
                break;
            }
        }
        if !expanded_any {
            // Tree is complete; the next bounds call returns the exact value
            // and the ε-condition necessarily holds. Guard against looping.
            let quad = bounds_for_var(tree, x, options.use_opt4);
            let (lower, upper) = quad.banzhaf_bounds_clamped();
            debug_assert_eq!(lower, upper);
            return Ok(ApproxInterval::new(lower.clone(), lower));
        }
    }
}

/// Runs AdaBan for every variable in `vars`, one variable at a time, reusing
/// the partial d-tree across variables (optimization (3) of Sec. 3.2.4).
pub fn adaban_all(
    tree: &mut DTree,
    vars: &[Var],
    options: &AdaBanOptions,
    budget: &Budget,
) -> Result<Vec<(Var, ApproxInterval)>, Interrupted> {
    let mut out = Vec::with_capacity(vars.len());
    for &x in vars {
        let interval = adaban(tree, x, options, budget)?;
        out.push((x, interval));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_arith::Int;
    use banzhaf_boolean::Dnf;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn hard_function() -> Dnf {
        // Connected, no common variable: needs Shannon expansion.
        Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(4)],
            vec![v(4), v(0)],
            vec![v(1), v(3)],
        ])
    }

    #[test]
    fn interval_contains_exact_value_for_every_epsilon() {
        let phi = hard_function();
        for eps in ["0", "0.1", "0.3", "0.5", "1"] {
            let options = AdaBanOptions::with_epsilon_str(eps);
            for x in phi.universe().iter() {
                let mut tree = DTree::from_leaf(phi.clone());
                let interval = adaban(&mut tree, x, &options, &Budget::unlimited()).unwrap();
                let exact = phi.brute_force_banzhaf(x);
                assert!(Int::from(interval.lower.clone()) <= exact, "eps={eps} {x}");
                assert!(exact <= Int::from(interval.upper.clone()), "eps={eps} {x}");
                assert!(interval.meets_epsilon(&options.epsilon));
            }
        }
    }

    #[test]
    fn epsilon_zero_gives_exact_values() {
        let phi = hard_function();
        let options = AdaBanOptions::with_epsilon_str("0");
        let mut tree = DTree::from_leaf(phi.clone());
        let vars: Vec<Var> = phi.universe().iter().collect();
        let intervals = adaban_all(&mut tree, &vars, &options, &Budget::unlimited()).unwrap();
        for (x, interval) in intervals {
            assert!(interval.is_exact());
            assert_eq!(Int::from(interval.lower), phi.brute_force_banzhaf(x));
        }
    }

    #[test]
    fn shared_tree_makes_later_variables_cheap() {
        let phi = hard_function();
        let options = AdaBanOptions::with_epsilon_str("0");
        let vars: Vec<Var> = phi.universe().iter().collect();
        // Approximating the second variable from scratch costs this much.
        let mut fresh = DTree::from_leaf(phi.clone());
        adaban(&mut fresh, vars[1], &options, &Budget::unlimited()).unwrap();
        let fresh_expansions = fresh.expansions();
        // Reusing the tree refined for the first variable can only need fewer
        // (or equally many) additional expansions (optimization (3)).
        let mut shared = DTree::from_leaf(phi.clone());
        adaban(&mut shared, vars[0], &options, &Budget::unlimited()).unwrap();
        let after_first = shared.expansions();
        adaban(&mut shared, vars[1], &options, &Budget::unlimited()).unwrap();
        let additional = shared.expansions() - after_first;
        assert!(additional <= fresh_expansions);
    }

    #[test]
    fn loose_epsilon_requires_fewer_expansions() {
        let phi = hard_function();
        let x = v(1);
        let mut tree_exact = DTree::from_leaf(phi.clone());
        adaban(&mut tree_exact, x, &AdaBanOptions::with_epsilon_str("0"), &Budget::unlimited())
            .unwrap();
        let mut tree_loose = DTree::from_leaf(phi.clone());
        adaban(&mut tree_loose, x, &AdaBanOptions::with_epsilon_str("1"), &Budget::unlimited())
            .unwrap();
        assert!(tree_loose.expansions() <= tree_exact.expansions());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let phi = hard_function();
        let mut tree = DTree::from_leaf(phi);
        let budget = Budget::with_max_steps(1);
        let result = adaban(&mut tree, v(0), &AdaBanOptions::with_epsilon_str("0"), &budget);
        assert_eq!(result.unwrap_err(), Interrupted);
    }

    #[test]
    fn eager_and_lazy_agree() {
        let phi = hard_function();
        for x in phi.universe().iter() {
            let mut lazy_opts = AdaBanOptions::with_epsilon_str("0.2");
            lazy_opts.lazy = true;
            let mut eager_opts = lazy_opts.clone();
            eager_opts.lazy = false;
            let mut t1 = DTree::from_leaf(phi.clone());
            let mut t2 = DTree::from_leaf(phi.clone());
            let i1 = adaban(&mut t1, x, &lazy_opts, &Budget::unlimited()).unwrap();
            let i2 = adaban(&mut t2, x, &eager_opts, &Budget::unlimited()).unwrap();
            let exact = phi.brute_force_banzhaf(x);
            for i in [i1, i2] {
                assert!(Int::from(i.lower.clone()) <= exact);
                assert!(exact <= Int::from(i.upper.clone()));
            }
        }
    }

    #[test]
    fn interval_helpers() {
        let a = ApproxInterval::new(Natural::from(1u64), Natural::from(2u64));
        let b = ApproxInterval::new(Natural::from(5u64), Natural::from(9u64));
        assert!(a.strictly_below(&b));
        assert!(!b.strictly_below(&a));
        assert!(!a.is_exact());
        let c = ApproxInterval::new(Natural::from(4u64), Natural::from(4u64));
        assert!(c.is_exact());
        assert!(c.certified_tie(&c.clone()));
        assert!((a.midpoint() - 1.5).abs() < 1e-12);
    }
}
