//! ExaBan: exact Banzhaf values and model counts over complete d-trees.
//!
//! The algorithm of Fig. 1 in the paper computes, for a complete d-tree `Tφ`
//! and a variable `x`, the pair `(Banzhaf(φ, x), #φ)` bottom-up using the
//! combination rules Eq. (4)–(9):
//!
//! * `⊙` (independent AND): `# = #₁·#₂`, `B = B₁·#₂` (with `x` in child 1);
//! * `⊗` (independent OR): `# = #₁·2^{n₂} + 2^{n₁}·#₂ − #₁·#₂`,
//!   `B = B₁·(2^{n₂} − #₂)`;
//! * `⊕` (mutual exclusion): `# = #₁+#₂`, `B = B₁+B₂`.
//!
//! [`exaban_single`] is the literal transcription of Fig. 1. [`exaban_all`]
//! computes the Banzhaf values of *all* variables in two passes — one
//! bottom-up pass for the model counts and one top-down pass propagating a
//! "context factor" to each leaf — which shares the count computation across
//! variables exactly as the paper suggests ("For all variables, it uses the
//! same d-tree and shares the computation of the counts").

use banzhaf_arith::{Int, Natural};
use banzhaf_boolean::Var;
use banzhaf_dtree::{DTree, Node, NodeId, OpKind};
use std::collections::HashMap;

/// Exact Banzhaf values of every variable of a function, plus its model count.
#[derive(Clone, Debug)]
pub struct BanzhafResult {
    /// The Banzhaf value of each variable of the function's universe.
    /// For positive lineage these are non-negative.
    pub values: HashMap<Var, Natural>,
    /// The exact model count `#φ`.
    pub model_count: Natural,
}

impl BanzhafResult {
    /// The Banzhaf value of `v`, if `v` is a variable of the function.
    pub fn value(&self, v: Var) -> Option<&Natural> {
        self.values.get(&v)
    }

    /// Variables sorted by decreasing Banzhaf value (ties by variable index).
    pub fn ranking(&self) -> Vec<(Var, Natural)> {
        let mut items: Vec<(Var, Natural)> =
            self.values.iter().map(|(v, b)| (*v, b.clone())).collect();
        items.sort_by(|(va, ba), (vb, bb)| bb.cmp(ba).then(va.cmp(vb)));
        items
    }

    /// The `k` variables with the largest Banzhaf values.
    pub fn top_k(&self, k: usize) -> Vec<(Var, Natural)> {
        self.ranking().into_iter().take(k).collect()
    }
}

/// Computes the exact model count of every node of a complete d-tree,
/// bottom-up, indexed by [`NodeId::index`]. Shared by [`exaban_single`] and
/// [`exaban_all`]; exposed so callers holding a compiled tree (notably the
/// `banzhaf-engine` crate) can run the pass once and reuse it across
/// variables and across algorithms via [`exaban_all_with_counts`].
///
/// # Panics
/// Panics (in debug builds) if the d-tree is not complete.
pub fn model_counts(tree: &DTree) -> Vec<Natural> {
    // One instantiation of the generic bottom-up combine
    // (`DTree::fold_postorder`): the Boolean counting semiring. The aggregate
    // layer instantiates the same skeleton with weighted values.
    tree.fold_postorder(|_, node, counts| match node {
        Node::Leaf(dnf) => {
            debug_assert!(
                dnf.is_constant() || dnf.is_single_literal().is_some(),
                "ExaBan requires a complete d-tree"
            );
            if dnf.is_false() {
                Natural::zero()
            } else if dnf.is_true() {
                Natural::pow2(dnf.num_vars())
            } else {
                // Single positive literal over a singleton universe.
                Natural::one()
            }
        }
        Node::PosLit(_) | Node::NegLit(_) => Natural::one(),
        Node::Op { op, children, num_vars } => {
            combine_counts(*op, children, *num_vars, counts, tree)
        }
    })
}

/// Combines children model counts at an inner node.
fn combine_counts(
    op: OpKind,
    children: &[NodeId],
    num_vars: usize,
    counts: &[Natural],
    tree: &DTree,
) -> Natural {
    match op {
        OpKind::IndependentAnd => {
            let mut acc = Natural::one();
            for &c in children {
                acc = acc.mul_ref(&counts[c.index()]);
            }
            acc
        }
        OpKind::IndependentOr => {
            // #φ = 2^n − Π (2^{n_i} − #φ_i): multiply the non-model counts.
            let mut non_models = Natural::one();
            for &c in children {
                let child_vars = tree.node(c).num_vars();
                let nm = &Natural::pow2(child_vars) - &counts[c.index()];
                non_models = non_models.mul_ref(&nm);
            }
            &Natural::pow2(num_vars) - &non_models
        }
        OpKind::Exclusive => {
            let mut acc = Natural::zero();
            for &c in children {
                acc += &counts[c.index()];
            }
            acc
        }
    }
}

/// ExaBan for a single variable (Fig. 1 of the paper): returns
/// `(Banzhaf(φ, x), #φ)` for the function represented by the complete d-tree.
///
/// The Banzhaf value is returned as a signed integer because the generic
/// recursion also covers negated literals introduced by Shannon expansion;
/// for positive lineage the root value is always non-negative.
///
/// # Panics
/// Panics (in debug builds) if the d-tree is not complete.
pub fn exaban_single(tree: &DTree, x: Var) -> (Int, Natural) {
    let counts = model_counts(tree);
    // Per-node Banzhaf value of `x` in the subtree function.
    let mut banzhaf: Vec<Int> = vec![Int::zero(); tree.num_nodes()];
    // Whether the subtree mentions `x` (computed bottom-up to avoid repeated
    // subtree scans).
    let mut contains: Vec<bool> = vec![false; tree.num_nodes()];
    for id in tree.postorder() {
        let (b, has) = match tree.node(id) {
            Node::Leaf(dnf) => {
                let has = dnf.universe().contains(x);
                let b = if dnf.is_constant() {
                    Int::zero()
                } else if dnf.is_single_literal() == Some(x) {
                    Int::one()
                } else {
                    Int::zero()
                };
                (b, has)
            }
            Node::PosLit(v) => (if *v == x { Int::one() } else { Int::zero() }, *v == x),
            Node::NegLit(v) => (if *v == x { Int::minus_one() } else { Int::zero() }, *v == x),
            Node::Op { op, children, .. } => {
                let has = children.iter().any(|&c| contains[c.index()]);
                let b = match op {
                    OpKind::IndependentAnd => {
                        // B = B_i · Π_{j≠i} #_j where x is in child i.
                        let mut acc = Int::zero();
                        if has {
                            let i = children
                                .iter()
                                .position(|&c| contains[c.index()])
                                .expect("has implies a child containing x");
                            acc = banzhaf[children[i].index()].clone();
                            for (j, &c) in children.iter().enumerate() {
                                if j != i {
                                    acc = acc.mul_natural(&counts[c.index()]);
                                }
                            }
                        }
                        acc
                    }
                    OpKind::IndependentOr => {
                        let mut acc = Int::zero();
                        if has {
                            let i = children
                                .iter()
                                .position(|&c| contains[c.index()])
                                .expect("has implies a child containing x");
                            acc = banzhaf[children[i].index()].clone();
                            for (j, &c) in children.iter().enumerate() {
                                if j != i {
                                    let nj = tree.node(c).num_vars();
                                    let factor = &Natural::pow2(nj) - &counts[c.index()];
                                    acc = acc.mul_natural(&factor);
                                }
                            }
                        }
                        acc
                    }
                    OpKind::Exclusive => {
                        let mut acc = Int::zero();
                        for &c in children {
                            acc += &banzhaf[c.index()];
                        }
                        acc
                    }
                };
                (b, has)
            }
        };
        banzhaf[id.index()] = b;
        contains[id.index()] = has;
    }
    (banzhaf[tree.root().index()].clone(), counts[tree.root().index()].clone())
}

/// ExaBan for all variables: one bottom-up model-count pass and one top-down
/// context-propagation pass.
///
/// The *context* of a node is the factor by which the Banzhaf value of a
/// variable inside that subtree is multiplied when lifted to the root:
/// crossing a `⊙` node multiplies by the siblings' model counts, crossing a
/// `⊗` node multiplies by the siblings' non-model counts `2^{n_j} − #_j`, and
/// `⊕` nodes pass the context through unchanged (Eq. (5), (7), (9)).
///
/// # Panics
/// Panics (in debug builds) if the d-tree is not complete.
pub fn exaban_all(tree: &DTree) -> BanzhafResult {
    exaban_all_with_counts(tree, &model_counts(tree))
}

/// [`exaban_all`] with a precomputed per-node model-count vector (as returned
/// by [`model_counts`] for the same tree), so the bottom-up count pass can be
/// shared across algorithms operating on one compiled d-tree.
///
/// # Panics
/// Panics (in debug builds) if the d-tree is not complete or if `counts` does
/// not match the tree.
pub fn exaban_all_with_counts(tree: &DTree, counts: &[Natural]) -> BanzhafResult {
    debug_assert_eq!(counts.len(), tree.num_nodes(), "counts vector does not match the tree");
    let mut contexts: Vec<Natural> = vec![Natural::zero(); tree.num_nodes()];
    contexts[tree.root().index()] = Natural::one();

    // Accumulate signed contributions per variable (negated literals from
    // Shannon expansion contribute negatively).
    let mut acc: HashMap<Var, Int> = HashMap::new();

    for id in tree.preorder() {
        let ctx = contexts[id.index()].clone();
        match tree.node(id) {
            Node::Leaf(dnf) => {
                if let Some(v) = dnf.is_single_literal() {
                    *acc.entry(v).or_default() += &Int::from(ctx);
                } else {
                    // Constant leaf: its universe variables have zero
                    // contribution through this subtree but must still appear
                    // in the result with value 0.
                    for v in dnf.universe().iter() {
                        acc.entry(v).or_default();
                    }
                }
            }
            Node::PosLit(v) => {
                *acc.entry(*v).or_default() += &Int::from(ctx);
            }
            Node::NegLit(v) => {
                *acc.entry(*v).or_default() -= &Int::from(ctx);
            }
            Node::Op { op, children, .. } => match op {
                OpKind::Exclusive => {
                    for &c in children {
                        contexts[c.index()] = ctx.clone();
                    }
                }
                OpKind::IndependentAnd | OpKind::IndependentOr => {
                    // Child i's context is ctx · Π_{j≠i} factor_j where
                    // factor_j is #_j (⊙) or 2^{n_j} − #_j (⊗). Computed with
                    // prefix/suffix products to stay linear in the fan-out.
                    let factors: Vec<Natural> = children
                        .iter()
                        .map(|&c| match op {
                            OpKind::IndependentAnd => counts[c.index()].clone(),
                            _ => {
                                let nj = tree.node(c).num_vars();
                                &Natural::pow2(nj) - &counts[c.index()]
                            }
                        })
                        .collect();
                    let k = children.len();
                    let mut prefix = vec![Natural::one(); k + 1];
                    for i in 0..k {
                        prefix[i + 1] = prefix[i].mul_ref(&factors[i]);
                    }
                    let mut suffix = vec![Natural::one(); k + 1];
                    for i in (0..k).rev() {
                        suffix[i] = suffix[i + 1].mul_ref(&factors[i]);
                    }
                    for (i, &c) in children.iter().enumerate() {
                        let sibling_product = prefix[i].mul_ref(&suffix[i + 1]);
                        contexts[c.index()] = ctx.mul_ref(&sibling_product);
                    }
                }
            },
        }
    }

    let values = acc
        .into_iter()
        .map(|(v, b)| {
            debug_assert!(!b.is_negative(), "positive lineage has non-negative Banzhaf values");
            (v, b.into_magnitude())
        })
        .collect();
    BanzhafResult { values, model_count: counts[tree.root().index()].clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_dtree::{Budget, PivotHeuristic};

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn compile(phi: banzhaf_boolean::Dnf) -> DTree {
        DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap()
    }

    #[test]
    fn example_11_trace() {
        // φ = (x ∧ y) ∨ (x ∧ z): Banzhaf(x) = 3, #φ = 3 (Example 11).
        let phi = banzhaf_boolean::Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        let tree = compile(phi);
        let (b, count) = exaban_single(&tree, v(0));
        assert_eq!(b.to_i128(), Some(3));
        assert_eq!(count.to_u64(), Some(3));
        let (by, _) = exaban_single(&tree, v(1));
        assert_eq!(by.to_i128(), Some(1));
        let all = exaban_all(&tree);
        assert_eq!(all.model_count.to_u64(), Some(3));
        assert_eq!(all.value(v(0)).unwrap().to_u64(), Some(3));
        assert_eq!(all.value(v(1)).unwrap().to_u64(), Some(1));
        assert_eq!(all.value(v(2)).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn example_13_function() {
        // φ = (x ∧ y) ∨ (x ∧ z) ∨ u: Banzhaf(x) = 3, #φ = 11 (Example 13).
        let phi = banzhaf_boolean::Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(0), v(2)],
            vec![v(3)],
        ]);
        let tree = compile(phi);
        let all = exaban_all(&tree);
        assert_eq!(all.model_count.to_u64(), Some(11));
        assert_eq!(all.value(v(0)).unwrap().to_u64(), Some(3));
        assert_eq!(all.value(v(3)).unwrap().to_u64(), Some(5));
    }

    #[test]
    fn matches_brute_force_on_assorted_functions() {
        let functions = vec![
            banzhaf_boolean::Dnf::from_clauses(vec![
                vec![v(0), v(1)],
                vec![v(1), v(2)],
                vec![v(2), v(3)],
            ]),
            banzhaf_boolean::Dnf::from_clauses(vec![
                vec![v(0), v(1)],
                vec![v(2), v(3)],
                vec![v(0), v(3)],
                vec![v(4)],
            ]),
            banzhaf_boolean::Dnf::from_clauses(vec![
                vec![v(0), v(1), v(2)],
                vec![v(1), v(3)],
                vec![v(3), v(4), v(5)],
                vec![v(0), v(5)],
            ]),
            banzhaf_boolean::Dnf::from_clauses_with_universe(
                vec![vec![v(0), v(1)], vec![v(1), v(2)]],
                banzhaf_boolean::VarSet::from_iter([v(0), v(1), v(2), v(3)]),
            ),
        ];
        for phi in functions {
            let tree = compile(phi.clone());
            let all = exaban_all(&tree);
            assert_eq!(all.model_count, phi.brute_force_model_count(), "{phi}");
            for x in phi.universe().iter() {
                let expected = phi.brute_force_banzhaf(x);
                let (single, _) = exaban_single(&tree, x);
                assert_eq!(single, expected, "single {phi} {x}");
                assert_eq!(Int::from(all.value(x).unwrap().clone()), expected, "all {phi} {x}");
            }
        }
    }

    #[test]
    fn ranking_and_topk() {
        let phi = banzhaf_boolean::Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(0), v(2)],
            vec![v(3)],
        ]);
        let tree = compile(phi);
        let all = exaban_all(&tree);
        let ranking = all.ranking();
        assert_eq!(ranking[0].0, v(3)); // u has the largest value (5).
        assert_eq!(ranking[1].0, v(0)); // then x (3).
        let top2 = all.top_k(2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].0, v(3));
        // Asking for more than there are variables returns all of them.
        assert_eq!(all.top_k(10).len(), 4);
    }

    #[test]
    fn constant_functions() {
        let t = compile(banzhaf_boolean::Dnf::constant_true(banzhaf_boolean::VarSet::from_iter([
            v(0),
            v(1),
        ])));
        let all = exaban_all(&t);
        assert_eq!(all.model_count.to_u64(), Some(4));
        assert_eq!(all.value(v(0)).unwrap().to_u64(), Some(0));
        let f = compile(banzhaf_boolean::Dnf::constant_false(banzhaf_boolean::VarSet::from_iter(
            [v(0)],
        )));
        let all = exaban_all(&f);
        assert_eq!(all.model_count.to_u64(), Some(0));
        assert_eq!(all.value(v(0)).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn single_variable_function() {
        let tree = compile(banzhaf_boolean::Dnf::variable(v(7)));
        let (b, c) = exaban_single(&tree, v(7));
        assert_eq!(b.to_i128(), Some(1));
        assert_eq!(c.to_u64(), Some(1));
        let all = exaban_all(&tree);
        assert_eq!(all.value(v(7)).unwrap().to_u64(), Some(1));
    }
}
