//! ExaBan, AdaBan and IchiBan — Banzhaf values of facts in query answering.
//!
//! This crate implements the primary contribution of *Banzhaf Values for Facts
//! in Query Answering* (SIGMOD 2024):
//!
//! * [`exaban_all`] / [`exaban_single`] — **ExaBan** (Fig. 1): exact Banzhaf
//!   values and model counts over a complete d-tree.
//! * [`bounds_for_var`] — the `bounds` procedure (Fig. 2): lower/upper bounds
//!   on Banzhaf values and model counts over a *partial* d-tree, using the
//!   iDNF constructions of Sec. 3.2.1 at non-trivial leaves.
//! * [`adaban`] / [`adaban_all`] — **AdaBan** (Fig. 3): anytime deterministic
//!   approximation with relative error `ε`, intertwining incremental d-tree
//!   compilation with bound refinement.
//! * [`ichiban_rank`] / [`ichiban_topk`] — **IchiBan** (Sec. 4.1): ranking and
//!   top-k of facts by Banzhaf value through interval separation, with both
//!   certain and ε-relaxed modes.
//! * [`shapley_all`] and [`critical_counts_all`] — exact Shapley values and
//!   per-size critical-set counts over the same d-trees (App. D), used to
//!   compare Banzhaf-based and Shapley-based rankings.
//!
//! The typical pipeline is: obtain a lineage [`Dnf`] (from `banzhaf-query` or
//! directly), compile or incrementally expand a [`DTree`], then run one of the
//! algorithms above.
//!
//! ```
//! use banzhaf::{exaban_all, Budget, DTree, PivotHeuristic};
//! use banzhaf_boolean::{Dnf, Var};
//!
//! // Lineage of Example 6/7 of the paper.
//! let phi = Dnf::from_clauses(vec![vec![Var(0), Var(1), Var(3)], vec![Var(0), Var(2), Var(3)]]);
//! let tree = DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
//! let result = exaban_all(&tree);
//! assert_eq!(result.model_count.to_u64(), Some(3));
//! assert_eq!(result.value(Var(1)).unwrap().to_u64(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaban;
mod aggregate;
mod bounds;
mod exaban;
mod ichiban;
mod shapley;
mod values;

pub use adaban::{adaban, adaban_all, AdaBanOptions, ApproxInterval};
pub use aggregate::{aggregate_banzhaf_all, AggregateBanzhafResult, AggregateCost};
pub use banzhaf_boolean::{AggregateKind, AggregateValue, Dnf, Var, WeightedDnf};
pub use banzhaf_dtree::{Budget, DTree, Interrupted, PivotHeuristic};
pub use bounds::{bounds_for_var, BoundQuad};
pub use exaban::{exaban_all, exaban_all_with_counts, exaban_single, model_counts, BanzhafResult};
pub use ichiban::{ichiban_rank, ichiban_topk, IchiBanOptions, Ranking, TopK};
pub use shapley::{critical_counts_all, shapley_all, ShapleyValue};
pub use values::{l1_distance_normalized, normalized_index, normalized_power};
