//! The `bounds` procedure (Fig. 2): lower/upper bounds on Banzhaf values and
//! model counts over partial d-trees.
//!
//! For trivial leaves (constants and literals) the bounds collapse to the
//! exact values; for non-trivial DNF leaves they come from the iDNF
//! constructions of Prop. 12; and inner nodes combine children bounds with
//! interval arithmetic derived from Eq. (4)–(9).

use banzhaf_arith::{Int, Natural};
use banzhaf_boolean::{lower_bound_fn, upper_bound_fn, IdnfCounts, Var};
use banzhaf_dtree::{DTree, Node, NodeId, OpKind};

/// The quadruple of bounds computed per node by the `bounds` procedure:
/// `Lb ≤ Banzhaf(φ, x) ≤ Ub` and `L# ≤ #φ ≤ U#`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundQuad {
    /// Lower bound on the Banzhaf value (signed: negated literals introduced
    /// by Shannon expansion have negative Banzhaf values in their subtree).
    pub banzhaf_lower: Int,
    /// Upper bound on the Banzhaf value.
    pub banzhaf_upper: Int,
    /// Lower bound on the model count.
    pub count_lower: Natural,
    /// Upper bound on the model count.
    pub count_upper: Natural,
}

impl BoundQuad {
    fn exact(banzhaf: Int, count: Natural) -> BoundQuad {
        BoundQuad {
            banzhaf_lower: banzhaf.clone(),
            banzhaf_upper: banzhaf,
            count_lower: count.clone(),
            count_upper: count,
        }
    }

    /// The Banzhaf bounds clamped to naturals (sound for positive lineage,
    /// whose Banzhaf values are non-negative).
    pub fn banzhaf_bounds_clamped(&self) -> (Natural, Natural) {
        let lower = if self.banzhaf_lower.is_negative() {
            Natural::zero()
        } else {
            self.banzhaf_lower.magnitude().clone()
        };
        let upper = if self.banzhaf_upper.is_negative() {
            Natural::zero()
        } else {
            self.banzhaf_upper.magnitude().clone()
        };
        (lower, upper)
    }
}

/// Multiplies a signed Banzhaf interval by a non-negative factor interval,
/// returning the resulting interval. Used for the `⊙` (factor = sibling model
/// counts) and `⊗` (factor = sibling non-model counts) combination rules.
fn mul_interval(banzhaf: (&Int, &Int), factor: (&Natural, &Natural)) -> (Int, Int) {
    let (bl, bu) = banzhaf;
    let (fl, fu) = factor;
    // factor >= 0, so: the minimum is bl*fu when bl < 0, bl*fl otherwise;
    // the maximum is bu*fu when bu > 0, bu*fl otherwise.
    let lower = if bl.is_negative() { bl.mul_natural(fu) } else { bl.mul_natural(fl) };
    let upper = if bu.is_negative() { bu.mul_natural(fl) } else { bu.mul_natural(fu) };
    (lower, upper)
}

/// Computes the bound quadruple for variable `x` over a (possibly partial)
/// d-tree, in one bottom-up pass (Fig. 2 of the paper).
///
/// `use_opt4` selects the tighter leaf bound of optimization (4) in
/// Sec. 3.2.4, which additionally exploits `Banzhaf(φ,x) = #φ − 2·#φ[x:=0]`.
pub fn bounds_for_var(tree: &DTree, x: Var, use_opt4: bool) -> BoundQuad {
    let mut quads: Vec<Option<BoundQuad>> = vec![None; tree.num_nodes()];
    for id in tree.postorder() {
        let quad = match tree.node(id) {
            Node::Leaf(dnf) => {
                if dnf.is_false() {
                    BoundQuad::exact(Int::zero(), Natural::zero())
                } else if dnf.is_true() {
                    BoundQuad::exact(Int::zero(), Natural::pow2(dnf.num_vars()))
                } else if let Some(v) = dnf.is_single_literal() {
                    let b = if v == x { Int::one() } else { Int::zero() };
                    BoundQuad::exact(b, Natural::one())
                } else if !dnf.universe().contains(x) {
                    // The leaf does not mention x: Banzhaf contribution is
                    // exactly zero, only the count bounds matter.
                    BoundQuad {
                        banzhaf_lower: Int::zero(),
                        banzhaf_upper: Int::zero(),
                        count_lower: lower_bound_fn(dnf).idnf_model_count(),
                        count_upper: upper_bound_fn(dnf).idnf_model_count(),
                    }
                } else {
                    let counts = if use_opt4 {
                        IdnfCounts::for_leaf_opt4(dnf, x)
                    } else {
                        IdnfCounts::for_leaf(dnf, x)
                    };
                    BoundQuad {
                        banzhaf_lower: counts.banzhaf_lower,
                        banzhaf_upper: counts.banzhaf_upper,
                        count_lower: counts.count_lower,
                        count_upper: counts.count_upper,
                    }
                }
            }
            Node::PosLit(v) => {
                let b = if *v == x { Int::one() } else { Int::zero() };
                BoundQuad::exact(b, Natural::one())
            }
            Node::NegLit(v) => {
                let b = if *v == x { Int::minus_one() } else { Int::zero() };
                BoundQuad::exact(b, Natural::one())
            }
            Node::Op { op, children, num_vars } => combine(*op, children, *num_vars, &quads, tree),
        };
        quads[id.index()] = Some(quad);
    }
    quads[tree.root().index()].take().expect("root bounds computed")
}

fn combine(
    op: OpKind,
    children: &[NodeId],
    num_vars: usize,
    quads: &[Option<BoundQuad>],
    tree: &DTree,
) -> BoundQuad {
    let child =
        |c: NodeId| quads[c.index()].as_ref().expect("post-order guarantees children first");
    match op {
        OpKind::IndependentAnd => {
            // Counts multiply; the Banzhaf interval of each child is scaled by
            // the product of the siblings' count intervals. Since at most one
            // child mentions x (children are variable-disjoint), summing the
            // scaled intervals keeps exactly that child's contribution.
            let mut count_lower = Natural::one();
            let mut count_upper = Natural::one();
            for &c in children {
                count_lower = count_lower.mul_ref(&child(c).count_lower);
                count_upper = count_upper.mul_ref(&child(c).count_upper);
            }
            let mut banzhaf_lower = Int::zero();
            let mut banzhaf_upper = Int::zero();
            for (i, &c) in children.iter().enumerate() {
                let q = child(c);
                if q.banzhaf_lower.is_zero() && q.banzhaf_upper.is_zero() {
                    continue;
                }
                let mut sib_lower = Natural::one();
                let mut sib_upper = Natural::one();
                for (j, &s) in children.iter().enumerate() {
                    if j != i {
                        sib_lower = sib_lower.mul_ref(&child(s).count_lower);
                        sib_upper = sib_upper.mul_ref(&child(s).count_upper);
                    }
                }
                let (lo, up) =
                    mul_interval((&q.banzhaf_lower, &q.banzhaf_upper), (&sib_lower, &sib_upper));
                banzhaf_lower += &lo;
                banzhaf_upper += &up;
            }
            BoundQuad { banzhaf_lower, banzhaf_upper, count_lower, count_upper }
        }
        OpKind::IndependentOr => {
            // Non-model counts multiply: # = 2^n − Π (2^{n_i} − #_i).
            let mut nm_lower = Natural::one(); // product of (2^{n_i} − U#_i)
            let mut nm_upper = Natural::one(); // product of (2^{n_i} − L#_i)
            for &c in children {
                let ni = tree.node(c).num_vars();
                let q = child(c);
                nm_lower = nm_lower.mul_ref(&Natural::pow2(ni).saturating_sub(&q.count_upper));
                nm_upper = nm_upper.mul_ref(&Natural::pow2(ni).saturating_sub(&q.count_lower));
            }
            let count_lower = Natural::pow2(num_vars).saturating_sub(&nm_upper);
            let count_upper = Natural::pow2(num_vars).saturating_sub(&nm_lower);
            let mut banzhaf_lower = Int::zero();
            let mut banzhaf_upper = Int::zero();
            for (i, &c) in children.iter().enumerate() {
                let q = child(c);
                if q.banzhaf_lower.is_zero() && q.banzhaf_upper.is_zero() {
                    continue;
                }
                // Sibling factor: Π_{j≠i} (2^{n_j} − #_j), bounded below by
                // using the siblings' upper counts and above by their lower
                // counts.
                let mut sib_lower = Natural::one();
                let mut sib_upper = Natural::one();
                for (j, &s) in children.iter().enumerate() {
                    if j != i {
                        let nj = tree.node(s).num_vars();
                        let sq = child(s);
                        sib_lower =
                            sib_lower.mul_ref(&Natural::pow2(nj).saturating_sub(&sq.count_upper));
                        sib_upper =
                            sib_upper.mul_ref(&Natural::pow2(nj).saturating_sub(&sq.count_lower));
                    }
                }
                let (lo, up) =
                    mul_interval((&q.banzhaf_lower, &q.banzhaf_upper), (&sib_lower, &sib_upper));
                banzhaf_lower += &lo;
                banzhaf_upper += &up;
            }
            BoundQuad { banzhaf_lower, banzhaf_upper, count_lower, count_upper }
        }
        OpKind::Exclusive => {
            let mut banzhaf_lower = Int::zero();
            let mut banzhaf_upper = Int::zero();
            let mut count_lower = Natural::zero();
            let mut count_upper = Natural::zero();
            for &c in children {
                let q = child(c);
                banzhaf_lower += &q.banzhaf_lower;
                banzhaf_upper += &q.banzhaf_upper;
                count_lower += &q.count_lower;
                count_upper += &q.count_upper;
            }
            BoundQuad { banzhaf_lower, banzhaf_upper, count_lower, count_upper }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exaban::exaban_single;
    use banzhaf_boolean::Dnf;
    use banzhaf_dtree::{Budget, PivotHeuristic};

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// Bounds on the single-leaf (uncompiled) d-tree must bracket the exact
    /// values for every variable, for a handful of functions.
    #[test]
    fn leaf_bounds_bracket_exact_values() {
        let functions = vec![
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(3)]]),
            Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]]),
            Dnf::from_clauses(vec![vec![v(0)], vec![v(1), v(2)], vec![v(2), v(3), v(4)]]),
        ];
        for phi in functions {
            let tree = DTree::from_leaf(phi.clone());
            let exact_count = phi.brute_force_model_count();
            for x in phi.universe().iter() {
                for opt4 in [false, true] {
                    let q = bounds_for_var(&tree, x, opt4);
                    let exact = phi.brute_force_banzhaf(x);
                    assert!(q.banzhaf_lower <= exact, "{phi} {x} lower");
                    assert!(exact <= q.banzhaf_upper, "{phi} {x} upper");
                    assert!(q.count_lower <= exact_count);
                    assert!(exact_count <= q.count_upper);
                }
            }
        }
    }

    /// After every incremental expansion step the bounds must still bracket
    /// the exact value, and on the complete d-tree they collapse to it
    /// (Prop. 15 and Lemma 20).
    #[test]
    fn bounds_tighten_to_exact_on_completion() {
        let phi = Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(0)],
        ]);
        let exact: Vec<(Var, Int)> = phi.brute_force_all_banzhaf();
        let mut tree = DTree::from_leaf(phi.clone());
        loop {
            for (x, expected) in &exact {
                let q = bounds_for_var(&tree, *x, true);
                assert!(
                    &q.banzhaf_lower <= expected,
                    "lower bound violated at step {}",
                    tree.expansions()
                );
                assert!(
                    expected <= &q.banzhaf_upper,
                    "upper bound violated at step {}",
                    tree.expansions()
                );
            }
            if !tree.expand_largest_leaf(PivotHeuristic::MostFrequent) {
                break;
            }
        }
        for (x, expected) in &exact {
            let q = bounds_for_var(&tree, *x, true);
            assert_eq!(&q.banzhaf_lower, expected);
            assert_eq!(&q.banzhaf_upper, expected);
        }
    }

    /// On complete d-trees the bounds equal the ExaBan output (Lemma 20).
    #[test]
    fn complete_tree_bounds_equal_exaban() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(0), v(2)]]);
        let tree =
            DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
                .unwrap();
        for x in phi.universe().iter() {
            let q = bounds_for_var(&tree, x, false);
            let (b, c) = exaban_single(&tree, x);
            assert_eq!(q.banzhaf_lower, b);
            assert_eq!(q.banzhaf_upper, b);
            assert_eq!(q.count_lower, c);
            assert_eq!(q.count_upper, c);
        }
    }

    #[test]
    fn clamping_is_sound() {
        let q = BoundQuad {
            banzhaf_lower: Int::from(-3i64),
            banzhaf_upper: Int::from(5i64),
            count_lower: Natural::zero(),
            count_upper: Natural::one(),
        };
        let (lo, up) = q.banzhaf_bounds_clamped();
        assert_eq!(lo.to_u64(), Some(0));
        assert_eq!(up.to_u64(), Some(5));
    }

    #[test]
    fn interval_multiplication_cases() {
        let cases = [(-2i64, 3i64, 1u64, 4u64), (-5, -1, 2, 3), (1, 6, 0, 2), (0, 0, 5, 9)];
        for (bl, bu, fl, fu) in cases {
            let (lo, up) = mul_interval(
                (&Int::from(bl), &Int::from(bu)),
                (&Natural::from(fl), &Natural::from(fu)),
            );
            // Exhaustively verify against all integer products in the box.
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            for b in bl..=bu {
                for f in fl..=fu {
                    min = min.min(b * f as i64);
                    max = max.max(b * f as i64);
                }
            }
            assert_eq!(lo.to_i128(), Some(min as i128));
            assert_eq!(up.to_i128(), Some(max as i128));
        }
    }
}
