//! Workload generators standing in for the paper's evaluation corpora.
//!
//! The paper evaluates on lineage extracted (via ProvSQL) from three datasets:
//! Academic, IMDB and TPC-H SF1, with 301 queries producing nearly one million
//! lineage expressions (Table 1). Those datasets are not redistributable and
//! the absolute scale is a server-class workload, so this crate generates
//! *synthetic* workloads whose lineage statistics land in the same regimes
//! (see DESIGN.md for the substitution rationale):
//!
//! * [`academic_like`], [`imdb_like`], [`tpch_like`] — databases plus query
//!   workloads evaluated through `banzhaf-query`, producing per-answer
//!   lineages with dataset-family-specific size/shape distributions (Academic:
//!   many small lineages; IMDB: many lineages with a heavy tail; TPC-H: few
//!   but large and symmetric lineages);
//! * [`LineageGenerator`] — direct random positive-DNF generation with
//!   controlled number of variables, clauses, clause width and skew, used by
//!   the micro-benchmarks and the scaling experiments (Fig. 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod lineage;
mod synthetic;

pub use corpus::{Corpus, CorpusStats, Instance};
pub use lineage::{LineageGenerator, LineageShape};
pub use synthetic::{
    academic_like, academic_workload, imdb_like, imdb_workload, tpch_like, tpch_workload,
    DatasetSpec, LiveWorkload,
};
