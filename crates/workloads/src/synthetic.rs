//! Synthetic database + query workloads standing in for Academic, IMDB and
//! TPC-H.
//!
//! Each generator builds a random database with the schema flavour of the
//! original dataset, runs a fixed query workload through the provenance-aware
//! evaluator of `banzhaf-query`, and collects one [`Instance`](crate::Instance)
//! per answer tuple. The shapes are tuned so that the three corpora differ in
//! the same qualitative way as in Table 1 of the paper:
//!
//! * **Academic-like** — many queries, small lineages (few variables/clauses);
//! * **IMDB-like** — many lineages with a skewed, heavy-tailed size
//!   distribution (a few answers join with very popular entities);
//! * **TPC-H-like** — few queries and answers, but large, symmetric lineages
//!   (Boolean-style aggregation queries over a star schema).

use crate::Corpus;
use banzhaf_db::{Database, Value};
use banzhaf_query::{evaluate, parse_program, UnionQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs of a synthetic dataset.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Relative size factor (1 = the default laptop-scale corpus).
    pub scale: usize,
    /// RNG seed, so corpora are reproducible across runs.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec { scale: 1, seed: 0xBA27AF }
    }
}

/// A synthetic database together with its named query workload, *before*
/// lineage extraction.
///
/// [`Corpus`] freezes per-answer lineages at build time; this keeps the
/// database itself, which is what the live-update benchmark (and any
/// `LiveSession`-style consumer in `banzhaf-engine`) needs — it registers
/// the queries and then mutates the database. [`LiveWorkload::corpus`]
/// recovers the frozen view.
#[derive(Clone, Debug)]
pub struct LiveWorkload {
    /// Workload name (e.g. `"Academic-like"`).
    pub name: String,
    /// The synthetic database.
    pub db: Database,
    /// The query workload, as `(name, query)` pairs.
    pub queries: Vec<(String, UnionQuery)>,
    /// Relations an update stream may meaningfully insert into or delete
    /// from: endogenous fact tables that feed the queries' joins.
    pub mutable_relations: Vec<String>,
}

impl LiveWorkload {
    /// Evaluates every query and freezes the per-answer lineages into a
    /// [`Corpus`].
    pub fn corpus(&self) -> Corpus {
        let mut corpus = Corpus::new(self.name.clone());
        for (qname, query) in &self.queries {
            let result = evaluate(query, &self.db);
            for answer in result.answers() {
                let tuple: Vec<String> = answer.tuple.iter().map(Value::to_string).collect();
                corpus.push(qname.clone(), tuple.join(","), answer.lineage.clone());
            }
        }
        corpus
    }
}

fn q(text: &str) -> UnionQuery {
    parse_program(text).expect("workload query parses")
}

/// Builds the Academic-like corpus: authors, papers, authorship, citations,
/// venues; queries about co-authorship and publication activity.
pub fn academic_like(spec: &DatasetSpec) -> Corpus {
    academic_workload(spec).corpus()
}

/// The Academic-like database and query workload, un-frozen (see
/// [`LiveWorkload`]); [`academic_like`] is its corpus view.
pub fn academic_workload(spec: &DatasetSpec) -> LiveWorkload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let authors = 30 * spec.scale;
    let papers = 40 * spec.scale;
    let venues = 6;

    let mut db = Database::new();
    db.add_relation("Author", 1);
    db.add_relation("Paper", 2); // (pid, venue)
    db.add_relation("Writes", 2); // (aid, pid)
    db.add_relation("Cites", 2); // (pid, pid)
    db.add_relation("Venue", 1);

    for a in 0..authors {
        db.insert_endogenous("Author", vec![Value::from(a as i64)]).unwrap();
    }
    for p in 0..papers {
        let venue = rng.gen_range(0..venues) as i64;
        db.insert_endogenous("Paper", vec![Value::from(p as i64), Value::from(venue)]).unwrap();
        // 1–3 authors per paper.
        let nauthors = rng.gen_range(1..=3);
        for _ in 0..nauthors {
            let a = rng.gen_range(0..authors) as i64;
            db.insert_endogenous("Writes", vec![Value::from(a), Value::from(p as i64)]).unwrap();
        }
        // 0–2 citations per paper.
        for _ in 0..rng.gen_range(0..=2) {
            let cited = rng.gen_range(0..papers) as i64;
            db.insert_endogenous("Cites", vec![Value::from(p as i64), Value::from(cited)]).unwrap();
        }
    }
    for v in 0..venues {
        db.insert_exogenous("Venue", vec![Value::from(v as i64)]).unwrap();
    }

    let queries = vec![
        // Which venues does each author publish in? (hierarchical per answer)
        ("academic_q1".into(), q("Q(A, V) :- Writes(A, P), Paper(P, V).")),
        // Authors of cited papers (non-hierarchical joins).
        ("academic_q2".into(), q("Q(A) :- Writes(A, P), Cites(P, P2), Paper(P2, V).")),
        // Co-authors.
        ("academic_q3".into(), q("Q(A, B) :- Writes(A, P), Writes(B, P), A != 0.")),
        // Papers by prolific venue 0 or venue 1 (a union).
        ("academic_q4".into(), q("Q(P) :- Paper(P, 0). Q(P) :- Paper(P, 1).")),
        // Authors publishing in venue 2 together with the author relation.
        ("academic_q5".into(), q("Q(A) :- Author(A), Writes(A, P), Paper(P, 2).")),
        // Boolean: is there a citation chain of length 2 out of venue 3?
        ("academic_q6".into(), q("Q() :- Paper(P, 3), Cites(P, P2), Cites(P2, P3).")),
    ];
    LiveWorkload {
        name: "Academic-like".into(),
        db,
        queries,
        mutable_relations: vec!["Writes".into(), "Cites".into()],
    }
}

/// Builds the IMDB-like corpus: movies, actors, directors; the popularity of
/// movies and actors is Zipf-skewed so a few answers have very large lineages.
pub fn imdb_like(spec: &DatasetSpec) -> Corpus {
    imdb_workload(spec).corpus()
}

/// The IMDB-like database and query workload, un-frozen (see
/// [`LiveWorkload`]); [`imdb_like`] is its corpus view.
pub fn imdb_workload(spec: &DatasetSpec) -> LiveWorkload {
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(1));
    let movies = 50 * spec.scale;
    let actors = 60 * spec.scale;
    let directors = 15 * spec.scale;

    let mut db = Database::new();
    db.add_relation("Movie", 2); // (mid, year)
    db.add_relation("ActsIn", 2); // (aid, mid)
    db.add_relation("Actor", 1);
    db.add_relation("Directs", 2); // (did, mid)
    db.add_relation("Genre", 2); // (mid, genre-id)

    // Skewed popularity: low-index movies/actors participate in more facts.
    let skewed = |rng: &mut StdRng, n: usize| -> i64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        ((u * u * n as f64) as usize).min(n - 1) as i64
    };

    for m in 0..movies {
        let year = 1990 + rng.gen_range(0..30) as i64;
        db.insert_endogenous("Movie", vec![Value::from(m as i64), Value::from(year)]).unwrap();
        db.insert_exogenous(
            "Genre",
            vec![Value::from(m as i64), Value::from(rng.gen_range(0..5) as i64)],
        )
        .unwrap();
    }
    for a in 0..actors {
        db.insert_endogenous("Actor", vec![Value::from(a as i64)]).unwrap();
    }
    // Casting: popular movies get many actors.
    for _ in 0..movies * 4 {
        let m = skewed(&mut rng, movies);
        let a = skewed(&mut rng, actors);
        db.insert_endogenous("ActsIn", vec![Value::from(a), Value::from(m)]).unwrap();
    }
    for _ in 0..movies {
        let d = rng.gen_range(0..directors) as i64;
        let m = skewed(&mut rng, movies);
        db.insert_endogenous("Directs", vec![Value::from(d), Value::from(m)]).unwrap();
    }

    let queries = vec![
        // Movies with their cast (per-movie lineage; popular movies are big).
        ("imdb_q1".into(), q("Q(M) :- Movie(M, Y), ActsIn(A, M), Actor(A).")),
        // Actors in recent movies.
        ("imdb_q2".into(), q("Q(A) :- Actor(A), ActsIn(A, M), Movie(M, Y), Y >= 2010.")),
        // Director–actor collaborations (non-hierarchical).
        ("imdb_q3".into(), q("Q(D, A) :- Directs(D, M), ActsIn(A, M).")),
        // Co-star pairs on the same movie.
        ("imdb_q4".into(), q("Q(A, B) :- ActsIn(A, M), ActsIn(B, M), A != 0.")),
        // Boolean: does some director work with some actor on an old movie?
        ("imdb_q5".into(), q("Q() :- Directs(D, M), ActsIn(A, M), Movie(M, Y), Y < 1995.")),
        // Union: movies that are either recent or directed by director 0.
        (
            "imdb_q6".into(),
            q("Q(M) :- Movie(M, Y), Y >= 2015. Q(M) :- Directs(0, M), Movie(M, Y)."),
        ),
    ];
    LiveWorkload {
        name: "IMDB-like".into(),
        db,
        queries,
        mutable_relations: vec!["ActsIn".into(), "Directs".into()],
    }
}

/// Builds the TPC-H-like corpus: a small star schema (suppliers, customers,
/// orders, line items, nations); queries are Boolean or low-cardinality, so
/// each answer accumulates a large, fairly symmetric lineage.
pub fn tpch_like(spec: &DatasetSpec) -> Corpus {
    tpch_workload(spec).corpus()
}

/// The TPC-H-like database and query workload, un-frozen (see
/// [`LiveWorkload`]); [`tpch_like`] is its corpus view.
pub fn tpch_workload(spec: &DatasetSpec) -> LiveWorkload {
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(2));
    // Few nations and many line items so that same-nation joins accumulate
    // large, fairly symmetric lineages — the TPC-H column of Table 1.
    let nations = 4;
    let suppliers = 10 * spec.scale;
    let customers = 15 * spec.scale;
    let orders = 30 * spec.scale;
    let lineitems = 90 * spec.scale;

    let mut db = Database::new();
    db.add_relation("Nation", 1);
    db.add_relation("Supplier", 2); // (sk, nation)
    db.add_relation("Customer", 2); // (ck, nation)
    db.add_relation("Orders", 2); // (ok, ck)
    db.add_relation("Lineitem", 3); // (ok, sk, qty)

    for n in 0..nations {
        db.insert_exogenous("Nation", vec![Value::from(n as i64)]).unwrap();
    }
    for s in 0..suppliers {
        db.insert_endogenous(
            "Supplier",
            vec![Value::from(s as i64), Value::from(rng.gen_range(0..nations) as i64)],
        )
        .unwrap();
    }
    for c in 0..customers {
        db.insert_endogenous(
            "Customer",
            vec![Value::from(c as i64), Value::from(rng.gen_range(0..nations) as i64)],
        )
        .unwrap();
    }
    for o in 0..orders {
        let c = rng.gen_range(0..customers) as i64;
        db.insert_endogenous("Orders", vec![Value::from(o as i64), Value::from(c)]).unwrap();
    }
    for _ in 0..lineitems {
        let o = rng.gen_range(0..orders) as i64;
        let s = rng.gen_range(0..suppliers) as i64;
        let qty = rng.gen_range(1..50) as i64;
        db.insert_endogenous("Lineitem", vec![Value::from(o), Value::from(s), Value::from(qty)])
            .unwrap();
    }

    let queries = vec![
        // Per-nation supplier/customer trade (few answers, large lineage).
        (
            "tpch_q1".into(),
            q("Q(N) :- Supplier(S, N), Lineitem(O, S, Qty), Orders(O, C), Customer(C, N)."),
        ),
        // Boolean: is there a large line item shipped by nation 0?
        ("tpch_q2".into(), q("Q() :- Supplier(S, 0), Lineitem(O, S, Qty), Qty >= 40.")),
        // Customers with pending large orders (per-customer lineage).
        (
            "tpch_q3".into(),
            q("Q(C) :- Customer(C, N), Orders(O, C), Lineitem(O, S, Qty), Qty >= 25."),
        ),
        // Boolean: any same-nation customer/supplier pair at all?
        (
            "tpch_q4".into(),
            q("Q() :- Customer(C, N), Supplier(S, N), Orders(O, C), Lineitem(O, S, Qty)."),
        ),
    ];
    LiveWorkload {
        name: "TPC-H-like".into(),
        db,
        queries,
        mutable_relations: vec!["Lineitem".into(), "Orders".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_deterministic() {
        let spec = DatasetSpec::default();
        for build in [academic_like, imdb_like, tpch_like] {
            let a = build(&spec);
            let b = build(&spec);
            assert!(!a.instances.is_empty(), "{} corpus is empty", a.name);
            assert_eq!(a.instances.len(), b.instances.len());
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn corpora_have_distinct_size_profiles() {
        let spec = DatasetSpec::default();
        let academic = academic_like(&spec).stats();
        let tpch = tpch_like(&spec).stats();
        // TPC-H-style lineages are on average much larger than Academic ones.
        assert!(tpch.avg_clauses > academic.avg_clauses);
        assert!(tpch.max_vars >= academic.max_vars);
        // Academic produces more distinct queries' worth of small instances.
        assert!(academic.num_lineages > 0 && tpch.num_lineages > 0);
    }

    #[test]
    fn scale_increases_corpus_size() {
        let small = academic_like(&DatasetSpec { scale: 1, seed: 3 }).stats();
        let large = academic_like(&DatasetSpec { scale: 2, seed: 3 }).stats();
        assert!(large.num_lineages >= small.num_lineages);
    }

    #[test]
    fn live_workloads_expose_mutable_endogenous_relations() {
        let spec = DatasetSpec::default();
        for build in [academic_workload, imdb_workload, tpch_workload] {
            let workload = build(&spec);
            assert!(!workload.queries.is_empty());
            assert!(!workload.mutable_relations.is_empty());
            for relation in &workload.mutable_relations {
                assert!(
                    workload.db.endogenous_facts().any(|(_, f)| f.relation() == relation),
                    "{}: mutable relation {relation} has no endogenous facts",
                    workload.name
                );
            }
            // The frozen view matches the classic generator.
            assert_eq!(workload.corpus().stats(), workload.corpus().stats());
        }
    }

    #[test]
    fn lineages_are_positive_dnfs_over_endogenous_facts() {
        let corpus = imdb_like(&DatasetSpec::default());
        for instance in corpus.instances.iter().take(50) {
            assert!(!instance.lineage.is_false() || instance.lineage.num_clauses() == 0);
            for clause in instance.lineage.clauses() {
                assert!(!clause.is_empty());
            }
        }
    }
}
