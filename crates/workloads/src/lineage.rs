//! Random positive-DNF lineage generation with controlled shape.

use banzhaf_boolean::{Dnf, Var};
use rand::Rng;

/// Shape parameters of a random lineage.
#[derive(Clone, Copy, Debug)]
pub struct LineageShape {
    /// Number of distinct variables to draw clauses from.
    pub num_vars: usize,
    /// Number of clauses.
    pub num_clauses: usize,
    /// Minimum clause width (inclusive).
    pub min_width: usize,
    /// Maximum clause width (inclusive).
    pub max_width: usize,
    /// Zipf-like skew of variable popularity: 0.0 = uniform, larger values
    /// concentrate occurrences on low-index variables (which is what join
    /// lineage over skewed foreign keys looks like, and what makes Shannon
    /// expansion productive).
    pub skew: f64,
}

impl LineageShape {
    /// A reasonable default shape: 40 variables, 25 clauses of width 2–4,
    /// mild skew.
    pub fn default_shape() -> Self {
        LineageShape { num_vars: 40, num_clauses: 25, min_width: 2, max_width: 4, skew: 0.5 }
    }
}

/// Generator of random positive DNF lineages.
#[derive(Clone, Debug)]
pub struct LineageGenerator {
    shape: LineageShape,
}

impl LineageGenerator {
    /// Creates a generator for the given shape.
    pub fn new(shape: LineageShape) -> Self {
        assert!(shape.num_vars >= 1, "need at least one variable");
        assert!(shape.min_width >= 1 && shape.min_width <= shape.max_width);
        assert!(shape.max_width <= shape.num_vars, "clause width exceeds variable count");
        LineageGenerator { shape }
    }

    /// The shape parameters.
    pub fn shape(&self) -> &LineageShape {
        &self.shape
    }

    /// Draws one variable according to the popularity skew.
    fn draw_var<R: Rng>(&self, rng: &mut R) -> Var {
        let n = self.shape.num_vars as f64;
        if self.shape.skew <= 0.0 {
            return Var(rng.gen_range(0..self.shape.num_vars as u32));
        }
        // Inverse-transform sampling of a power-law-ish distribution: index
        // proportional to u^(1+skew) concentrates mass on small indices.
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = (u.powf(1.0 + self.shape.skew) * n) as u32;
        Var(idx.min(self.shape.num_vars as u32 - 1))
    }

    /// Generates one random positive DNF with the configured shape.
    ///
    /// The universe is exactly the set of variables that occur in the clauses
    /// (as in real lineage, where every variable comes from a used fact), so
    /// the realized variable count can be smaller than `num_vars`.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Dnf {
        let mut clauses: Vec<Vec<Var>> = Vec::with_capacity(self.shape.num_clauses);
        for _ in 0..self.shape.num_clauses {
            let width = rng.gen_range(self.shape.min_width..=self.shape.max_width);
            let mut clause = Vec::with_capacity(width);
            // Rejection-sample distinct variables for the clause.
            let mut guard = 0;
            while clause.len() < width && guard < width * 50 {
                let v = self.draw_var(rng);
                if !clause.contains(&v) {
                    clause.push(v);
                }
                guard += 1;
            }
            clauses.push(clause);
        }
        Dnf::from_clauses(clauses)
    }

    /// Generates a batch of lineages.
    pub fn generate_many<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<Dnf> {
        (0..count).map(|_| self.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_lineage_respects_shape() {
        let shape =
            LineageShape { num_vars: 30, num_clauses: 12, min_width: 2, max_width: 3, skew: 0.3 };
        let generator = LineageGenerator::new(shape);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let phi = generator.generate(&mut rng);
            assert!(phi.num_clauses() <= 12);
            assert!(phi.num_vars() <= 30);
            for clause in phi.clauses() {
                assert!(clause.len() >= 2 && clause.len() <= 3);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let generator = LineageGenerator::new(LineageShape::default_shape());
        let a = generator.generate(&mut StdRng::seed_from_u64(99));
        let b = generator.generate(&mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn skew_concentrates_occurrences() {
        let mut uniform_shape = LineageShape::default_shape();
        uniform_shape.skew = 0.0;
        uniform_shape.num_clauses = 200;
        let mut skewed_shape = uniform_shape;
        skewed_shape.skew = 2.0;
        let mut rng = StdRng::seed_from_u64(5);
        let uniform = LineageGenerator::new(uniform_shape).generate(&mut rng);
        let skewed = LineageGenerator::new(skewed_shape).generate(&mut rng);
        let max_occurrence =
            |phi: &Dnf| phi.occurrence_counts().values().copied().max().unwrap_or(0);
        assert!(max_occurrence(&skewed) > max_occurrence(&uniform));
    }

    #[test]
    #[should_panic(expected = "clause width exceeds")]
    fn invalid_shape_panics() {
        LineageGenerator::new(LineageShape {
            num_vars: 2,
            num_clauses: 1,
            min_width: 1,
            max_width: 5,
            skew: 0.0,
        });
    }
}
