//! Corpora of lineage instances and their statistics (Table 1 of the paper).

use banzhaf_boolean::Dnf;

/// One problem instance: the lineage of one answer tuple of one query, the
/// unit over which the paper reports success rates and runtimes ("We define an
/// instance as the computation of the Banzhaf values for all variables in a
/// lineage of an output tuple of a query", Sec. 5.1).
#[derive(Clone, Debug)]
pub struct Instance {
    /// The query the instance belongs to.
    pub query: String,
    /// A rendering of the answer tuple (empty for Boolean queries).
    pub answer: String,
    /// The lineage DNF.
    pub lineage: Dnf,
}

/// A named collection of instances grouped by query — the unit the benchmark
/// harness sweeps over (one corpus per dataset family).
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// Corpus name (e.g. `"Academic-like"`).
    pub name: String,
    /// All instances.
    pub instances: Vec<Instance>,
}

/// Aggregate statistics of a corpus, mirroring Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusStats {
    /// Number of distinct queries.
    pub num_queries: usize,
    /// Number of lineage instances.
    pub num_lineages: usize,
    /// Average number of variables per lineage.
    pub avg_vars: f64,
    /// Maximum number of variables over all lineages.
    pub max_vars: usize,
    /// Average number of clauses per lineage.
    pub avg_clauses: f64,
    /// Maximum number of clauses over all lineages.
    pub max_clauses: usize,
}

impl Corpus {
    /// Creates an empty corpus with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Corpus { name: name.into(), instances: Vec::new() }
    }

    /// Adds an instance.
    pub fn push(&mut self, query: impl Into<String>, answer: impl Into<String>, lineage: Dnf) {
        self.instances.push(Instance { query: query.into(), answer: answer.into(), lineage });
    }

    /// The distinct query names, in first-seen order.
    pub fn query_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for instance in &self.instances {
            if !names.contains(&instance.query.as_str()) {
                names.push(&instance.query);
            }
        }
        names
    }

    /// Instances belonging to a given query.
    pub fn instances_of(&self, query: &str) -> impl Iterator<Item = &Instance> + '_ {
        let query = query.to_owned();
        self.instances.iter().filter(move |i| i.query == query)
    }

    /// Computes the Table-1-style statistics of the corpus.
    pub fn stats(&self) -> CorpusStats {
        let num_lineages = self.instances.len();
        let mut total_vars = 0usize;
        let mut total_clauses = 0usize;
        let mut max_vars = 0usize;
        let mut max_clauses = 0usize;
        for instance in &self.instances {
            let vars = instance.lineage.num_vars();
            let clauses = instance.lineage.num_clauses();
            total_vars += vars;
            total_clauses += clauses;
            max_vars = max_vars.max(vars);
            max_clauses = max_clauses.max(clauses);
        }
        let denom = num_lineages.max(1) as f64;
        CorpusStats {
            num_queries: self.query_names().len(),
            num_lineages,
            avg_vars: total_vars as f64 / denom,
            max_vars,
            avg_clauses: total_clauses as f64 / denom,
            max_clauses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_boolean::Var;

    #[test]
    fn stats_over_instances() {
        let mut corpus = Corpus::new("test");
        corpus.push("q1", "t1", Dnf::from_clauses(vec![vec![Var(0), Var(1)]]));
        corpus.push("q1", "t2", Dnf::from_clauses(vec![vec![Var(0)], vec![Var(1)], vec![Var(2)]]));
        corpus.push("q2", "", Dnf::from_clauses(vec![vec![Var(5), Var(6), Var(7)]]));
        let stats = corpus.stats();
        assert_eq!(stats.num_queries, 2);
        assert_eq!(stats.num_lineages, 3);
        assert_eq!(stats.max_vars, 3);
        assert_eq!(stats.max_clauses, 3);
        assert!((stats.avg_vars - (2.0 + 3.0 + 3.0) / 3.0).abs() < 1e-12);
        assert_eq!(corpus.instances_of("q1").count(), 2);
        assert_eq!(corpus.query_names(), vec!["q1", "q2"]);
    }

    #[test]
    fn empty_corpus_stats() {
        let corpus = Corpus::new("empty");
        let stats = corpus.stats();
        assert_eq!(stats.num_lineages, 0);
        assert_eq!(stats.avg_vars, 0.0);
    }
}
