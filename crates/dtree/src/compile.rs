//! Leaf expansion and full compilation.

use crate::{Budget, DTree, Interrupted, Node, NodeId, OpKind};
use banzhaf_boolean::{independent_components, Dnf, Factored, Var};

/// Heuristic for choosing the Shannon-expansion pivot variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PivotHeuristic {
    /// Pick the variable occurring in the most clauses (the paper's default,
    /// Sec. 3.1). Ties are broken by the smallest variable index.
    MostFrequent,
    /// Pick the used variable with the smallest index. Only sensible as an
    /// ablation baseline showing the value of the frequency heuristic.
    FirstVariable,
}

impl PivotHeuristic {
    fn pick(self, phi: &Dnf) -> Option<Var> {
        match self {
            PivotHeuristic::MostFrequent => phi.most_frequent_var(),
            PivotHeuristic::FirstVariable => phi.first_var(),
        }
    }
}

impl DTree {
    /// Compiles a function into a *complete* d-tree (every leaf a constant or
    /// literal) by repeatedly expanding non-trivial leaves.
    ///
    /// One budget step is consumed per expansion; compilation of
    /// non-hierarchical lineage can take exponentially many Shannon steps, so
    /// callers that need a timeout must pass a bounded budget.
    pub fn compile_full(
        phi: Dnf,
        heuristic: PivotHeuristic,
        budget: &Budget,
    ) -> Result<DTree, Interrupted> {
        let mut tree = DTree::from_leaf(phi);
        tree.expand_to_completion(heuristic, budget)?;
        Ok(tree)
    }

    /// Expands non-trivial leaves until the tree is complete or the budget is
    /// exhausted.
    pub fn expand_to_completion(
        &mut self,
        heuristic: PivotHeuristic,
        budget: &Budget,
    ) -> Result<(), Interrupted> {
        // Maintain an explicit worklist of candidate leaves; expansion only
        // appends nodes, so newly created leaves are pushed as they appear.
        let mut worklist = self.non_trivial_leaves();
        while let Some(id) = worklist.pop() {
            if !self.node(id).is_non_trivial_leaf() {
                continue;
            }
            budget.step()?;
            let created = self.expand_leaf(id, heuristic);
            for c in created {
                if self.node(c).is_non_trivial_leaf() {
                    worklist.push(c);
                }
            }
        }
        Ok(())
    }

    /// Expands the largest non-trivial leaf by one decomposition step.
    /// Returns `false` if the tree is already complete.
    ///
    /// This is the incremental entry point used by `AdaBan` (Fig. 3): one call
    /// corresponds to one "pick a non-trivial leaf ψ ... replace ψ" step.
    pub fn expand_largest_leaf(&mut self, heuristic: PivotHeuristic) -> bool {
        match self.largest_non_trivial_leaf() {
            Some(id) => {
                self.expand_leaf(id, heuristic);
                true
            }
            None => false,
        }
    }

    /// Expands the given non-trivial leaf by exactly one decomposition step
    /// and returns the ids of the newly created child leaves.
    ///
    /// The decomposition order follows Sec. 3.1 of the paper:
    /// 1. if some variable occurs in every clause, factor it out (⊙);
    /// 2. otherwise, if the clause graph is disconnected, split into
    ///    independent components (⊗);
    /// 3. otherwise, Shannon-expand on the pivot chosen by `heuristic` (⊕).
    ///
    /// # Panics
    /// Panics if `id` is not a non-trivial leaf.
    pub fn expand_leaf(&mut self, id: NodeId, heuristic: PivotHeuristic) -> Vec<NodeId> {
        // Take the leaf's DNF by moving it out of the arena (the slot is
        // overwritten below on every path), avoiding a clone of what can be a
        // large function on the hot compile path.
        let phi = match self.take(id) {
            Node::Leaf(dnf) => dnf,
            other => panic!("expand_leaf called on a non-leaf node {other:?}"),
        };
        assert!(
            !phi.is_constant() && phi.is_single_literal().is_none(),
            "expand_leaf called on a trivial leaf"
        );
        self.bump_expansions();
        let num_vars = phi.num_vars();

        // Step 1: factor out variables common to all clauses: φ = (⋀ common) ∧ rest.
        if let Some(Factored { common, rest }) = Factored::factor(&phi) {
            let first_new = self.num_nodes();
            let mut children = Vec::with_capacity(common.len() + 1);
            for v in common.iter() {
                children.push(self.push(Node::PosLit(v)));
            }
            // A rest of `true` over an empty universe is the neutral element
            // of ⊙ and can be dropped entirely.
            if !(rest.is_true() && rest.num_vars() == 0) {
                children.push(self.push(Node::Leaf(rest)));
            }
            // The created ids are exactly the appended arena tail, so they can
            // be recovered without cloning the children vector.
            let created = self.appended_since(first_new);
            if children.len() == 1 {
                // Single child: splice it directly into place of the leaf.
                let only = self.node(children[0]).clone();
                self.replace(id, only);
            } else {
                self.replace(id, Node::Op { op: OpKind::IndependentAnd, children, num_vars });
            }
            return created;
        }

        // Step 2: independence partitioning (⊗ over connected components).
        if let Some(components) = independent_components(&phi) {
            let first_new = self.num_nodes();
            let children: Vec<NodeId> =
                components.into_iter().map(|c| self.push(Node::Leaf(c))).collect();
            let created = self.appended_since(first_new);
            self.replace(id, Node::Op { op: OpKind::IndependentOr, children, num_vars });
            return created;
        }

        // Step 3: Shannon expansion φ = (y ⊙ φ[y:=1]) ⊕ (¬y ⊙ φ[y:=0]).
        let pivot =
            heuristic.pick(&phi).expect("a non-trivial leaf has at least one used variable");
        let pos_cof = phi.condition(pivot, true);
        let neg_cof = phi.condition(pivot, false);

        let pos_lit = self.push(Node::PosLit(pivot));
        let pos_leaf = self.push(Node::Leaf(pos_cof));
        let pos_branch = self.push(Node::Op {
            op: OpKind::IndependentAnd,
            children: vec![pos_lit, pos_leaf],
            num_vars,
        });

        let neg_lit = self.push(Node::NegLit(pivot));
        let neg_leaf = self.push(Node::Leaf(neg_cof));
        let neg_branch = self.push(Node::Op {
            op: OpKind::IndependentAnd,
            children: vec![neg_lit, neg_leaf],
            num_vars,
        });

        self.replace(
            id,
            Node::Op { op: OpKind::Exclusive, children: vec![pos_branch, neg_branch], num_vars },
        );
        vec![pos_leaf, neg_leaf]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_boolean::VarSet;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn assert_structure_sound(tree: &DTree) {
        // Every ⊙/⊗ node's num_vars is the sum of its children's; every ⊕
        // node's children have the same num_vars as the node itself.
        for id in tree.preorder() {
            if let Node::Op { op, children, num_vars } = tree.node(id) {
                assert!(!children.is_empty());
                match op {
                    OpKind::IndependentAnd | OpKind::IndependentOr => {
                        let sum: usize = children.iter().map(|&c| tree.node(c).num_vars()).sum();
                        assert_eq!(sum, *num_vars, "independent node var count mismatch");
                    }
                    OpKind::Exclusive => {
                        for &c in children {
                            assert_eq!(tree.node(c).num_vars(), *num_vars);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn example9_compiles_by_factoring() {
        // (x ∧ y) ∨ (x ∧ z) = x ⊙ (y ⊗ z): no Shannon expansion needed.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        let t =
            DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        assert!(t.is_complete());
        let s = t.stats();
        assert_eq!(s.exclusive, 0, "hierarchical-style lineage needs no Shannon step");
        assert!(s.independent_and >= 1);
        assert!(s.independent_or >= 1);
        assert_structure_sound(&t);
    }

    #[test]
    fn non_hierarchical_lineage_needs_shannon() {
        // (x0 ∧ x1) ∨ (x1 ∧ x2) ∨ (x2 ∧ x3): connected, no common variable.
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(2), v(3)]]);
        let t =
            DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        assert!(t.is_complete());
        assert!(t.stats().exclusive >= 1);
        assert_structure_sound(&t);
    }

    #[test]
    fn single_clause_factors_to_literals() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1), v(2)]]);
        let t =
            DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        assert!(t.is_complete());
        let s = t.stats();
        assert_eq!(s.exclusive, 0);
        assert_eq!(s.independent_and, 1);
        assert_eq!(s.trivial_leaves, 3);
        assert_structure_sound(&t);
    }

    #[test]
    fn unused_universe_variables_survive_compilation() {
        let phi = Dnf::from_clauses_with_universe(
            vec![vec![v(0), v(1)], vec![v(1), v(2)]],
            VarSet::from_iter([v(0), v(1), v(2), v(3), v(4)]),
        );
        let t =
            DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        assert!(t.is_complete());
        assert_eq!(t.num_vars(), 5);
        assert_structure_sound(&t);
    }

    #[test]
    fn budget_interrupts_compilation() {
        // A function whose compilation requires several Shannon expansions.
        let clauses: Vec<Vec<Var>> =
            (0..12).map(|i| vec![v(i), v((i + 1) % 12), v((i + 5) % 12)]).collect();
        let phi = Dnf::from_clauses(clauses);
        let err =
            DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::with_max_steps(2));
        assert_eq!(err.unwrap_err(), Interrupted);
    }

    #[test]
    fn incremental_expansion_reaches_completion() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)], vec![v(0), v(2)]]);
        let mut t = DTree::from_leaf(phi);
        let mut steps = 0;
        while t.expand_largest_leaf(PivotHeuristic::MostFrequent) {
            steps += 1;
            assert!(steps < 1000, "expansion must terminate");
        }
        assert!(t.is_complete());
        assert_eq!(t.expansions(), steps);
        assert_structure_sound(&t);
    }

    #[test]
    fn both_heuristics_produce_complete_trees() {
        let phi = Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(0)],
        ]);
        for h in [PivotHeuristic::MostFrequent, PivotHeuristic::FirstVariable] {
            let t = DTree::compile_full(phi.clone(), h, &Budget::unlimited()).unwrap();
            assert!(t.is_complete());
            assert_structure_sound(&t);
        }
    }

    #[test]
    #[should_panic(expected = "trivial leaf")]
    fn expanding_trivial_leaf_panics() {
        let mut t = DTree::from_leaf(Dnf::variable(v(0)));
        t.expand_leaf(NodeId(0), PivotHeuristic::MostFrequent);
    }
}
