//! Decomposition trees (d-trees) for positive DNF lineage.
//!
//! A *d-tree* (Def. 8 of the paper, originally from the anytime approximation
//! framework for probabilistic databases) represents a Boolean function as a
//! tree whose inner nodes are logical connectives annotated with structural
//! information:
//!
//! * `⊗` — disjunction of *independent* children (disjoint variable sets),
//! * `⊙` — conjunction of *independent* children,
//! * `⊕` — disjunction of *mutually exclusive* children over the same
//!   variables (produced by Shannon expansion).
//!
//! Leaves are positive DNF functions; a d-tree is *complete* when every leaf
//! is a constant or a literal. `ExaBan` requires a complete d-tree, while
//! `AdaBan` interleaves partial compilation with bound computation, so the
//! compiler here exposes both a one-shot [`DTree::compile_full`] and an
//! incremental [`DTree::expand_leaf`] / [`DTree::expand_largest_leaf`] API.
//!
//! # Example
//!
//! ```
//! use banzhaf_boolean::{Dnf, Var};
//! use banzhaf_dtree::{Budget, DTree, PivotHeuristic};
//!
//! // Example 9 of the paper: (x ∧ y) ∨ (x ∧ z).
//! let phi = Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(0), Var(2)]]);
//! let tree = DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
//! assert!(tree.is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod compile;
mod node;
mod tree;

pub use budget::{Budget, Interrupted};
pub use compile::PivotHeuristic;
pub use node::{Node, NodeId, OpKind};
pub use tree::DTree;
