//! Cooperative computation budgets (deadlines and step limits).

use std::fmt;
use std::time::{Duration, Instant};

/// Error returned when a computation exceeds its [`Budget`].
///
/// The paper's experiments impose a one-hour timeout per instance; this
/// reproduction enforces timeouts cooperatively — every potentially
/// exponential loop checks its budget and bails out with `Interrupted`,
/// which the benchmark harness records as a failed instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interrupted;

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "computation exceeded its budget (deadline or step limit)")
    }
}

impl std::error::Error for Interrupted {}

/// A cooperative budget: an optional wall-clock deadline and an optional cap
/// on the number of "steps" (decomposition/expansion operations).
///
/// Budgets are cheap to clone and are checked at the granularity of
/// decomposition steps, so a `check` call costs an `Instant::now` only every
/// few hundred steps.
#[derive(Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: std::cell::Cell<u64>,
    /// Check the clock only every `CLOCK_PERIOD` steps to keep overhead low.
    since_clock: std::cell::Cell<u32>,
}

const CLOCK_PERIOD: u32 = 64;

impl Budget {
    /// A budget that never interrupts.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            max_steps: None,
            steps: std::cell::Cell::new(0),
            since_clock: std::cell::Cell::new(0),
        }
    }

    /// A budget limited by wall-clock time from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + timeout),
            max_steps: None,
            steps: std::cell::Cell::new(0),
            since_clock: std::cell::Cell::new(0),
        }
    }

    /// A budget limited by a number of decomposition steps.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Budget {
            deadline: None,
            max_steps: Some(max_steps),
            steps: std::cell::Cell::new(0),
            since_clock: std::cell::Cell::new(0),
        }
    }

    /// A budget with both a deadline and a step cap.
    pub fn new(timeout: Option<Duration>, max_steps: Option<u64>) -> Self {
        Budget {
            deadline: timeout.map(|t| Instant::now() + t),
            max_steps,
            steps: std::cell::Cell::new(0),
            since_clock: std::cell::Cell::new(0),
        }
    }

    /// Number of steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps.get()
    }

    /// Records one step and returns `Err(Interrupted)` if the budget is
    /// exhausted.
    pub fn step(&self) -> Result<(), Interrupted> {
        let s = self.steps.get() + 1;
        self.steps.set(s);
        if let Some(max) = self.max_steps {
            if s > max {
                return Err(Interrupted);
            }
        }
        if self.deadline.is_some() {
            let since = self.since_clock.get() + 1;
            if since >= CLOCK_PERIOD {
                self.since_clock.set(0);
                self.check_deadline()?;
            } else {
                self.since_clock.set(since);
            }
        }
        Ok(())
    }

    /// Checks only the wall-clock deadline (unconditionally).
    pub fn check_deadline(&self) -> Result<(), Interrupted> {
        match self.deadline {
            Some(d) if Instant::now() > d => Err(Interrupted),
            _ => Ok(()),
        }
    }

    /// `true` iff the budget is already exhausted.
    pub fn exhausted(&self) -> bool {
        if let Some(max) = self.max_steps {
            if self.steps.get() >= max {
                return true;
            }
        }
        self.check_deadline().is_err()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.step().is_ok());
        }
        assert_eq!(b.steps_used(), 10_000);
        assert!(!b.exhausted());
    }

    #[test]
    fn step_cap_interrupts() {
        let b = Budget::with_max_steps(5);
        for _ in 0..5 {
            assert!(b.step().is_ok());
        }
        assert_eq!(b.step(), Err(Interrupted));
        assert!(b.exhausted());
    }

    #[test]
    fn elapsed_deadline_interrupts() {
        let b = Budget::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.check_deadline().is_err());
        assert!(b.exhausted());
        // step() notices the deadline within one clock period.
        let mut interrupted = false;
        for _ in 0..200 {
            if b.step().is_err() {
                interrupted = true;
                break;
            }
        }
        assert!(interrupted);
    }

    #[test]
    fn combined_budget() {
        let b = Budget::new(Some(Duration::from_secs(3600)), Some(3));
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_err());
    }
}
