//! Cooperative computation budgets (deadlines and step limits).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Error returned when a computation exceeds its [`Budget`].
///
/// The paper's experiments impose a one-hour timeout per instance; this
/// reproduction enforces timeouts cooperatively — every potentially
/// exponential loop checks its budget and bails out with `Interrupted`,
/// which the benchmark harness records as a failed instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interrupted;

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "computation exceeded its budget (deadline or step limit)")
    }
}

impl std::error::Error for Interrupted {}

/// A cooperative budget: an optional wall-clock deadline and an optional cap
/// on the number of "steps" (decomposition/expansion operations).
///
/// The counters are atomics, so one budget can be **shared by reference
/// across worker threads**: when a batch of parallel attributions runs under
/// a single deadline or step cap, every worker charges the same counters and
/// all of them observe exhaustion together — the cooperative interruption
/// the sequential path has always used extends to fork-join execution with
/// no extra machinery. All atomic traffic is `Relaxed`; the budget carries no
/// data other threads need to observe in order, it only gates progress.
///
/// Budgets are cheap to clone (a clone snapshots the current counters and
/// proceeds independently) and are checked at the granularity of
/// decomposition steps, so a `check` call costs an `Instant::now` only every
/// few hundred steps per thread.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: AtomicU64,
    /// Check the clock only every `CLOCK_PERIOD` steps to keep overhead low.
    since_clock: AtomicU32,
    /// Cooperative cancellation: once set, `step()` reports `Interrupted`
    /// within one clock period on every thread charging this budget.
    cancelled: AtomicBool,
}

const CLOCK_PERIOD: u32 = 64;

impl Budget {
    fn with_counters(deadline: Option<Instant>, max_steps: Option<u64>) -> Self {
        Budget {
            deadline,
            max_steps,
            steps: AtomicU64::new(0),
            since_clock: AtomicU32::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// A budget that never interrupts.
    pub fn unlimited() -> Self {
        Budget::with_counters(None, None)
    }

    /// A budget limited by wall-clock time from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget::with_counters(Some(Instant::now() + timeout), None)
    }

    /// A budget limited by a number of decomposition steps.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Budget::with_counters(None, Some(max_steps))
    }

    /// A budget with both a deadline and a step cap.
    pub fn new(timeout: Option<Duration>, max_steps: Option<u64>) -> Self {
        Budget::with_counters(timeout.map(|t| Instant::now() + t), max_steps)
    }

    /// Number of steps consumed so far (across all threads charging this
    /// budget).
    pub fn steps_used(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Cancels the computation charging this budget: every thread observes
    /// `Interrupted` from [`Budget::step`] within one clock period.
    ///
    /// This is how an external controller (e.g. the async serving layer)
    /// interrupts an in-flight attribution without any backend cooperation
    /// beyond the budget checks the backends already perform. Cancellation is
    /// sticky and shared by reference; a [`Budget::clone`] snapshots the flag
    /// but does not stay linked to later cancellations of the original.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` iff [`Budget::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Records one step and returns `Err(Interrupted)` if the budget is
    /// exhausted.
    pub fn step(&self) -> Result<(), Interrupted> {
        let s = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_steps {
            if s > max {
                return Err(Interrupted);
            }
        }
        // Racing resets may make some threads check the clock a little
        // early or late; the period only bounds the *amortized* clock
        // cost, so approximate counting is fine.
        let since = self.since_clock.fetch_add(1, Ordering::Relaxed) + 1;
        if since >= CLOCK_PERIOD {
            self.since_clock.store(0, Ordering::Relaxed);
            if self.is_cancelled() {
                return Err(Interrupted);
            }
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Records `n` steps at once — equivalent to `n` calls to
    /// [`Budget::step`] but with one atomic update and at most one clock
    /// check. For work whose natural unit is a batch (e.g. one refinement
    /// round over a cell) rather than a single decomposition.
    pub fn charge(&self, n: u64) -> Result<(), Interrupted> {
        let s = self.steps.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.max_steps {
            if s > max {
                return Err(Interrupted);
            }
        }
        let bump = n.min(u64::from(u32::MAX)) as u32;
        let since = self.since_clock.fetch_add(bump, Ordering::Relaxed).saturating_add(bump);
        if since >= CLOCK_PERIOD {
            self.since_clock.store(0, Ordering::Relaxed);
            if self.is_cancelled() {
                return Err(Interrupted);
            }
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Wall-clock time left before the deadline (`None` if the budget has no
    /// deadline; zero once the deadline has passed).
    ///
    /// This is what lets a degradation ladder hand the *remainder* of an
    /// exhausted request budget to a cheaper fallback rung instead of
    /// discarding the request outright.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Checks only the wall-clock deadline (unconditionally).
    pub fn check_deadline(&self) -> Result<(), Interrupted> {
        match self.deadline {
            Some(d) if Instant::now() > d => Err(Interrupted),
            _ => Ok(()),
        }
    }

    /// `true` iff the budget is already exhausted (or cancelled).
    pub fn exhausted(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        if let Some(max) = self.max_steps {
            if self.steps_used() >= max {
                return true;
            }
        }
        self.check_deadline().is_err()
    }
}

impl Clone for Budget {
    /// Snapshots the budget: the clone shares the deadline and caps but
    /// counts its further steps independently.
    fn clone(&self) -> Self {
        Budget {
            deadline: self.deadline,
            max_steps: self.max_steps,
            steps: AtomicU64::new(self.steps_used()),
            since_clock: AtomicU32::new(self.since_clock.load(Ordering::Relaxed)),
            cancelled: AtomicBool::new(self.is_cancelled()),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.step().is_ok());
        }
        assert_eq!(b.steps_used(), 10_000);
        assert!(!b.exhausted());
    }

    #[test]
    fn step_cap_interrupts() {
        let b = Budget::with_max_steps(5);
        for _ in 0..5 {
            assert!(b.step().is_ok());
        }
        assert_eq!(b.step(), Err(Interrupted));
        assert!(b.exhausted());
    }

    #[test]
    fn elapsed_deadline_interrupts() {
        let b = Budget::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.check_deadline().is_err());
        assert!(b.exhausted());
        // step() notices the deadline within one clock period.
        let mut interrupted = false;
        for _ in 0..200 {
            if b.step().is_err() {
                interrupted = true;
                break;
            }
        }
        assert!(interrupted);
    }

    #[test]
    fn lump_charges_respect_the_step_cap() {
        let b = Budget::with_max_steps(100);
        assert!(b.charge(60).is_ok());
        assert!(b.charge(40).is_ok());
        assert_eq!(b.charge(1), Err(Interrupted));
        assert_eq!(b.steps_used(), 101);
        // Lump charges observe cancellation like unit steps do.
        let c = Budget::unlimited();
        c.cancel();
        assert_eq!(c.charge(u64::from(CLOCK_PERIOD)), Err(Interrupted));
    }

    #[test]
    fn combined_budget() {
        let b = Budget::new(Some(Duration::from_secs(3600)), Some(3));
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_err());
    }

    #[test]
    fn clone_snapshots_consumed_steps() {
        let b = Budget::with_max_steps(4);
        b.step().unwrap();
        b.step().unwrap();
        let c = b.clone();
        assert_eq!(c.steps_used(), 2);
        // The clones count independently from the snapshot onward.
        assert!(b.step().is_ok());
        assert!(b.step().is_ok());
        assert!(b.step().is_err());
        assert!(c.step().is_ok());
        assert!(c.step().is_ok());
        assert!(c.step().is_err());
    }

    #[test]
    fn shared_step_cap_interrupts_all_workers() {
        // Four threads hammer one shared budget; the cap is global, so the
        // total number of successful steps across every worker is max_steps.
        let b = Budget::with_max_steps(1_000);
        let successes = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while b.step().is_ok() {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(successes.load(Ordering::Relaxed), 1_000);
        assert!(b.exhausted());
    }

    #[test]
    fn cancellation_interrupts_within_one_clock_period() {
        let b = Budget::unlimited();
        assert!(!b.is_cancelled() && !b.exhausted());
        b.cancel();
        assert!(b.is_cancelled() && b.exhausted());
        let mut interrupted = false;
        for _ in 0..=CLOCK_PERIOD {
            if b.step().is_err() {
                interrupted = true;
                break;
            }
        }
        assert!(interrupted, "step() must observe cancellation within one clock period");
    }

    #[test]
    fn cancellation_interrupts_all_workers_sharing_the_budget() {
        let b = Budget::unlimited();
        let interrupted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| loop {
                    if b.step().is_err() {
                        interrupted.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                });
            }
            b.cancel();
        });
        assert_eq!(interrupted.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn clone_snapshots_the_cancellation_flag() {
        let b = Budget::unlimited();
        let before = b.clone();
        b.cancel();
        let after = b.clone();
        assert!(!before.is_cancelled(), "clones are snapshots, not linked");
        assert!(after.is_cancelled());
    }

    #[test]
    fn shared_deadline_interrupts_all_workers() {
        let b = Budget::with_timeout(Duration::from_millis(5));
        let interrupted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| loop {
                    if b.step().is_err() {
                        interrupted.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    std::hint::spin_loop();
                });
            }
        });
        // Every worker observed the shared deadline.
        assert_eq!(interrupted.load(Ordering::Relaxed), 3);
    }
}
