//! The d-tree arena.

use crate::{Node, NodeId, OpKind};
use banzhaf_boolean::{Dnf, Var};

/// A (possibly partial) decomposition tree for a positive DNF function.
///
/// Nodes live in an arena indexed by [`NodeId`]; incremental expansion
/// replaces a leaf node in place with an inner node whose children are
/// appended to the arena, so node ids stay stable across expansions — which is
/// what lets `AdaBan` reuse the partial d-tree built while approximating one
/// variable when it moves on to the next variable (optimization (3) of
/// Sec. 3.2.4).
#[derive(Clone, Debug)]
pub struct DTree {
    nodes: Vec<Node>,
    root: NodeId,
    expansions: u64,
}

impl DTree {
    /// Creates the trivial d-tree whose single leaf is the whole function.
    pub fn from_leaf(phi: Dnf) -> Self {
        DTree { nodes: vec![Node::Leaf(phi)], root: NodeId(0), expansions: 0 }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the arena.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf-expansion steps performed so far.
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    pub(crate) fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    pub(crate) fn replace(&mut self, id: NodeId, node: Node) {
        self.nodes[id.index()] = node;
    }

    /// Moves the node out of the arena, leaving a cheap placeholder behind.
    /// The caller must `replace` the slot before the tree is used again; the
    /// expansion path does exactly that, which lets it take a leaf's DNF
    /// without cloning it.
    pub(crate) fn take(&mut self, id: NodeId) -> Node {
        std::mem::replace(
            &mut self.nodes[id.index()],
            Node::Leaf(Dnf::constant_false(banzhaf_boolean::VarSet::empty())),
        )
    }

    pub(crate) fn bump_expansions(&mut self) {
        self.expansions += 1;
    }

    /// Ids of the nodes appended to the arena since it had `first` nodes —
    /// pushes are strictly sequential, so this is the contiguous tail range.
    pub(crate) fn appended_since(&self, first: usize) -> Vec<NodeId> {
        (first..self.nodes.len()).map(|i| NodeId(i as u32)).collect()
    }

    /// Ids of all leaves that are neither constants nor literals; these are
    /// the candidates for further decomposition.
    pub fn non_trivial_leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|id| self.node(*id).is_non_trivial_leaf() && Self::is_reachable(*id))
            .collect()
    }

    /// The non-trivial leaf whose DNF has the largest size, if any.
    ///
    /// `AdaBan` expands this leaf next: the largest leaf is the one whose
    /// iDNF bounds are typically loosest, so decomposing it tightens the
    /// overall approximation interval the most.
    pub fn largest_non_trivial_leaf(&self) -> Option<NodeId> {
        self.non_trivial_leaves().into_iter().max_by_key(|id| match self.node(*id) {
            Node::Leaf(dnf) => (dnf.size(), dnf.num_clauses()),
            _ => (0, 0),
        })
    }

    /// `true` iff the d-tree is complete: every reachable leaf is a constant
    /// or a literal.
    pub fn is_complete(&self) -> bool {
        self.non_trivial_leaves().is_empty()
    }

    /// `true` iff `id` is reachable from the root. Replaced leaves leave no
    /// orphans behind (we replace in place), but defensive filtering keeps the
    /// invariant obvious.
    fn is_reachable(id: NodeId) -> bool {
        // All nodes in the arena are reachable by construction: expansion
        // replaces a node in place and only appends children.
        let _ = id;
        true
    }

    /// Nodes in post-order (children before parents), computed iteratively so
    /// that very deep trees (Shannon chains over thousands of variables) do
    /// not overflow the stack.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<(NodeId, bool)> = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
                continue;
            }
            stack.push((id, true));
            if let Node::Op { children, .. } = self.node(id) {
                for &c in children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Generic bottom-up combine: evaluates `f` at every node in post-order
    /// and returns the per-node values indexed by [`NodeId::index`].
    ///
    /// The closure receives the node id, the node itself, and the slice of
    /// values computed so far — children are always finished before their
    /// parent, so `values[child.index()]` is valid inside `f`. This is the
    /// propagation skeleton shared by model counting and the aggregate-valued
    /// passes: the semiring (counts, weighted sums, min/max with ±∞
    /// identities) lives entirely in the closure.
    pub fn fold_postorder<T: Clone + Default>(
        &self,
        mut f: impl FnMut(NodeId, &Node, &[T]) -> T,
    ) -> Vec<T> {
        let mut values = vec![T::default(); self.num_nodes()];
        for id in self.postorder() {
            values[id.index()] = f(id, self.node(id), &values);
        }
        values
    }

    /// Nodes in pre-order (parents before children), computed iteratively.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<NodeId> = vec![self.root];
        while let Some(id) = stack.pop() {
            order.push(id);
            if let Node::Op { children, .. } = self.node(id) {
                for &c in children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        order
    }

    /// `true` iff the subtree rooted at `id` mentions variable `x`.
    pub fn subtree_contains_var(&self, id: NodeId, x: Var) -> bool {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.node(n) {
                Node::Leaf(dnf) => {
                    if dnf.universe().contains(x) {
                        return true;
                    }
                }
                Node::PosLit(v) | Node::NegLit(v) => {
                    if *v == x {
                        return true;
                    }
                }
                Node::Op { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        false
    }

    /// Renders the tree as an indented multi-line string (for debugging and
    /// the examples).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        while let Some((id, depth)) = stack.pop() {
            let indent = "  ".repeat(depth);
            match self.node(id) {
                Node::Leaf(dnf) => writeln!(out, "{indent}leaf {dnf}").expect("string write"),
                Node::PosLit(v) => writeln!(out, "{indent}{v}").expect("string write"),
                Node::NegLit(v) => writeln!(out, "{indent}¬{v}").expect("string write"),
                Node::Op { op, children, num_vars } => {
                    writeln!(out, "{indent}{op} [{num_vars} vars]").expect("string write");
                    for &c in children.iter().rev() {
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        out
    }

    /// Total number of variables of the represented function.
    pub fn num_vars(&self) -> usize {
        self.node(self.root).num_vars()
    }

    /// Statistics about the current shape of the tree.
    pub fn stats(&self) -> DTreeStats {
        let mut stats = DTreeStats::default();
        for id in self.preorder() {
            match self.node(id) {
                Node::Leaf(dnf) => {
                    stats.leaves += 1;
                    if dnf.is_constant() || dnf.is_single_literal().is_some() {
                        stats.trivial_leaves += 1;
                    } else {
                        stats.pending_leaf_size += dnf.size();
                    }
                }
                Node::PosLit(_) | Node::NegLit(_) => {
                    stats.leaves += 1;
                    stats.trivial_leaves += 1;
                }
                Node::Op { op, .. } => match op {
                    OpKind::IndependentOr => stats.independent_or += 1,
                    OpKind::IndependentAnd => stats.independent_and += 1,
                    OpKind::Exclusive => stats.exclusive += 1,
                },
            }
        }
        stats.expansions = self.expansions;
        stats
    }
}

/// Shape statistics of a d-tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DTreeStats {
    /// Number of leaf nodes (trivial or not).
    pub leaves: usize,
    /// Number of leaves that are constants or literals.
    pub trivial_leaves: usize,
    /// Total DNF size of the leaves still awaiting decomposition.
    pub pending_leaf_size: usize,
    /// Number of `⊗` nodes.
    pub independent_or: usize,
    /// Number of `⊙` nodes.
    pub independent_and: usize,
    /// Number of `⊕` (Shannon) nodes.
    pub exclusive: usize,
    /// Number of expansion steps performed.
    pub expansions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, PivotHeuristic};

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn from_leaf_basics() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        let t = DTree::from_leaf(phi);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_vars(), 3);
        assert!(!t.is_complete());
        assert_eq!(t.non_trivial_leaves(), vec![NodeId(0)]);
        assert!(t.subtree_contains_var(t.root(), v(2)));
        assert!(!t.subtree_contains_var(t.root(), v(9)));
    }

    #[test]
    fn trivial_leaf_is_complete() {
        assert!(DTree::from_leaf(Dnf::variable(v(0))).is_complete());
        assert!(
            DTree::from_leaf(Dnf::constant_false(banzhaf_boolean::VarSet::default())).is_complete()
        );
    }

    #[test]
    fn traversal_orders_cover_all_nodes() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(2), v(3)], vec![v(4), v(5)]]);
        let t =
            DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        let post = t.postorder();
        let pre = t.preorder();
        assert_eq!(post.len(), t.num_nodes());
        assert_eq!(pre.len(), t.num_nodes());
        // Post-order places children before parents.
        let pos_of = |id: NodeId| post.iter().position(|&x| x == id).unwrap();
        for id in t.preorder() {
            if let Node::Op { children, .. } = t.node(id) {
                for &c in children {
                    assert!(pos_of(c) < pos_of(id));
                }
            }
        }
        // Pre-order places parents before children.
        let pre_pos = |id: NodeId| pre.iter().position(|&x| x == id).unwrap();
        for id in t.preorder() {
            if let Node::Op { children, .. } = t.node(id) {
                for &c in children {
                    assert!(pre_pos(c) > pre_pos(id));
                }
            }
        }
    }

    #[test]
    fn stats_and_render() {
        let phi = Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]);
        let t =
            DTree::compile_full(phi, PivotHeuristic::MostFrequent, &Budget::unlimited()).unwrap();
        let s = t.stats();
        assert!(s.leaves >= 2);
        assert_eq!(s.leaves, s.trivial_leaves);
        assert!(s.independent_and >= 1);
        let rendered = t.render();
        assert!(rendered.contains("⊙") || rendered.contains("⊗"));
    }
}
