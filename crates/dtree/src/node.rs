//! D-tree nodes.

use banzhaf_boolean::{Dnf, Var};
use std::fmt;

/// Index of a node within a [`crate::DTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The connective of an inner d-tree node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OpKind {
    /// `⊗` — disjunction of independent children.
    IndependentOr,
    /// `⊙` — conjunction of independent children.
    IndependentAnd,
    /// `⊕` — disjunction of mutually exclusive children over the same
    /// variables (Shannon expansion).
    Exclusive,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::IndependentOr => "⊗",
            OpKind::IndependentAnd => "⊙",
            OpKind::Exclusive => "⊕",
        };
        write!(f, "{s}")
    }
}

/// A node of a d-tree.
#[derive(Clone, Debug)]
pub enum Node {
    /// A leaf holding an arbitrary positive DNF over its own universe.
    /// Constants are represented by constant DNFs (possibly over a non-empty
    /// universe, e.g. the unused-variable component).
    Leaf(Dnf),
    /// A positive literal `x` (a function over the single variable `x`).
    PosLit(Var),
    /// A negated literal `¬x`, introduced by Shannon expansion.
    NegLit(Var),
    /// An inner node: a connective applied to children with the stated total
    /// number of variables.
    Op {
        /// The connective.
        op: OpKind,
        /// Children node ids.
        children: Vec<NodeId>,
        /// Number of variables of the function represented by this subtree.
        num_vars: usize,
    },
}

impl Node {
    /// Number of variables of the function represented by this node.
    pub fn num_vars(&self) -> usize {
        match self {
            Node::Leaf(dnf) => dnf.num_vars(),
            Node::PosLit(_) | Node::NegLit(_) => 1,
            Node::Op { num_vars, .. } => *num_vars,
        }
    }

    /// `true` iff this is a leaf that still needs decomposition before the
    /// d-tree is complete (neither a constant nor a single literal).
    pub fn is_non_trivial_leaf(&self) -> bool {
        match self {
            Node::Leaf(dnf) => !dnf.is_constant() && dnf.is_single_literal().is_none(),
            _ => false,
        }
    }

    /// `true` iff this node is any kind of leaf (no children).
    pub fn is_leaf(&self) -> bool {
        !matches!(self, Node::Op { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_boolean::VarSet;

    #[test]
    fn num_vars_per_kind() {
        assert_eq!(Node::PosLit(Var(3)).num_vars(), 1);
        assert_eq!(Node::NegLit(Var(3)).num_vars(), 1);
        let leaf = Node::Leaf(Dnf::from_clauses(vec![vec![Var(0), Var(1)]]));
        assert_eq!(leaf.num_vars(), 2);
        let op = Node::Op { op: OpKind::IndependentOr, children: vec![], num_vars: 7 };
        assert_eq!(op.num_vars(), 7);
    }

    #[test]
    fn triviality() {
        assert!(!Node::PosLit(Var(0)).is_non_trivial_leaf());
        assert!(!Node::Leaf(Dnf::variable(Var(0))).is_non_trivial_leaf());
        assert!(!Node::Leaf(Dnf::constant_true(VarSet::empty())).is_non_trivial_leaf());
        assert!(Node::Leaf(Dnf::from_clauses(vec![vec![Var(0), Var(1)]])).is_non_trivial_leaf());
        assert!(Node::PosLit(Var(0)).is_leaf());
        let op = Node::Op { op: OpKind::Exclusive, children: vec![], num_vars: 0 };
        assert!(!op.is_leaf());
    }
}
