//! In-memory relational database substrate.
//!
//! The paper's setting is a database `D = (Dn, Dx)` partitioned into
//! *endogenous* facts (whose contribution we want to quantify; each is mapped
//! to a propositional provenance variable) and *exogenous* facts (taken for
//! granted; they participate in joins but never appear in lineage).
//!
//! This crate provides exactly that substrate: typed values, relation
//! schemas, fact storage with provenance tags, and stable [`FactId`]s that the
//! query evaluator (`banzhaf-query`) uses as the propositional variables of
//! the lineage it constructs.
//!
//! ```
//! use banzhaf_db::{Database, Value};
//!
//! let mut db = Database::new();
//! db.add_relation("R", 1);
//! db.add_relation("S", 2);
//! let r1 = db.insert_endogenous("R", vec![Value::from(1)]).unwrap();
//! db.insert_exogenous("S", vec![Value::from(1), Value::from(2)]).unwrap();
//! assert_eq!(db.num_endogenous(), 1);
//! assert_eq!(db.fact(r1).unwrap().relation(), "R");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod fact;
mod update;
mod value;

pub use database::{Database, DbError, Relation};
pub use fact::{Fact, FactId, Provenance};
pub use update::Update;
pub use value::Value;
