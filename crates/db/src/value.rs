//! Typed attribute values.

use std::fmt;

/// A database value: an integer or a string constant.
///
/// Two variants suffice for the paper's workloads (keys, foreign keys, names);
/// the query layer's selection predicates compare values of the same variant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A string value.
    Str(String),
}

impl Value {
    /// Returns the integer if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(5).as_int(), Some(5));
        assert_eq!(Value::from(5).as_str(), None);
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from("abc").as_int(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::from("x").to_string(), "'x'");
    }

    #[test]
    fn ordering_within_variants() {
        assert!(Value::from(1) < Value::from(2));
        assert!(Value::from("a") < Value::from("b"));
    }
}
