//! The database: relations, fact storage, endogenous/exogenous partitioning.

use crate::{Fact, FactId, Provenance, Update, Value};
use std::collections::HashMap;
use std::fmt;

/// Errors raised by database mutation and lookup.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// The referenced relation does not exist.
    UnknownRelation(String),
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// The declared arity.
        expected: usize,
        /// The arity of the offending tuple.
        got: usize,
    },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// The referenced endogenous fact does not exist (stale id, value not
    /// present, or already deleted); carries the display form of the lookup.
    UnknownFact(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            DbError::ArityMismatch { relation, expected, got } => {
                write!(f, "arity mismatch for {relation}: expected {expected}, got {got}")
            }
            DbError::DuplicateRelation(r) => write!(f, "relation {r} already exists"),
            DbError::UnknownFact(fact) => write!(f, "unknown endogenous fact {fact}"),
        }
    }
}

impl std::error::Error for DbError {}

/// A stored relation: its arity and its tuples with provenance tags.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<(Vec<Value>, Provenance)>,
}

impl Relation {
    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over `(values, provenance)` pairs.
    pub fn tuples(&self) -> impl Iterator<Item = (&[Value], Provenance)> + '_ {
        self.tuples.iter().map(|(vals, prov)| (vals.as_slice(), *prov))
    }
}

/// An in-memory database: named relations over typed values, with each fact
/// tagged endogenous or exogenous.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
    /// Endogenous facts indexed by their [`FactId`]. Deleted facts leave a
    /// tombstone (`None`) so that surviving ids — and hence the lineage
    /// variables derived from them — stay stable across updates.
    endogenous: Vec<Option<Fact>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Declares a relation with the given arity.
    ///
    /// # Panics
    /// Panics if the relation already exists (schema setup is programmer
    /// controlled; a duplicate indicates a bug in workload construction).
    pub fn add_relation(&mut self, name: impl Into<String>, arity: usize) {
        let name = name.into();
        let previous = self.relations.insert(name.clone(), Relation { arity, tuples: Vec::new() });
        assert!(previous.is_none(), "{}", DbError::DuplicateRelation(name));
    }

    /// Inserts an endogenous fact and returns its id (= provenance variable).
    pub fn insert_endogenous(
        &mut self,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<FactId, DbError> {
        self.check(relation, &values)?;
        let id = FactId(self.endogenous.len() as u32);
        self.endogenous.push(Some(Fact::new(relation, values.clone())));
        self.relations
            .get_mut(relation)
            .expect("checked above")
            .tuples
            .push((values, Provenance::Endogenous(id)));
        Ok(id)
    }

    /// Deletes an endogenous fact by id, removing its tuple from the owning
    /// relation, and returns the deleted fact.
    ///
    /// The id is tombstoned, never reused: every surviving fact keeps its id,
    /// so lineage variables built before the deletion remain valid.
    pub fn delete_endogenous(&mut self, id: FactId) -> Result<Fact, DbError> {
        let fact = self
            .endogenous
            .get_mut(id.index())
            .and_then(Option::take)
            .ok_or_else(|| DbError::UnknownFact(id.to_string()))?;
        let rel = self.relations.get_mut(fact.relation()).expect("live fact has a relation");
        let pos = rel
            .tuples
            .iter()
            .position(|(_, prov)| *prov == Provenance::Endogenous(id))
            .expect("live fact has a stored tuple");
        rel.tuples.remove(pos);
        Ok(fact)
    }

    /// Finds a live endogenous fact by relation and values (first match when
    /// the relation holds duplicate tuples).
    pub fn find_endogenous(&self, relation: &str, values: &[Value]) -> Option<FactId> {
        self.relations.get(relation)?.tuples.iter().find_map(|(vals, prov)| {
            if vals == values {
                prov.fact_id()
            } else {
                None
            }
        })
    }

    /// Applies a single-fact [`Update`], returning the id of the inserted or
    /// deleted fact. Deletions match the fact by relation and values.
    pub fn apply_update(&mut self, update: &Update) -> Result<FactId, DbError> {
        match update {
            Update::Insert(fact) => self.insert_endogenous(fact.relation(), fact.values().to_vec()),
            Update::Delete(fact) => {
                let id = self
                    .find_endogenous(fact.relation(), fact.values())
                    .ok_or_else(|| DbError::UnknownFact(fact.to_string()))?;
                self.delete_endogenous(id)?;
                Ok(id)
            }
        }
    }

    /// Inserts an exogenous fact.
    pub fn insert_exogenous(&mut self, relation: &str, values: Vec<Value>) -> Result<(), DbError> {
        self.check(relation, &values)?;
        self.relations
            .get_mut(relation)
            .expect("checked above")
            .tuples
            .push((values, Provenance::Exogenous));
        Ok(())
    }

    fn check(&self, relation: &str, values: &[Value]) -> Result<(), DbError> {
        let rel = self
            .relations
            .get(relation)
            .ok_or_else(|| DbError::UnknownRelation(relation.to_owned()))?;
        if rel.arity != values.len() {
            return Err(DbError::ArityMismatch {
                relation: relation.to_owned(),
                expected: rel.arity,
                got: values.len(),
            });
        }
        Ok(())
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Names of all relations (sorted for determinism).
    pub fn relation_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Looks up a live endogenous fact by id (`None` for deleted facts).
    pub fn fact(&self, id: FactId) -> Option<&Fact> {
        self.endogenous.get(id.index()).and_then(Option::as_ref)
    }

    /// Number of live endogenous facts (deleted facts are not counted).
    pub fn num_endogenous(&self) -> usize {
        self.endogenous.iter().filter(|f| f.is_some()).count()
    }

    /// Total number of stored tuples (endogenous and exogenous).
    pub fn num_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Iterates over all live endogenous facts with their ids.
    pub fn endogenous_facts(&self) -> impl Iterator<Item = (FactId, &Fact)> + '_ {
        self.endogenous
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|fact| (FactId(i as u32), fact)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add_relation("R", 1);
        db.add_relation("S", 2);
        db.insert_endogenous("R", vec![Value::from(1)]).unwrap();
        db.insert_endogenous("R", vec![Value::from(2)]).unwrap();
        db.insert_endogenous("S", vec![Value::from(1), Value::from(10)]).unwrap();
        db.insert_exogenous("S", vec![Value::from(2), Value::from(20)]).unwrap();
        db
    }

    #[test]
    fn insertion_and_lookup() {
        let db = sample_db();
        assert_eq!(db.num_endogenous(), 3);
        assert_eq!(db.num_tuples(), 4);
        assert_eq!(db.relation("R").unwrap().len(), 2);
        assert_eq!(db.relation("S").unwrap().arity(), 2);
        assert!(db.relation("T").is_none());
        assert_eq!(db.relation_names(), vec!["R", "S"]);
        let fact = db.fact(FactId(0)).unwrap();
        assert_eq!(fact.relation(), "R");
        assert_eq!(db.fact(FactId(99)), None);
    }

    #[test]
    fn fact_ids_are_dense_and_stable() {
        let db = sample_db();
        let ids: Vec<FactId> = db.endogenous_facts().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![FactId(0), FactId(1), FactId(2)]);
    }

    #[test]
    fn provenance_tags_on_tuples() {
        let db = sample_db();
        let s = db.relation("S").unwrap();
        let provs: Vec<bool> = s.tuples().map(|(_, p)| p.is_endogenous()).collect();
        assert_eq!(provs, vec![true, false]);
    }

    #[test]
    fn errors() {
        let mut db = sample_db();
        assert_eq!(
            db.insert_endogenous("T", vec![]).unwrap_err(),
            DbError::UnknownRelation("T".into())
        );
        let err = db.insert_exogenous("R", vec![Value::from(1), Value::from(2)]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { expected: 1, got: 2, .. }));
        assert!(err.to_string().contains("arity mismatch"));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_panics() {
        let mut db = sample_db();
        db.add_relation("R", 1);
    }

    #[test]
    fn deletion_tombstones_and_keeps_ids_stable() {
        let mut db = sample_db();
        let deleted = db.delete_endogenous(FactId(0)).unwrap();
        assert_eq!(deleted.relation(), "R");
        assert_eq!(db.num_endogenous(), 2);
        assert_eq!(db.relation("R").unwrap().len(), 1);
        assert_eq!(db.fact(FactId(0)), None);
        // Surviving facts keep their ids; the deleted slot is never reused.
        let ids: Vec<FactId> = db.endogenous_facts().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![FactId(1), FactId(2)]);
        let fresh = db.insert_endogenous("R", vec![Value::from(7)]).unwrap();
        assert_eq!(fresh, FactId(3));
        // Deleting twice fails.
        let err = db.delete_endogenous(FactId(0)).unwrap_err();
        assert!(matches!(err, DbError::UnknownFact(_)));
        assert!(err.to_string().contains("unknown endogenous fact"));
    }

    #[test]
    fn find_endogenous_skips_exogenous_tuples() {
        let db = sample_db();
        assert_eq!(db.find_endogenous("R", &[Value::from(2)]), Some(FactId(1)));
        assert_eq!(db.find_endogenous("S", &[Value::from(2), Value::from(20)]), None);
        assert_eq!(db.find_endogenous("T", &[]), None);
    }

    #[test]
    fn updates_apply_by_value() {
        let mut db = sample_db();
        let inserted = db.apply_update(&Update::insert("R", vec![Value::from(9)])).unwrap();
        assert_eq!(db.fact(inserted).unwrap().values(), &[Value::from(9)]);
        let removed = db.apply_update(&Update::delete("R", vec![Value::from(9)])).unwrap();
        assert_eq!(removed, inserted);
        assert_eq!(db.fact(inserted), None);
        let err = db.apply_update(&Update::delete("R", vec![Value::from(9)])).unwrap_err();
        assert_eq!(err, DbError::UnknownFact("R(9)".into()));
    }
}
