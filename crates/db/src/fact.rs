//! Facts and their provenance tags.

use crate::Value;
use std::fmt;

/// Identifier of an *endogenous* fact; doubles as the index of the
/// propositional provenance variable the query layer associates with it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub u32);

impl FactId {
    /// The numeric index of the fact.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Whether a fact is endogenous (carries a provenance variable) or exogenous
/// (taken for granted, never appears in lineage).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Provenance {
    /// Endogenous fact with its provenance variable id.
    Endogenous(FactId),
    /// Exogenous fact.
    Exogenous,
}

impl Provenance {
    /// The fact id, if endogenous.
    pub fn fact_id(self) -> Option<FactId> {
        match self {
            Provenance::Endogenous(id) => Some(id),
            Provenance::Exogenous => None,
        }
    }

    /// `true` iff endogenous.
    pub fn is_endogenous(self) -> bool {
        matches!(self, Provenance::Endogenous(_))
    }
}

/// A stored fact: relation name plus attribute values.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Fact {
    relation: String,
    values: Vec<Value>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(relation: impl Into<String>, values: Vec<Value>) -> Self {
        Fact { relation: relation.into(), values }
    }

    /// The relation the fact belongs to.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The attribute values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vals: Vec<String> = self.values.iter().map(Value::to_string).collect();
        write!(f, "{}({})", self.relation, vals.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_accessors() {
        let p = Provenance::Endogenous(FactId(3));
        assert!(p.is_endogenous());
        assert_eq!(p.fact_id(), Some(FactId(3)));
        assert!(!Provenance::Exogenous.is_endogenous());
        assert_eq!(Provenance::Exogenous.fact_id(), None);
    }

    #[test]
    fn fact_display() {
        let f = Fact::new("R", vec![Value::from(1), Value::from("a")]);
        assert_eq!(f.to_string(), "R(1, 'a')");
        assert_eq!(f.relation(), "R");
        assert_eq!(f.values().len(), 2);
    }
}
