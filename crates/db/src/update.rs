//! Single-fact deltas against the endogenous part of a database.

use crate::{Fact, Value};
use std::fmt;

/// A single-fact update to the endogenous part of a [`Database`].
///
/// Updates address facts *by value* (relation plus attribute values), not by
/// [`FactId`]: ids are an internal detail assigned at insertion time, while
/// the update stream of a live system speaks in tuples. Deletions resolve to
/// the first live endogenous fact with matching values.
///
/// [`Database`]: crate::Database
/// [`FactId`]: crate::FactId
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Update {
    /// Insert a new endogenous fact.
    Insert(Fact),
    /// Delete an existing endogenous fact (matched by relation and values).
    Delete(Fact),
}

impl Update {
    /// Convenience constructor for an insertion.
    pub fn insert(relation: impl Into<String>, values: Vec<Value>) -> Self {
        Update::Insert(Fact::new(relation, values))
    }

    /// Convenience constructor for a deletion.
    pub fn delete(relation: impl Into<String>, values: Vec<Value>) -> Self {
        Update::Delete(Fact::new(relation, values))
    }

    /// The fact being inserted or deleted.
    pub fn fact(&self) -> &Fact {
        match self {
            Update::Insert(fact) | Update::Delete(fact) => fact,
        }
    }

    /// `true` iff this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(_))
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Insert(fact) => write!(f, "+{fact}"),
            Update::Delete(fact) => write!(f, "-{fact}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let ins = Update::insert("R", vec![Value::from(1)]);
        let del = Update::delete("R", vec![Value::from(1)]);
        assert!(ins.is_insert());
        assert!(!del.is_insert());
        assert_eq!(ins.fact(), del.fact());
        assert_eq!(ins.to_string(), "+R(1)");
        assert_eq!(del.to_string(), "-R(1)");
    }
}
