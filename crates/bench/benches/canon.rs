//! Criterion micro-benchmarks of the cache-keying layers: the full
//! refinement-based canonical key (`canonical_key_probe`) against the cheap
//! isomorphism-invariant fingerprint pre-key (`prekey_probe`) on rings,
//! cliques and random clause soups — the pre-key is what singleton-traffic
//! lookups pay instead of the individualization search.

use banzhaf_boolean::{Dnf, Var};
use banzhaf_engine::{canonical_key_probe, prekey_probe};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ring(num_vars: u32) -> Dnf {
    Dnf::from_clauses(
        (0..num_vars).map(|i| vec![Var(i), Var((i + 1) % num_vars)]).collect::<Vec<_>>(),
    )
}

fn clique(num_vars: u32) -> Dnf {
    let mut clauses = Vec::new();
    for i in 0..num_vars {
        for j in (i + 1)..num_vars {
            clauses.push(vec![Var(i), Var(j)]);
        }
    }
    Dnf::from_clauses(clauses)
}

fn soup(num_vars: u32, seed: u64) -> Dnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..num_vars)
        .map(|_| {
            let width = rng.gen_range(1..=3usize);
            (0..width).map(|_| Var(rng.gen_range(0..num_vars))).collect::<Vec<_>>()
        })
        .collect::<Vec<_>>();
    Dnf::from_clauses(clauses)
}

fn bench_keying(c: &mut Criterion) {
    let mut group = c.benchmark_group("canon_keying");
    group.sample_size(20);
    let families: Vec<(&str, Vec<Dnf>)> = vec![
        ("ring", [32u32, 128, 512].iter().map(|&n| ring(n)).collect()),
        ("clique", [8u32, 16, 32].iter().map(|&n| clique(n)).collect()),
        ("soup", [32u32, 128, 512].iter().map(|&n| soup(n, u64::from(n))).collect()),
    ];
    for (family, lineages) in &families {
        for phi in lineages {
            let vars = phi.num_vars();
            group.bench_with_input(
                BenchmarkId::new(format!("canonical_key/{family}"), vars),
                phi,
                |bench, phi| bench.iter(|| canonical_key_probe(phi)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("prekey/{family}"), vars),
                phi,
                |bench, phi| bench.iter(|| prekey_probe(phi)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_keying);
criterion_main!(benches);
