//! Criterion micro-benchmarks of the building blocks: bigint arithmetic,
//! iDNF bound construction and counting, d-tree compilation, and Monte Carlo
//! sampling throughput.

use banzhaf::{Budget, DTree, PivotHeuristic};
use banzhaf_arith::Natural;
use banzhaf_baselines::{mc_banzhaf, McOptions};
use banzhaf_boolean::{lower_bound_fn, upper_bound_fn};
use banzhaf_workloads::{LineageGenerator, LineageShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn shape(num_vars: usize, num_clauses: usize) -> LineageShape {
    LineageShape { num_vars, num_clauses, min_width: 2, max_width: 4, skew: 0.6 }
}

fn bench_bigint(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint");
    for bits in [256usize, 2048, 16384] {
        let a = &Natural::pow2(bits) - &Natural::from(12345u64);
        let b = &Natural::pow2(bits / 2) + &Natural::from(6789u64);
        group.bench_with_input(BenchmarkId::new("mul", bits), &bits, |bench, _| {
            bench.iter(|| a.mul_ref(&b));
        });
        group.bench_with_input(BenchmarkId::new("add", bits), &bits, |bench, _| {
            bench.iter(|| &a + &b);
        });
    }
    group.finish();
}

fn bench_idnf_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("idnf_bounds");
    let mut rng = StdRng::seed_from_u64(11);
    for clauses in [20usize, 100, 400] {
        let phi = LineageGenerator::new(shape(clauses, clauses)).generate(&mut rng);
        group.bench_with_input(
            BenchmarkId::new("L_and_U_counts", clauses),
            &clauses,
            |bench, _| {
                bench.iter(|| {
                    let l = lower_bound_fn(&phi).idnf_model_count();
                    let u = upper_bound_fn(&phi).idnf_model_count();
                    (l, u)
                });
            },
        );
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtree_compile");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(12);
    for vars in [15usize, 25, 35] {
        let phi = LineageGenerator::new(shape(vars, vars)).generate(&mut rng);
        group.bench_with_input(BenchmarkId::new("compile_full", vars), &vars, |bench, _| {
            bench.iter(|| {
                DTree::compile_full(phi.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_mc_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_sampling");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(13);
    let phi = LineageGenerator::new(shape(40, 30)).generate(&mut rng);
    for samples in [10u64, 50] {
        group.bench_with_input(
            BenchmarkId::new("samples_per_var", samples),
            &samples,
            |bench, &s| {
                bench.iter(|| {
                    mc_banzhaf(&phi, &McOptions { samples_per_var: s }, 7, &Budget::unlimited())
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bigint, bench_idnf_bounds, bench_compile, bench_mc_sampling);
criterion_main!(benches);
