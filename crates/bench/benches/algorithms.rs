//! Criterion benchmarks of the end-to-end algorithms on random lineages of
//! increasing size: ExaBan vs the Sig22 baseline (exact computation), AdaBan
//! at ε = 0.1, and IchiBan top-k — the micro-scale analogue of Tables 3, 5
//! and 9.

use banzhaf::{
    adaban_all, exaban_all, ichiban_topk, AdaBanOptions, Budget, DTree, IchiBanOptions,
    PivotHeuristic, Var,
};
use banzhaf_baselines::sig22_exact;
use banzhaf_workloads::{LineageGenerator, LineageShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lineages(sizes: &[usize]) -> Vec<(usize, banzhaf_boolean::Dnf)> {
    let mut rng = StdRng::seed_from_u64(2024);
    sizes
        .iter()
        .map(|&n| {
            let shape =
                LineageShape { num_vars: n, num_clauses: n, min_width: 2, max_width: 3, skew: 0.8 };
            (n, LineageGenerator::new(shape).generate(&mut rng))
        })
        .collect()
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    group.sample_size(15);
    for (n, phi) in lineages(&[12, 18, 24]) {
        group.bench_with_input(BenchmarkId::new("exaban", n), &phi, |bench, phi| {
            bench.iter(|| {
                let tree = DTree::compile_full(
                    phi.clone(),
                    PivotHeuristic::MostFrequent,
                    &Budget::unlimited(),
                )
                .unwrap();
                exaban_all(&tree)
            });
        });
        group.bench_with_input(BenchmarkId::new("sig22", n), &phi, |bench, phi| {
            bench.iter(|| sig22_exact(phi, &Budget::unlimited()).unwrap());
        });
    }
    group.finish();
}

fn bench_approximate(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximate");
    group.sample_size(15);
    for (n, phi) in lineages(&[18, 24, 30]) {
        let vars: Vec<Var> = phi.universe().iter().collect();
        group.bench_with_input(BenchmarkId::new("adaban_0.1", n), &phi, |bench, phi| {
            bench.iter(|| {
                let mut tree = DTree::from_leaf(phi.clone());
                adaban_all(
                    &mut tree,
                    &vars,
                    &AdaBanOptions::with_epsilon_str("0.1"),
                    &Budget::unlimited(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    group.sample_size(15);
    for (n, phi) in lineages(&[18, 24]) {
        group.bench_with_input(BenchmarkId::new("ichiban_eps0.1_top5", n), &phi, |bench, phi| {
            bench.iter(|| {
                let mut tree = DTree::from_leaf(phi.clone());
                ichiban_topk(
                    &mut tree,
                    5,
                    &IchiBanOptions::with_epsilon_str("0.1"),
                    &Budget::unlimited(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_approximate, bench_topk);
criterion_main!(benches);
