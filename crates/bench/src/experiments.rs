//! One driver per table/figure of the paper's evaluation.
//!
//! Every function returns a plain-text report; the `repro` binary prints them.
//! The experiment identifiers match the per-experiment index in DESIGN.md and
//! the paper-vs-measured record in EXPERIMENTS.md.

use crate::report::{percent, RuntimeSummary, TextTable, PERCENTILES};
use crate::runner::{by_corpus, compare_cache, run_sweep, HarnessConfig, InstanceRecord};
use banzhaf::{critical_counts_all, l1_distance_normalized, Budget, DTree, PivotHeuristic, Var};
use banzhaf_baselines::{rank_estimates, rank_proxy};
use banzhaf_boolean::Dnf;
use banzhaf_db::Database;
use banzhaf_engine::{Algorithm, BatchOptions, CacheConfig, Engine, EngineConfig};
use banzhaf_query::parse_program;
use banzhaf_workloads::Corpus;
use std::collections::HashMap;
use std::time::Instant;

/// A per-instance success predicate, used to slice sweep records by algorithm.
type InstancePredicate = Box<dyn Fn(&InstanceRecord) -> bool>;

fn runtime_header(first: &str) -> Vec<String> {
    let mut header = vec![first.to_owned(), "Mean".to_owned()];
    header.extend(PERCENTILES.iter().map(|&(name, _)| name.to_owned()));
    header.push("Max".to_owned());
    header
}

/// Table 1: statistics of the three corpora.
pub fn table1(config: &HarnessConfig) -> String {
    let mut table = TextTable::new([
        "Dataset",
        "#Queries",
        "#Lineages",
        "#Vars (avg/max)",
        "#Clauses (avg/max)",
    ]);
    for corpus in config.corpora() {
        let stats = corpus.stats();
        table.push_row([
            corpus.name.clone(),
            stats.num_queries.to_string(),
            stats.num_lineages.to_string(),
            format!("{:.0} / {}", stats.avg_vars, stats.max_vars),
            format!("{:.0} / {}", stats.avg_clauses, stats.max_clauses),
        ]);
    }
    format!("Table 1 — dataset statistics (synthetic stand-ins)\n{}", table.render())
}

/// Table 2: query and lineage success rates for ExaBan, Sig22, AdaBan, MC.
pub fn table2(records: &[InstanceRecord], config: &HarnessConfig) -> String {
    let mut table = TextTable::new(["Dataset", "Algorithm", "Query success", "Lineage success"]);
    for (corpus, group) in by_corpus(records) {
        let algos: [(&str, InstancePredicate); 4] = [
            ("ExaBan", Box::new(|r: &InstanceRecord| r.exaban.success)),
            ("Sig22", Box::new(|r: &InstanceRecord| r.sig22.success)),
            ("AdaBan0.1", Box::new(|r: &InstanceRecord| r.adaban.success)),
            ("MC50#vars", Box::new(|r: &InstanceRecord| r.mc.success)),
        ];
        for (name, pred) in algos {
            let (q_ok, q_total) = crate::runner::query_success_rate(&group, &pred);
            let l_ok = group.iter().filter(|r| pred(r)).count();
            table.push_row([
                corpus.clone(),
                name.to_owned(),
                percent(q_ok, q_total),
                percent(l_ok, group.len()),
            ]);
        }
    }
    format!(
        "Table 2 — success rates (per-instance timeout {:?}, ε = {})\n{}",
        config.timeout,
        config.epsilon,
        table.render()
    )
}

/// Table 3: runtime percentiles of ExaBan vs Sig22 on instances where Sig22
/// succeeds.
pub fn table3(records: &[InstanceRecord]) -> String {
    let mut table = TextTable::new(runtime_header("Dataset / Algorithm"));
    for (corpus, group) in by_corpus(records) {
        let both: Vec<&&InstanceRecord> =
            group.iter().filter(|r| r.sig22.success && r.exaban.success).collect();
        let exa = RuntimeSummary::of(both.iter().map(|r| r.exaban.seconds).collect());
        let sig = RuntimeSummary::of(both.iter().map(|r| r.sig22.seconds).collect());
        let mut exa_row = vec![format!("{corpus} / ExaBan ({} inst.)", exa.count)];
        exa_row.extend(exa.row());
        table.push_row(exa_row);
        let mut sig_row = vec![format!("{corpus} / Sig22")];
        sig_row.extend(sig.row());
        table.push_row(sig_row);
    }
    format!("Table 3 — exact computation where Sig22 succeeds\n{}", table.render())
}

/// Table 4: ExaBan success rate and runtimes on instances where Sig22 fails.
pub fn table4(records: &[InstanceRecord]) -> String {
    let mut table = TextTable::new(runtime_header("Dataset (success rate)"));
    for (corpus, group) in by_corpus(records) {
        let sig_failed: Vec<&&InstanceRecord> = group.iter().filter(|r| !r.sig22.success).collect();
        let exa_ok: Vec<&&&InstanceRecord> =
            sig_failed.iter().filter(|r| r.exaban.success).collect();
        let summary = RuntimeSummary::of(exa_ok.iter().map(|r| r.exaban.seconds).collect());
        let mut row = vec![format!(
            "{corpus} ({} of {} Sig22 failures)",
            percent(exa_ok.len(), sig_failed.len()),
            sig_failed.len()
        )];
        row.extend(summary.row());
        table.push_row(row);
    }
    format!("Table 4 — ExaBan on instances where Sig22 fails\n{}", table.render())
}

/// Figure 4: ExaBan success rate and runtime grouped by lineage size.
pub fn fig4(records: &[InstanceRecord]) -> String {
    let buckets: [(usize, usize); 6] =
        [(0, 10), (10, 20), (20, 40), (40, 80), (80, 160), (160, usize::MAX)];
    let mut out = String::from("Figure 4 — ExaBan success and runtime by lineage size\n");
    for (label, key) in [("#Variables", 0usize), ("#Clauses", 1usize)] {
        let mut table =
            TextTable::new([label, "Instances", "Success rate", "Mean time", "Max time"]);
        for &(lo, hi) in &buckets {
            let in_bucket: Vec<&InstanceRecord> = records
                .iter()
                .filter(|r| {
                    let size = if key == 0 { r.num_vars } else { r.num_clauses };
                    size > lo && size <= hi
                })
                .collect();
            if in_bucket.is_empty() {
                continue;
            }
            let ok: Vec<&&InstanceRecord> = in_bucket.iter().filter(|r| r.exaban.success).collect();
            let summary = RuntimeSummary::of(ok.iter().map(|r| r.exaban.seconds).collect());
            let hi_label = if hi == usize::MAX { "∞".to_owned() } else { hi.to_string() };
            table.push_row([
                format!("({lo},{hi_label}]"),
                in_bucket.len().to_string(),
                percent(ok.len(), in_bucket.len()),
                crate::report::format_secs(summary.mean),
                crate::report::format_secs(summary.max),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Table 5: AdaBan vs ExaBan vs MC runtimes where ExaBan succeeds.
pub fn table5(records: &[InstanceRecord]) -> String {
    let mut table = TextTable::new(runtime_header("Dataset / Algorithm"));
    for (corpus, group) in by_corpus(records) {
        let ok: Vec<&&InstanceRecord> = group.iter().filter(|r| r.exaban.success).collect();
        for (name, extract) in [
            (
                "AdaBan0.1",
                Box::new(|r: &InstanceRecord| (r.adaban.success, r.adaban.seconds))
                    as Box<dyn Fn(&InstanceRecord) -> (bool, f64)>,
            ),
            ("ExaBan", Box::new(|r: &InstanceRecord| (r.exaban.success, r.exaban.seconds))),
            ("MC50#vars", Box::new(|r: &InstanceRecord| (r.mc.success, r.mc.seconds))),
        ] {
            let samples: Vec<f64> =
                ok.iter().filter(|r| extract(r).0).map(|r| extract(r).1).collect();
            let summary = RuntimeSummary::of(samples);
            let mut row = vec![format!("{corpus} / {name}")];
            row.extend(summary.row());
            table.push_row(row);
        }
    }
    format!("Table 5 — approximate vs exact computation where ExaBan succeeds\n{}", table.render())
}

/// Table 6: AdaBan success rate and runtime where ExaBan fails.
pub fn table6(records: &[InstanceRecord]) -> String {
    let mut table = TextTable::new(runtime_header("Dataset (success rate)"));
    for (corpus, group) in by_corpus(records) {
        let exa_failed: Vec<&&InstanceRecord> =
            group.iter().filter(|r| !r.exaban.success).collect();
        if exa_failed.is_empty() {
            table.push_row([format!("{corpus} (no ExaBan failures)")]);
            continue;
        }
        let ada_ok: Vec<&&&InstanceRecord> =
            exa_failed.iter().filter(|r| r.adaban.success).collect();
        let summary = RuntimeSummary::of(ada_ok.iter().map(|r| r.adaban.seconds).collect());
        let mut row = vec![format!(
            "{corpus} ({} of {} ExaBan failures)",
            percent(ada_ok.len(), exa_failed.len()),
            exa_failed.len()
        )];
        row.extend(summary.row());
        table.push_row(row);
    }
    format!("Table 6 — AdaBan0.1 on instances where ExaBan fails\n{}", table.render())
}

/// Table 7: observed ℓ1 error (on normalized Banzhaf vectors) of AdaBan vs MC.
pub fn table7(records: &[InstanceRecord]) -> String {
    let mut table =
        TextTable::new(["Dataset / Algorithm", "Mean", "p50", "p90", "p99", "Max", "Instances"]);
    let mut groups = by_corpus(records);
    // Extra "Hard" slice: instances on which ExaBan needed the most time.
    let mut hard: Vec<&InstanceRecord> = records.iter().filter(|r| r.exaban.success).collect();
    hard.sort_by(|a, b| b.exaban.seconds.partial_cmp(&a.exaban.seconds).unwrap());
    hard.truncate((hard.len() / 10).max(5).min(hard.len()));
    groups.push(("Hard".to_owned(), hard));

    for (corpus, group) in groups {
        for (name, estimates) in [
            (
                "AdaBan0.1",
                Box::new(|r: &InstanceRecord| r.adaban_estimates.clone())
                    as Box<dyn Fn(&InstanceRecord) -> Option<HashMap<Var, f64>>>,
            ),
            ("MC50#vars", Box::new(|r: &InstanceRecord| r.mc_estimates.clone())),
        ] {
            let mut errors: Vec<f64> = Vec::new();
            for r in &group {
                let (Some(exact), Some(est)) = (r.exact.as_ref(), estimates(r)) else {
                    continue;
                };
                errors.push(l1_distance_normalized(&est, exact));
            }
            errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let count = errors.len();
            if count == 0 {
                table.push_row([format!("{corpus} / {name}"), "n/a".into()]);
                continue;
            }
            let mean = errors.iter().sum::<f64>() / count as f64;
            let pick = |p: f64| errors[((count as f64 - 1.0) * p).round() as usize];
            table.push_row([
                format!("{corpus} / {name}"),
                format!("{mean:.2e}"),
                format!("{:.2e}", pick(0.5)),
                format!("{:.2e}", pick(0.9)),
                format!("{:.2e}", pick(0.99)),
                format!("{:.2e}", errors[count - 1]),
                count.to_string(),
            ]);
        }
    }
    format!("Table 7 — observed ℓ1 error vs exact normalized Banzhaf values\n{}", table.render())
}

/// Figure 5: error as a function of time for representative hard instances.
pub fn fig5(records: &[InstanceRecord], config: &HarnessConfig) -> String {
    // Pick the three instances with the largest ExaBan runtime among successes.
    let mut candidates: Vec<&InstanceRecord> =
        records.iter().filter(|r| r.exaban.success && r.num_vars >= 8).collect();
    candidates.sort_by(|a, b| b.exaban.seconds.partial_cmp(&a.exaban.seconds).unwrap());
    candidates.truncate(3);
    let corpora = config.corpora();
    let mut out = String::from(
        "Figure 5 — observed error |v̂−v|/v of the largest-value fact as a function of time\n",
    );
    for (idx, record) in candidates.iter().enumerate() {
        let lineage = find_lineage(&corpora, record);
        let Some(lineage) = lineage else { continue };
        let exact = record.exact.as_ref().expect("candidate filtered on success");
        // Track the variable with the largest exact value.
        let (&target, target_value) = exact
            .iter()
            .max_by(|(va, ba), (vb, bb)| ba.cmp(bb).then(vb.cmp(va)))
            .expect("non-empty lineage");
        let target_value = target_value.to_f64().max(1e-12);

        let mut table = TextTable::new(["Algorithm", "Setting", "Time", "Observed error"]);
        // AdaBan with a decreasing error schedule, targeting only the tracked
        // variable through the engine's single-variable entry point. Each row
        // is an independent from-scratch run, so "Time" is the cost of
        // reaching that precision directly; the anytime property shows as the
        // cost growing with the requested precision.
        for eps in ["0.5", "0.25", "0.1", "0.05", "0.01", "0"] {
            let attributor =
                EngineConfig::new(Algorithm::AdaBan).with_epsilon_str(eps).attributor();
            let start = Instant::now();
            let score = attributor
                .attribute_var(lineage, target, &Budget::unlimited())
                .expect("unbounded budget");
            let secs = start.elapsed().as_secs_f64();
            let err = (score.point() - target_value).abs() / target_value;
            table.push_row([
                "AdaBan".to_owned(),
                format!("ε={eps}"),
                crate::report::format_secs(secs),
                format!("{err:.3e}"),
            ]);
        }
        // Monte Carlo with a growing sample schedule.
        for samples in [10u64, 50, 250, 1000, 4000] {
            let mut engine_config = EngineConfig::new(Algorithm::MonteCarlo)
                .with_seed(config.seed + idx as u64 + samples);
            engine_config.mc_samples_per_var = samples;
            let attributor = engine_config.attributor();
            let start = Instant::now();
            let estimates = attributor
                .attribute(lineage, &Budget::unlimited())
                .expect("unbounded budget")
                .estimates();
            let secs = start.elapsed().as_secs_f64();
            let err = (estimates[&target] - target_value).abs() / target_value;
            table.push_row([
                "MC".to_owned(),
                format!("{samples}·#vars samples"),
                crate::report::format_secs(secs),
                format!("{err:.3e}"),
            ]);
        }
        use std::fmt::Write as _;
        write!(
            out,
            "\nInstance {} ({}, query {}, {} vars, {} clauses):\n{}",
            idx + 1,
            record.corpus,
            record.query,
            record.num_vars,
            record.num_clauses,
            table.render()
        )
        .expect("string write");
    }
    out
}

fn find_lineage<'a>(corpora: &'a [Corpus], record: &InstanceRecord) -> Option<&'a Dnf> {
    corpora
        .iter()
        .find(|c| c.name == record.corpus)?
        .instances
        .iter()
        .find(|i| {
            i.query == record.query
                && i.lineage.num_vars() == record.num_vars
                && i.lineage.num_clauses() == record.num_clauses
        })
        .map(|i| &i.lineage)
}

/// Table 8: precision@k of IchiBan-ε, MC and CNF Proxy against the exact
/// top-k, on instances where ExaBan succeeds and has at least k variables.
pub fn table8(records: &[InstanceRecord], config: &HarnessConfig) -> String {
    let mut out = String::from("Table 8 — observed precision@k against the exact top-k\n");
    for k in [config.topk, config.topk / 2] {
        let mut table =
            TextTable::new(["Dataset / Algorithm", "Mean", "p50", "p90", "Min", "Instances"]);
        for (corpus, group) in by_corpus(records) {
            let eligible: Vec<&&InstanceRecord> =
                group.iter().filter(|r| r.exaban.success && r.num_vars >= k && k > 0).collect();
            for (name, ranking) in [
                (
                    "IchiBan0.1",
                    Box::new(|r: &InstanceRecord| r.ichiban_topk.clone())
                        as Box<dyn Fn(&InstanceRecord) -> Option<Vec<Var>>>,
                ),
                (
                    "MC50#vars",
                    Box::new(|r: &InstanceRecord| r.mc_estimates.as_ref().map(rank_estimates)),
                ),
                ("CNF Proxy", Box::new(|r: &InstanceRecord| Some(rank_proxy(&r.proxy_scores)))),
            ] {
                let mut precisions: Vec<f64> = Vec::new();
                for r in &eligible {
                    let (Some(truth), Some(candidate)) = (r.exact_topk(k), ranking(r)) else {
                        continue;
                    };
                    let candidate: Vec<Var> = candidate.into_iter().take(k).collect();
                    let hits = candidate.iter().filter(|v| truth.contains(v)).count();
                    precisions.push(hits as f64 / k as f64);
                }
                precisions.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let count = precisions.len();
                if count == 0 {
                    table.push_row([format!("{corpus} / {name}"), "n/a".into()]);
                    continue;
                }
                let mean = precisions.iter().sum::<f64>() / count as f64;
                let pick = |p: f64| precisions[((count as f64 - 1.0) * p).round() as usize];
                table.push_row([
                    format!("{corpus} / {name}"),
                    format!("{mean:.2}"),
                    format!("{:.2}", pick(0.5)),
                    format!("{:.2}", pick(0.1)), // Lower tail, like the paper's p90-of-badness.
                    format!("{:.2}", precisions[0]),
                    count.to_string(),
                ]);
            }
        }
        use std::fmt::Write as _;
        write!(out, "\nprecision@{k}:\n{}", table.render()).expect("string write");
    }
    out
}

/// Table 9 (App. E): the certain top-k variant of IchiBan.
pub fn table9(config: &HarnessConfig) -> String {
    let mut out = String::from("Table 9 — certain top-k (IchiBan without ε)\n");
    let mut table = TextTable::new(["Dataset", "k", "Success rate", "Mean", "p50", "p90", "Max"]);
    let attributor = config.engine_config(Algorithm::IchiBan).certain().attributor();
    for corpus in config.corpora() {
        for k in [1usize, 3, 5, 10] {
            let mut times = Vec::new();
            let mut successes = 0usize;
            let mut total = 0usize;
            for instance in &corpus.instances {
                if instance.lineage.num_vars() < k {
                    continue;
                }
                total += 1;
                let budget = Budget::with_timeout(config.timeout);
                let start = Instant::now();
                let result = attributor.top_k(&instance.lineage, k, &budget);
                let secs = start.elapsed().as_secs_f64();
                if result.is_ok() {
                    successes += 1;
                    times.push(secs);
                }
            }
            let summary = RuntimeSummary::of(times);
            table.push_row([
                corpus.name.clone(),
                format!("Top{k}"),
                percent(successes, total),
                crate::report::format_secs(summary.mean),
                crate::report::format_secs(summary.percentiles[0]),
                crate::report::format_secs(summary.percentiles[3]),
                crate::report::format_secs(summary.max),
            ]);
        }
    }
    out.push_str(&table.render());
    out
}

/// App. D: the Banzhaf-vs-Shapley ranking disagreement on the 18-fact example.
pub fn app_d() -> String {
    // Build the exact database of App. D: R(a1), R(a2); S has 3 tuples for a1
    // and 2 for a2; T has 3 tuples for a1 and 8 for a2. All facts endogenous.
    let mut db = Database::new();
    db.add_relation("R", 1);
    db.add_relation("S", 2);
    db.add_relation("T", 2);
    let a1 = 1i64;
    let a2 = 2i64;
    let r1 = db.insert_endogenous("R", vec![a1.into()]).unwrap();
    let r2 = db.insert_endogenous("R", vec![a2.into()]).unwrap();
    for b in 1..=3i64 {
        db.insert_endogenous("S", vec![a1.into(), b.into()]).unwrap();
    }
    for b in 1..=2i64 {
        db.insert_endogenous("S", vec![a2.into(), b.into()]).unwrap();
    }
    for b in 1..=3i64 {
        db.insert_endogenous("T", vec![a1.into(), b.into()]).unwrap();
    }
    for b in 1..=8i64 {
        db.insert_endogenous("T", vec![a2.into(), b.into()]).unwrap();
    }
    let query = parse_program("Q() :- R(X), S(X, Y), T(X, Z).").unwrap();
    // The engine computes both measures on one compiled d-tree; the per-size
    // critical-count breakdown is a core-level analysis the result type does
    // not carry, so it is recomputed from the lineage below.
    let engine = Engine::new(EngineConfig::new(Algorithm::ExaBan).with_shapley(true));
    let explained = engine.session().explain(&query, &db);
    let answer = &explained.answers[0];
    let lineage = &answer.lineage;
    let attribution = answer.attribution().expect("unbounded budget");
    let banzhaf = attribution.exact_values().expect("ExaBan is exact");
    let shapley = attribution.shapley.as_ref().expect("Shapley requested");
    let tree =
        DTree::compile_full(lineage.clone(), PivotHeuristic::MostFrequent, &Budget::unlimited())
            .expect("unbounded budget");
    let critical = critical_counts_all(&tree);

    let var_r1 = Var(r1.0);
    let var_r2 = Var(r2.0);
    let mut table = TextTable::new(["k", "#kC(R(a1))", "#kC(R(a2))"]);
    let n = lineage.num_vars();
    for k in 0..n {
        let c1 = critical[&var_r1].get(k).cloned().unwrap_or_default();
        let c2 = critical[&var_r2].get(k).cloned().unwrap_or_default();
        if c1.is_zero() && c2.is_zero() {
            continue;
        }
        table.push_row([k.to_string(), c1.to_string(), c2.to_string()]);
    }
    let mut out = String::from(
        "App. D — Banzhaf vs Shapley ranking on Q() :- R(X), S(X,Y), T(X,Z) (18 facts)\n",
    );
    out.push_str(&table.render());
    use std::fmt::Write as _;
    writeln!(
        out,
        "\nBanzhaf(R(a1)) = {}   Banzhaf(R(a2)) = {}",
        banzhaf[&var_r1], banzhaf[&var_r2]
    )
    .expect("string write");
    writeln!(
        out,
        "Shapley(R(a1)) = {:.4}   Shapley(R(a2)) = {:.4}",
        shapley[&var_r1].to_f64(),
        shapley[&var_r2].to_f64()
    )
    .expect("string write");
    let banzhaf_prefers_a1 = banzhaf[&var_r1] > banzhaf[&var_r2];
    let shapley_prefers_a1 = shapley[&var_r1] > shapley[&var_r2];
    writeln!(
        out,
        "Banzhaf ranks R(a1) {} R(a2); Shapley ranks R(a1) {} R(a2) — the rankings {}.",
        if banzhaf_prefers_a1 { "above" } else { "below" },
        if shapley_prefers_a1 { "above" } else { "below" },
        if banzhaf_prefers_a1 != shapley_prefers_a1 { "disagree" } else { "agree" }
    )
    .expect("string write");
    out
}

/// Ablation: Shannon pivot heuristic (most-frequent vs first-variable).
pub fn ablation_heuristic(config: &HarnessConfig) -> String {
    let mut table =
        TextTable::new(["Dataset", "Heuristic", "Success rate", "Mean time", "Mean expansions"]);
    for corpus in config.corpora() {
        for (name, heuristic) in [
            ("most-frequent", PivotHeuristic::MostFrequent),
            ("first-variable", PivotHeuristic::FirstVariable),
        ] {
            let attributor = {
                let mut engine_config = config.engine_config(Algorithm::ExaBan);
                engine_config.heuristic = heuristic;
                engine_config.attributor()
            };
            let mut times = Vec::new();
            let mut expansions = Vec::new();
            let mut successes = 0usize;
            for instance in &corpus.instances {
                let budget = Budget::with_timeout(config.timeout);
                let start = Instant::now();
                if let Ok(attribution) = attributor.attribute(&instance.lineage, &budget) {
                    successes += 1;
                    times.push(start.elapsed().as_secs_f64());
                    expansions.push(attribution.stats.compile_steps as f64);
                }
            }
            let mean_time =
                if times.is_empty() { 0.0 } else { times.iter().sum::<f64>() / times.len() as f64 };
            let mean_exp = if expansions.is_empty() {
                0.0
            } else {
                expansions.iter().sum::<f64>() / expansions.len() as f64
            };
            table.push_row([
                corpus.name.clone(),
                name.to_owned(),
                percent(successes, corpus.instances.len()),
                crate::report::format_secs(mean_time),
                format!("{mean_exp:.0}"),
            ]);
        }
    }
    format!("Ablation — Shannon pivot selection heuristic (full compilation)\n{}", table.render())
}

/// Ablation: AdaBan lazy vs eager bound recomputation, and optimization (4).
pub fn ablation_adaban(config: &HarnessConfig) -> String {
    let mut table = TextTable::new(["Dataset", "Variant", "Success rate", "Mean time"]);
    let variants: [(&str, bool, bool); 3] = [
        ("lazy + opt4 (default)", true, true),
        ("eager bounds", false, true),
        ("without opt4", true, false),
    ];
    for corpus in config.corpora() {
        for (name, lazy, use_opt4) in variants {
            let attributor = {
                let mut engine_config = config.engine_config(Algorithm::AdaBan);
                engine_config.lazy_bounds = lazy;
                engine_config.opt4 = use_opt4;
                engine_config.attributor()
            };
            let mut times = Vec::new();
            let mut successes = 0usize;
            for instance in &corpus.instances {
                let budget = Budget::with_timeout(config.timeout);
                let start = Instant::now();
                if attributor.attribute(&instance.lineage, &budget).is_ok() {
                    successes += 1;
                    times.push(start.elapsed().as_secs_f64());
                }
            }
            let mean =
                if times.is_empty() { 0.0 } else { times.iter().sum::<f64>() / times.len() as f64 };
            table.push_row([
                corpus.name.clone(),
                name.to_owned(),
                percent(successes, corpus.instances.len()),
                crate::report::format_secs(mean),
            ]);
        }
    }
    format!("Ablation — AdaBan optimizations (Sec. 3.2.4)\n{}", table.render())
}

/// Engine ablation: the effect of the session d-tree cache (keyed by
/// canonical lineage) on the total knowledge-compilation work per corpus.
pub fn engine_cache(config: &HarnessConfig) -> String {
    let mut table = TextTable::new([
        "Dataset",
        "Instances",
        "Cache hits",
        "Steps (cached)",
        "Steps (uncached)",
        "Saved",
    ]);
    for corpus in config.corpora() {
        let lineages: Vec<&Dnf> = corpus.instances.iter().map(|i| &i.lineage).collect();
        let cmp = compare_cache(&lineages, config);
        table.push_row([
            corpus.name.clone(),
            cmp.instances.to_string(),
            cmp.cache_hits.to_string(),
            cmp.cached_steps.to_string(),
            cmp.uncached_steps.to_string(),
            percent(
                (cmp.uncached_steps - cmp.cached_steps.min(cmp.uncached_steps)) as usize,
                cmp.uncached_steps.max(1) as usize,
            ),
        ]);
    }
    format!("Engine — d-tree cache effect (ExaBan, canonical-lineage keying)\n{}", table.render())
}

/// A ring lineage over `vars` variables starting at `offset` — connected, no
/// common variable, so attribution needs real Shannon-expansion work.
fn ring_lineage(offset: u32, vars: u32) -> Dnf {
    Dnf::from_clauses(
        (0..vars).map(|i| vec![Var(offset + i), Var(offset + (i + 1) % vars)]).collect::<Vec<_>>(),
    )
}

/// Perf trajectory: wall-clock time of batch attribution per thread count.
///
/// Attributes one synthetic corpus of ring lineages (Shannon-expansion-hard,
/// so there is real per-instance compile work) through
/// [`banzhaf_engine::Session::attribute_batch`] at 1, 2 and 4 threads,
/// verifies the per-fact scores are bit-identical across thread counts, and
/// records the measurements to `BENCH_parallel.json` so the perf trajectory
/// is tracked across commits (the CI `bench-regression` job gates on it).
///
/// Measurement hygiene: the whole batch runs once untimed to warm the page
/// cache and allocator, then each thread count is scored by its best of
/// [`SPEEDUP_REPEATS`] runs — per-instance cost is large enough (rings of
/// [`SPEEDUP_RING_VARS`] variables) to dwarf the fork-join overhead that a
/// too-small instance set previously let dominate. Speedup remains
/// hardware-dependent: on a single-core container the honest ratio is ~1;
/// the bit-identity column is the correctness signal everywhere.
pub fn parallel_speedup(config: &HarnessConfig) -> String {
    let instances = SPEEDUP_INSTANCES * config.scale.max(1);
    // Distinct variable ranges per instance; the attribution cache is off, so
    // every instance costs one full compilation.
    let lineages: Vec<Dnf> = (0..instances)
        .map(|i| ring_lineage(i as u32 * (SPEEDUP_RING_VARS + 1), SPEEDUP_RING_VARS))
        .collect();
    let refs: Vec<&Dnf> = lineages.iter().collect();

    let batch_values = |threads: usize| -> (f64, Vec<HashMap<Var, banzhaf_arith::Natural>>) {
        let engine = Engine::new(
            EngineConfig::new(Algorithm::ExaBan)
                .with_cache_config(CacheConfig::disabled())
                .with_threads(threads),
        );
        let mut session = engine.session();
        let start = Instant::now();
        let results = session.attribute_batch(&refs, BatchOptions::default());
        let secs = start.elapsed().as_secs_f64();
        let values = results
            .into_iter()
            .map(|r| r.expect("unbounded budget").exact_values().expect("ExaBan is exact"))
            .collect();
        (secs, values)
    };

    // Warmup: one untimed full batch so the first measured run does not pay
    // for page faults and allocator growth.
    let (_, reference) = batch_values(1);

    // Interleaved rounds — 1, 2, 4, 1, 2, 4, … — so every thread count
    // samples the same phases of whatever load/frequency drift the machine
    // has; the best round per count is scored. (Measuring all repeats of one
    // count back-to-back lets drift masquerade as speedup or regression.)
    const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
    let mut best = [f64::INFINITY; THREAD_COUNTS.len()];
    let mut identical = [true; THREAD_COUNTS.len()];
    for _ in 0..SPEEDUP_REPEATS {
        for (slot, &threads) in THREAD_COUNTS.iter().enumerate() {
            let (secs, values) = batch_values(threads);
            best[slot] = best[slot].min(secs);
            identical[slot] &= values == reference;
        }
    }
    let t1 = best[0];

    let mut table =
        TextTable::new(["Threads (effective)", "Wall (best)", "Speedup", "Bit-identical"]);
    let mut runs: Vec<(usize, usize, f64, bool)> = Vec::new();
    for (slot, &threads) in THREAD_COUNTS.iter().enumerate() {
        // `ThreadPool::new` clamps to the machine's cores; report both the
        // requested and the effective worker count so a single-core run is
        // transparently a sequential re-measurement, not a fake speedup.
        let effective = banzhaf_par::ThreadPool::new(threads).threads();
        table.push_row([
            format!("{threads} ({effective})"),
            crate::report::format_secs(best[slot]),
            format!("{:.2}x", t1 / best[slot]),
            identical[slot].to_string(),
        ]);
        runs.push((threads, effective, best[slot], identical[slot]));
    }

    let bit_identical = runs.iter().all(|&(_, _, _, ok)| ok);
    let json = format!(
        "{{\n  \"experiment\": \"parallel_speedup\",\n  \"algorithm\": \"ExaBan\",\n  \
         \"instances\": {instances},\n  \"ring_vars\": {SPEEDUP_RING_VARS},\n  \
         \"repeats\": {SPEEDUP_REPEATS},\n  \
         \"bit_identical\": {bit_identical},\n  \"runs\": [\n{}\n  ]\n}}\n",
        runs.iter()
            .map(|&(threads, effective, secs, _)| format!(
                "    {{\"threads\": {threads}, \"effective_threads\": {effective}, \
                 \"seconds\": {secs:.6}, \"speedup\": {:.3}}}",
                t1 / secs
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let json_note = match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => "recorded to BENCH_parallel.json".to_owned(),
        Err(e) => format!("could not write BENCH_parallel.json: {e}"),
    };
    format!(
        "Perf — batch attribution speedup by thread count ({instances} ring lineages, \
         {SPEEDUP_RING_VARS} vars each, best of {SPEEDUP_REPEATS}; {json_note})\n{}",
        table.render()
    )
}

/// Ring size of the speedup experiment's instances: large enough that one
/// instance costs milliseconds of compile work, so fork-join overhead is
/// noise rather than the signal.
pub const SPEEDUP_RING_VARS: u32 = 30;
/// Instances per scale unit in the speedup experiment.
pub const SPEEDUP_INSTANCES: usize = 16;
/// Timed repetitions per thread count (the best run is scored).
pub const SPEEDUP_REPEATS: usize = 5;

/// Serving throughput: the async front end under a concurrent request mix.
///
/// Builds a workload of repeated isomorphic lineage shapes (distinct variable
/// ids per request, so only canonicalization makes them equal), drives it
/// through an [`banzhaf_serve::AttributionService`] — bounded queue, worker
/// sessions over the engine's shared cross-session cache — and compares
/// against a cold sequential session with the cache disabled:
///
/// * `bit_identical`: every served attribution equals the cold run's.
/// * `serve_rps` vs `sequential_rps`: requests per second with and without
///   the serving layer; the cache makes the served run do strictly less
///   compile work on repeated shapes.
///
/// Emits `BENCH_serve.json` for the CI `bench-regression` gate, which tracks
/// the machine-normalized ratio (`speedup_vs_cold`) rather than the raw rps.
pub fn serve_throughput(config: &HarnessConfig) -> String {
    use banzhaf_serve::{block_on, join_all, AttributionService, RequestOptions, ServeConfig};

    const SHAPE_SIZES: [u32; 4] = [16, 18, 20, 22];
    let reps = 8 * config.scale.max(1);
    // Round-robin the shapes so repeats of one shape are interleaved, the
    // way real repeated queries arrive; every request gets fresh var ids.
    let mut lineages: Vec<Dnf> = Vec::with_capacity(SHAPE_SIZES.len() * reps);
    let mut offset = 0u32;
    for rep in 0..reps {
        for s in 0..SHAPE_SIZES.len() {
            // Rotate the shape order per repetition: still the same four
            // shapes overall, different arrival order each round.
            let vars = SHAPE_SIZES[(s + rep) % SHAPE_SIZES.len()];
            lineages.push(ring_lineage(offset, vars));
            offset += vars + 1;
        }
    }
    let requests = lineages.len();

    // Cold reference: a fresh cache-less sequential session per run.
    let cold_engine = Engine::new(
        EngineConfig::new(Algorithm::ExaBan)
            .with_cache_config(CacheConfig::disabled())
            .with_threads(1),
    );
    let mut cold_session = cold_engine.session();
    let cold_start = Instant::now();
    let cold: Vec<HashMap<Var, banzhaf_arith::Natural>> = lineages
        .iter()
        .map(|l| {
            cold_session
                .attribute(l)
                .expect("unbounded budget")
                .exact_values()
                .expect("ExaBan is exact")
        })
        .collect();
    let sequential_seconds = cold_start.elapsed().as_secs_f64();

    // Served run: all requests in flight at once, workers sharing one cache.
    let workers = config.threads.max(2);
    let service = AttributionService::start(
        ServeConfig::new(EngineConfig::new(Algorithm::ExaBan))
            .with_workers(workers)
            .with_queue_capacity(requests),
    );
    let serve_start = Instant::now();
    let tickets: Vec<_> = lineages
        .iter()
        .map(|l| {
            service
                .submit(l.clone(), RequestOptions::default())
                .expect("queue sized to the workload")
        })
        .collect();
    let outcomes = block_on(join_all(tickets));
    let serve_seconds = serve_start.elapsed().as_secs_f64();
    let served: Vec<HashMap<Var, banzhaf_arith::Natural>> = outcomes
        .into_iter()
        .map(|o| o.expect("unbounded budgets").exact_values().expect("ExaBan is exact"))
        .collect();

    let bit_identical = served == cold;
    let cache = service.engine_stats().cache;
    let stats = service.stats();
    let serve_rps = requests as f64 / serve_seconds;
    let sequential_rps = requests as f64 / sequential_seconds;
    let speedup_vs_cold = sequential_seconds / serve_seconds;

    let mut table = TextTable::new(["Path", "Wall", "Requests/s", "Cache hits", "Bit-identical"]);
    table.push_row([
        "cold sequential (no cache)".to_owned(),
        crate::report::format_secs(sequential_seconds),
        format!("{sequential_rps:.1}"),
        "0".to_owned(),
        "reference".to_owned(),
    ]);
    table.push_row([
        format!("served ({workers} workers, shared cache)"),
        crate::report::format_secs(serve_seconds),
        format!("{serve_rps:.1}"),
        cache.hits.to_string(),
        bit_identical.to_string(),
    ]);

    let json = format!(
        "{{\n  \"experiment\": \"serve_throughput\",\n  \"algorithm\": \"ExaBan\",\n  \
         \"requests\": {requests},\n  \"workers\": {workers},\n  \
         \"serve_seconds\": {serve_seconds:.6},\n  \"serve_rps\": {serve_rps:.3},\n  \
         \"sequential_seconds\": {sequential_seconds:.6},\n  \
         \"sequential_rps\": {sequential_rps:.3},\n  \
         \"speedup_vs_cold\": {speedup_vs_cold:.3},\n  \
         \"cache_hits\": {},\n  \"cache_insertions\": {},\n  \"cache_evictions\": {},\n  \
         \"completed\": {},\n  \"rejected\": {},\n  \
         \"bit_identical\": {bit_identical}\n}}\n",
        cache.hits, cache.insertions, cache.evictions, stats.completed, stats.rejected,
    );
    let json_note = match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => "recorded to BENCH_serve.json".to_owned(),
        Err(e) => format!("could not write BENCH_serve.json: {e}"),
    };
    format!(
        "Serve — async front-end throughput ({requests} requests over {} ring shapes, \
         {json_note})\n{}",
        SHAPE_SIZES.len(),
        table.render()
    )
}

/// Replicates the engine's *previous* cache keying — rename variables by
/// first occurrence across the label-sorted clause list, then sort the
/// renamed clauses — so `canon_hit_rate` can report the hit rate that scheme
/// would have scored on the same request stream. Kept in the bench layer
/// only: the engine now keys by the refinement-based canonical form.
fn first_occurrence_key(lineage: &Dnf) -> (usize, Vec<Vec<u32>>) {
    let mut ids: HashMap<Var, u32> = HashMap::with_capacity(lineage.num_vars());
    let mut rename = |v: Var| -> u32 {
        let next = ids.len() as u32;
        *ids.entry(v).or_insert(next)
    };
    let mut clauses: Vec<Vec<u32>> =
        lineage.clauses().iter().map(|c| c.iter().map(&mut rename).collect()).collect();
    for v in lineage.universe().iter() {
        rename(v);
    }
    for c in &mut clauses {
        c.sort_unstable();
    }
    clauses.sort_unstable();
    (ids.len(), clauses)
}

/// A random isomorph of `phi`: every variable mapped through a random
/// bijection onto a shuffled, strided, offset id block, and the clause order
/// scrambled (the `Dnf` constructor re-sorts, but the sort order depends on
/// the new labels — the exact sensitivity that defeated first-occurrence
/// keying).
fn random_isomorph(phi: &Dnf, seed: u64) -> Dnf {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let originals: Vec<Var> = phi.universe().iter().collect();
    let mut targets: Vec<u32> = (0..originals.len() as u32).collect();
    for i in (1..targets.len()).rev() {
        let j = rng.gen_range(0..=i);
        targets.swap(i, j);
    }
    let offset: u32 = rng.gen_range(0..64);
    let stride: u32 = rng.gen_range(1..4);
    let map: HashMap<Var, Var> =
        originals.iter().zip(&targets).map(|(&v, &t)| (v, Var(offset + t * stride))).collect();
    let mut clauses: Vec<Vec<Var>> =
        phi.clauses().iter().map(|c| c.iter().map(|v| map[&v]).collect()).collect();
    for i in (1..clauses.len()).rev() {
        let j = rng.gen_range(0..=i);
        clauses.swap(i, j);
    }
    Dnf::from_clauses(clauses)
}

/// The `canon_hit_rate` request stream: `reps` random isomorphs of each of a
/// handful of label-sensitive base shapes (ring, path, star, double star,
/// clique — shapes whose label order the replaced keying was sensitive to),
/// round-robined the way repeated queries arrive. Returns the shape count
/// and the stream; everything is seeded, so the stream — and therefore the
/// gated hit rates — is deterministic.
fn canon_request_stream(config: &HarnessConfig) -> (usize, Vec<Dnf>) {
    let base_shapes: Vec<(&str, Dnf)> = vec![
        ("ring10", ring_lineage(0, 10)),
        (
            "path12",
            Dnf::from_clauses((0..11u32).map(|i| vec![Var(i), Var(i + 1)]).collect::<Vec<_>>()),
        ),
        ("star8", Dnf::from_clauses((1..8u32).map(|i| vec![Var(0), Var(i)]).collect::<Vec<_>>())),
        (
            "doublestar8",
            Dnf::from_clauses(vec![
                vec![Var(0), Var(1)],
                vec![Var(0), Var(2)],
                vec![Var(0), Var(3)],
                vec![Var(3), Var(4)],
                vec![Var(3), Var(5)],
                vec![Var(3), Var(6)],
            ]),
        ),
        (
            "clique4",
            Dnf::from_clauses(vec![
                vec![Var(0), Var(1)],
                vec![Var(0), Var(2)],
                vec![Var(0), Var(3)],
                vec![Var(1), Var(2)],
                vec![Var(1), Var(3)],
                vec![Var(2), Var(3)],
            ]),
        ),
    ];
    let reps = 6 * config.scale.max(1);
    let mut lineages: Vec<Dnf> = Vec::with_capacity(base_shapes.len() * reps);
    for rep in 0..reps {
        for (shape_index, (_, shape)) in base_shapes.iter().enumerate() {
            let seed = config
                .seed
                .wrapping_add(0xCA_0000)
                .wrapping_add((rep * base_shapes.len() + shape_index) as u64);
            lineages.push(random_isomorph(shape, seed));
        }
    }
    (base_shapes.len(), lineages)
}

/// Attributes every lineage of the stream through `session` and returns the
/// per-fact exact values, the unit of the bit-identity comparisons.
fn exact_value_stream(
    session: &mut banzhaf_engine::Session,
    lineages: &[Dnf],
) -> Vec<HashMap<Var, banzhaf_arith::Natural>> {
    lineages
        .iter()
        .map(|l| {
            session.attribute(l).expect("unbounded budget").exact_values().expect("ExaBan is exact")
        })
        .collect()
}

/// Canonicalization payoff: shared-cache hit rate on a permuted/renamed
/// request stream, against the first-occurrence keying it replaced.
///
/// Replays the `canon_request_stream` (fresh variable bijection and clause
/// permutation per request) three ways:
///
/// * a **cold** cache-less sequential session — the bit-identity reference;
/// * a cached **engine** session — its `CacheStats` yield `canon_hit_rate`,
///   the canonicalization cost (`canon_steps`) and the compile steps the
///   hits saved;
/// * an **`AttributionService`** with concurrent workers — the end-to-end
///   serving path over the same shared cache.
///
/// The report contrasts `canon_hit_rate` with the rate the old
/// first-occurrence keying would have scored on the identical stream
/// (`naive_hit_rate`, replayed via `first_occurrence_key`); the gap is the
/// PR's payoff. Emits `BENCH_canon.json` for the CI `bench-regression` gate,
/// which requires `bit_identical`, a strictly higher canonical hit rate than
/// the naive one, and the baseline floor from `BENCH_baseline.json`.
#[allow(clippy::too_many_lines)]
pub fn canon_hit_rate(config: &HarnessConfig) -> String {
    use banzhaf_serve::{block_on, join_all, AttributionService, RequestOptions, ServeConfig};

    let (shapes, lineages) = canon_request_stream(config);
    let requests = lineages.len();
    let reps = requests / shapes;

    // What the replaced first-occurrence keying would have scored on the
    // exact same stream.
    let mut seen_naive: std::collections::HashSet<(usize, Vec<Vec<u32>>)> =
        std::collections::HashSet::new();
    let naive_hits =
        lineages.iter().filter(|l| !seen_naive.insert(first_occurrence_key(l))).count();
    let naive_hit_rate = naive_hits as f64 / requests as f64;

    // Cold reference: cache-less sequential session.
    let cold_engine = Engine::new(
        EngineConfig::new(Algorithm::ExaBan)
            .with_cache_config(CacheConfig::disabled())
            .with_threads(1),
    );
    let mut cold_session = cold_engine.session();
    let cold = exact_value_stream(&mut cold_session, &lineages);
    let cold_compile_steps = cold_session.stats().compile_steps;

    // Cached engine session over the same stream.
    let engine = Engine::new(EngineConfig::new(Algorithm::ExaBan).with_threads(1));
    let mut session = engine.session();
    let cached = exact_value_stream(&mut session, &lineages);
    let canon_hits = engine.stats().cache.hits;
    let canon_hit_rate = canon_hits as f64 / requests as f64;
    let cached_compile_steps = session.stats().compile_steps;
    let canon_steps = session.stats().canon_steps;
    let canon_searches = session.stats().canon_searches;
    let prekey_skips = session.stats().prekey_skips;

    // End-to-end: the serving layer over one shared cache.
    let workers = config.threads.max(2);
    let service = AttributionService::start(
        ServeConfig::new(EngineConfig::new(Algorithm::ExaBan))
            .with_workers(workers)
            .with_queue_capacity(requests),
    );
    let tickets: Vec<_> = lineages
        .iter()
        .map(|l| {
            service
                .submit(l.clone(), RequestOptions::default())
                .expect("queue sized to the workload")
        })
        .collect();
    let served: Vec<HashMap<Var, banzhaf_arith::Natural>> = block_on(join_all(tickets))
        .into_iter()
        .map(|o| o.expect("unbounded budgets").exact_values().expect("ExaBan is exact"))
        .collect();
    let serve_stats = service.engine_stats().cache;

    let bit_identical = cached == cold && served == cold;

    let mut table = TextTable::new([
        "Keying / path",
        "Hits",
        "Hit rate",
        "Compile steps",
        "Canon steps",
        "Searches",
        "Prekey skips",
    ]);
    table.push_row([
        "first-occurrence (replaced)".to_owned(),
        naive_hits.to_string(),
        format!("{:.1}%", naive_hit_rate * 100.0),
        "—".to_owned(),
        "0".to_owned(),
        "—".to_owned(),
        "—".to_owned(),
    ]);
    table.push_row([
        "fingerprint+canonical, engine session".to_owned(),
        canon_hits.to_string(),
        format!("{:.1}%", canon_hit_rate * 100.0),
        cached_compile_steps.to_string(),
        canon_steps.to_string(),
        canon_searches.to_string(),
        prekey_skips.to_string(),
    ]);
    table.push_row([
        format!("fingerprint+canonical, served ({workers} workers)"),
        serve_stats.hits.to_string(),
        format!("{:.1}%", serve_stats.hit_rate() * 100.0),
        "—".to_owned(),
        serve_stats.canon_steps.to_string(),
        serve_stats.canon_searches.to_string(),
        serve_stats.prekey_skips.to_string(),
    ]);
    table.push_row([
        "cold (no cache, reference)".to_owned(),
        "0".to_owned(),
        "0.0%".to_owned(),
        cold_compile_steps.to_string(),
        "—".to_owned(),
        "—".to_owned(),
        "—".to_owned(),
    ]);

    let json = format!(
        "{{\n  \"experiment\": \"canon_hit_rate\",\n  \"algorithm\": \"ExaBan\",\n  \
         \"requests\": {requests},\n  \"shapes\": {},\n  \"reps\": {reps},\n  \
         \"canon_hits\": {canon_hits},\n  \"canon_hit_rate\": {canon_hit_rate:.4},\n  \
         \"naive_hits\": {naive_hits},\n  \"naive_hit_rate\": {naive_hit_rate:.4},\n  \
         \"canon_steps\": {canon_steps},\n  \
         \"canon_searches\": {canon_searches},\n  \
         \"prekey_skips\": {prekey_skips},\n  \
         \"cached_compile_steps\": {cached_compile_steps},\n  \
         \"cold_compile_steps\": {cold_compile_steps},\n  \
         \"serve_hits\": {},\n  \"serve_workers\": {workers},\n  \
         \"bit_identical\": {bit_identical}\n}}\n",
        shapes, serve_stats.hits,
    );
    let json_note = match std::fs::write("BENCH_canon.json", &json) {
        Ok(()) => "recorded to BENCH_canon.json".to_owned(),
        Err(e) => format!("could not write BENCH_canon.json: {e}"),
    };
    format!(
        "Canon — shared-cache hit rate on a permuted/renamed request stream \
         ({requests} requests over {shapes} shapes, {json_note})\n{}",
        table.render()
    )
}

/// The live-update repro experiment: drive a seeded insert/delete stream
/// against the mutating Academic- and IMDB-like databases through a
/// [`banzhaf_engine::LiveSession`], check the maintained attributions against
/// a cold re-evaluation after *every* step, and score the compile steps the
/// delta path avoided. Writes `BENCH_update.json` (gated by
/// `bench_gate --update`).
#[allow(clippy::too_many_lines)]
pub fn update_stream(config: &HarnessConfig) -> String {
    use banzhaf_db::Update;
    use banzhaf_workloads::{academic_workload, imdb_workload, LiveWorkload};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::fmt::Write as _;

    struct FamilyOutcome {
        name: String,
        updates: u64,
        touched: u64,
        untouched: u64,
        incremental_steps: u64,
        cold_steps: u64,
        cache_hits: u64,
        bit_identical: bool,
    }

    let spec = config.dataset_spec();
    let updates_per_family = 8 * config.scale.max(1) as u64;
    let builders: [fn(&banzhaf_workloads::DatasetSpec) -> LiveWorkload; 2] =
        [academic_workload, imdb_workload];

    let mut families: Vec<FamilyOutcome> = Vec::new();
    for build in builders {
        let workload = build(&spec);
        // Incremental path: a live session with the shared cache on. The
        // engine's bit-identity guarantee is exact for unlimited budgets at
        // any thread count, so `config.threads` is honoured.
        let engine = Engine::new(EngineConfig::new(Algorithm::ExaBan).with_threads(config.threads));
        let mut live = engine.live_session(workload.db.clone());
        for (name, query) in &workload.queries {
            live.register(name.clone(), query.clone());
        }
        // Cold reference: a fresh cache-less sequential session re-evaluates
        // and re-attributes every registered query from scratch after each
        // step — the "no delta path" cost the paper's interactive workloads
        // would otherwise pay.
        let cold_engine = Engine::new(
            EngineConfig::new(Algorithm::ExaBan)
                .with_cache_config(CacheConfig::disabled())
                .with_threads(1),
        );

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_CAFE);
        let mut outcome = FamilyOutcome {
            name: workload.name.clone(),
            updates: 0,
            touched: 0,
            untouched: 0,
            incremental_steps: 0,
            cold_steps: 0,
            cache_hits: 0,
            bit_identical: true,
        };
        // Alternate deletes and re-inserts of facts from the mutable
        // relations: deletions exercise the condition-and-restrict path,
        // re-insertions the pinned delta join (the re-inserted fact gets a
        // fresh id, so its lineage variable differs from the deleted one).
        let mut deleted: Vec<(String, Vec<banzhaf_db::Value>)> = Vec::new();
        for step in 0..updates_per_family {
            let update = if step % 2 == 0 {
                let candidates: Vec<(String, Vec<banzhaf_db::Value>)> = live
                    .db()
                    .endogenous_facts()
                    .filter(|(_, f)| workload.mutable_relations.iter().any(|r| r == f.relation()))
                    .map(|(_, f)| (f.relation().to_owned(), f.values().to_vec()))
                    .collect();
                let (relation, values) = candidates[rng.gen_range(0..candidates.len())].clone();
                deleted.push((relation.clone(), values.clone()));
                Update::delete(relation, values)
            } else {
                let (relation, values) = deleted.pop().expect("a delete precedes every insert");
                Update::insert(relation, values)
            };
            let report = live.apply_update(update).expect("stream updates address live facts");
            outcome.updates += 1;
            outcome.touched += report.touched.len() as u64;
            outcome.untouched += report.untouched;
            outcome.incremental_steps += report.compile_steps;
            outcome.cache_hits += report.cache_hits;

            // Cold re-evaluation of every registered query over the updated
            // database; any divergence in answers, exact Banzhaf values or
            // model counts flips the experiment's bit-identity flag.
            let mut cold_session = cold_engine.session();
            for (name, query) in &workload.queries {
                let cold = cold_session.explain(query, live.db());
                let snapshot = live.attribution(name).expect("query is registered");
                outcome.cold_steps += cold
                    .answers
                    .iter()
                    .filter_map(|a| a.attribution())
                    .map(|a| a.stats.compile_steps)
                    .sum::<u64>();
                let matches = snapshot.answers.len() == cold.answers.len()
                    && snapshot.answers.iter().zip(cold.answers.iter()).all(|(inc, ref_)| {
                        let inc_att = inc.attribution().expect("unbounded budget");
                        let ref_att = ref_.attribution().expect("unbounded budget");
                        inc.tuple == ref_.tuple
                            && inc_att.exact_values() == ref_att.exact_values()
                            && inc_att.model_count == ref_att.model_count
                    });
                if !matches {
                    outcome.bit_identical = false;
                }
            }
        }
        families.push(outcome);
    }

    let total_inc: u64 = families.iter().map(|f| f.incremental_steps).sum();
    let total_cold: u64 = families.iter().map(|f| f.cold_steps).sum();
    let total_updates: u64 = families.iter().map(|f| f.updates).sum();
    let bit_identical = families.iter().all(|f| f.bit_identical);
    let steps_saved_ratio =
        if total_cold == 0 { 0.0 } else { 1.0 - total_inc as f64 / total_cold as f64 };

    let mut table = TextTable::new([
        "Corpus",
        "Updates",
        "Touched",
        "Untouched",
        "Incr. steps",
        "Cold steps",
        "Saved",
        "Bit-identical",
    ]);
    let mut family_json = String::new();
    for f in &families {
        let saved = if f.cold_steps == 0 {
            0.0
        } else {
            1.0 - f.incremental_steps as f64 / f.cold_steps as f64
        };
        table.push_row([
            f.name.clone(),
            f.updates.to_string(),
            f.touched.to_string(),
            f.untouched.to_string(),
            f.incremental_steps.to_string(),
            f.cold_steps.to_string(),
            format!("{:.1}%", saved * 100.0),
            f.bit_identical.to_string(),
        ]);
        if !family_json.is_empty() {
            family_json.push_str(",\n");
        }
        write!(
            family_json,
            "    {{\"name\": \"{}\", \"updates\": {}, \"touched\": {}, \"untouched\": {}, \
             \"incremental_steps\": {}, \"cold_steps\": {}, \"cache_hits\": {}, \
             \"steps_saved_ratio\": {:.6}, \"bit_identical\": {}}}",
            f.name,
            f.updates,
            f.touched,
            f.untouched,
            f.incremental_steps,
            f.cold_steps,
            f.cache_hits,
            saved,
            f.bit_identical,
        )
        .expect("writing to a String cannot fail");
    }

    let json = format!(
        "{{\n  \"experiment\": \"update_stream\",\n  \"algorithm\": \"ExaBan\",\n  \
         \"updates\": {total_updates},\n  \"incremental_steps\": {total_inc},\n  \
         \"cold_steps\": {total_cold},\n  \"steps_saved_ratio\": {steps_saved_ratio:.6},\n  \
         \"bit_identical\": {bit_identical},\n  \"families\": [\n{family_json}\n  ]\n}}\n"
    );
    let json_note = match std::fs::write("BENCH_update.json", &json) {
        Ok(()) => "recorded to BENCH_update.json".to_owned(),
        Err(e) => format!("could not write BENCH_update.json: {e}"),
    };
    format!(
        "Live updates — incremental attribution vs cold re-evaluation \
         ({total_updates} updates, verified bit-for-bit after every step, {json_note})\n{}",
        table.render()
    )
}

/// Ring sizes of the degradation experiment's request mix: one size that
/// compiles comfortably under [`DEGRADE_STEP_CAP`], three that cannot.
pub const DEGRADE_SIZES: [u32; 4] = [6, 20, 24, 28];
/// Per-request step cap of the degradation experiment. Size-6 requests fit
/// whether they compile cold (11 steps) or key into the shared cache (~600
/// canonicalization steps); every larger request starves on *both* paths — a
/// cold size-20 compile alone costs 827 steps, its canonical key 4100 — so
/// which requests starve does not depend on how workers race the cache.
pub const DEGRADE_STEP_CAP: u64 = 700;

/// Robustness — availability under budget pressure, with and without the
/// degradation ladder.
///
/// Drives the same request stream (ring lineages of [`DEGRADE_SIZES`], fresh
/// variable ids per request, [`DEGRADE_STEP_CAP`] steps per request) through
/// the serving stack twice:
///
/// * **strict** (the default [`banzhaf_engine::FallbackPolicy::Strict`]):
///   requests whose compile exhausts the cap fail typed (`Interrupted`) —
///   the availability is the fraction of the stream small enough to finish;
/// * **ladder** ([`banzhaf_engine::FallbackPolicy::Ladder`], ExaBan →
///   AdaBan interval → Monte Carlo estimate): starved requests re-attribute
///   on the next rung under its grace budget instead of failing.
///
/// Every answer is checked against an unbounded exact reference: strict
/// completions (and undegraded ladder completions) must match bit for bit,
/// interval-rung answers must bracket the exact value, estimate-rung answers
/// must be finite. Emits `BENCH_degrade.json` — availability per policy,
/// degraded share, per-rung answer histogram — for the CI `bench_gate
/// --degrade` check, which holds the ladder to an availability floor of 1.0
/// at a pressure where strict loses at least half the stream.
#[allow(clippy::too_many_lines)]
pub fn degrade_under_pressure(config: &HarnessConfig) -> String {
    use banzhaf_engine::{FallbackPolicy, Rung, Score};
    use banzhaf_serve::{block_on, join_all, AttributionService, RequestOptions, ServeConfig};
    use std::collections::BTreeMap;
    use std::time::Duration;

    let reps = 3 * config.scale.max(1);

    // Exact references, one per distinct size. Requests are the same shapes
    // shifted to fresh variable ids, so positional mapping (request var
    // `offset + j` ↔ reference var `j`) recovers the comparison.
    let reference: HashMap<u32, HashMap<Var, banzhaf_arith::Natural>> = DEGRADE_SIZES
        .iter()
        .map(|&vars| {
            let exact = Engine::new(
                EngineConfig::new(Algorithm::ExaBan).with_cache_config(CacheConfig::disabled()),
            )
            .session()
            .attribute(&ring_lineage(0, vars))
            .expect("unbounded budget")
            .exact_values()
            .expect("ExaBan is exact");
            (vars, exact)
        })
        .collect();

    let mut lineages: Vec<(u32, u32, Dnf)> = Vec::new();
    let mut offset = 0u32;
    for _ in 0..reps {
        for &vars in &DEGRADE_SIZES {
            lineages.push((vars, offset, ring_lineage(offset, vars)));
            offset += vars + 1;
        }
    }
    let submitted = lineages.len();

    let run_pass = |fallback: Option<&FallbackPolicy>| {
        let service = AttributionService::start(
            ServeConfig::new(EngineConfig::new(Algorithm::ExaBan))
                .with_workers(config.threads.max(2))
                .with_queue_capacity(submitted),
        );
        let tickets: Vec<_> = lineages
            .iter()
            .map(|(_, _, l)| {
                let mut options = RequestOptions::new().with_max_steps(DEGRADE_STEP_CAP);
                if let Some(policy) = fallback {
                    options = options.with_fallback(policy.clone());
                }
                service.submit(l.clone(), options).expect("queue sized to the workload")
            })
            .collect();
        block_on(join_all(tickets))
    };
    let strict = run_pass(None);
    // The stock ladder with a longer interval-rung grace: the default 50ms
    // is sized for interactive requests, where falling through to a cheap
    // estimate beats waiting; here the point is to exercise both rungs, so
    // give AdaBan room to converge on the mid-size rings while the largest
    // still fall through to the Monte Carlo estimate.
    let policy = FallbackPolicy::Ladder(vec![
        Rung::new(Algorithm::AdaBan).with_grace(Duration::from_millis(400)),
        Rung::new(Algorithm::MonteCarlo),
    ]);
    let ladder = run_pass(Some(&policy));

    // Score every answered request against its exact reference. Exact
    // answers (strict completions, undegraded ladder completions) must match
    // bit for bit; degraded answers must bracket (interval) or at least be a
    // finite non-negative estimate.
    let mut exact_bit_identical = true;
    let mut degraded_sound = true;
    let mut degraded = 0usize;
    let mut rung_histogram: BTreeMap<String, u64> = BTreeMap::new();
    for outcomes in [&strict, &ladder] {
        for ((vars, offset, _), outcome) in lineages.iter().zip(outcomes.iter()) {
            let Ok(att) = outcome else { continue };
            let exact = &reference[vars];
            let is_degraded = att.degradation.is_some();
            for j in 0..*vars {
                let want = &exact[&Var(j)];
                match att.value(Var(offset + j)).expect("the universe covers the ring") {
                    Score::Exact(got) => exact_bit_identical &= got == want,
                    Score::Interval(i) => {
                        degraded_sound &= is_degraded && i.lower <= *want && *want <= i.upper;
                    }
                    Score::Estimate(e) => {
                        degraded_sound &= is_degraded && e.is_finite() && *e >= 0.0;
                    }
                    Score::Rational(_) => {
                        // Boolean workloads never produce aggregate scores.
                        exact_bit_identical = false;
                    }
                }
            }
        }
    }
    for att in ladder.iter().flatten() {
        if let Some(d) = &att.degradation {
            degraded += 1;
            *rung_histogram.entry(format!("{:?}", d.rung)).or_insert(0) += 1;
        }
    }

    let strict_answered = strict.iter().filter(|o| o.is_ok()).count();
    let ladder_answered = ladder.iter().filter(|o| o.is_ok()).count();
    let strict_availability = strict_answered as f64 / submitted as f64;
    let ladder_availability = ladder_answered as f64 / submitted as f64;
    let degraded_share = degraded as f64 / submitted as f64;
    let histogram_text = if rung_histogram.is_empty() {
        "none".to_owned()
    } else {
        rung_histogram.iter().map(|(rung, n)| format!("{rung}: {n}")).collect::<Vec<_>>().join(", ")
    };

    let mut table =
        TextTable::new(["Policy", "Answered", "Availability", "Degraded", "Rungs used"]);
    table.push_row([
        "strict (exact or nothing)".to_owned(),
        format!("{strict_answered}/{submitted}"),
        percent(strict_answered, submitted),
        "0".to_owned(),
        "-".to_owned(),
    ]);
    table.push_row([
        "ladder (exact -> interval -> estimate)".to_owned(),
        format!("{ladder_answered}/{submitted}"),
        percent(ladder_answered, submitted),
        degraded.to_string(),
        histogram_text.clone(),
    ]);

    let rungs_json = rung_histogram
        .iter()
        .map(|(rung, n)| format!("    {{\"rung\": \"{rung}\", \"answers\": {n}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"degrade_under_pressure\",\n  \
         \"ladder\": \"ExaBan -> AdaBan -> MonteCarlo\",\n  \
         \"submitted\": {submitted},\n  \"step_cap\": {DEGRADE_STEP_CAP},\n  \
         \"strict_answered\": {strict_answered},\n  \
         \"strict_availability\": {strict_availability:.6},\n  \
         \"ladder_answered\": {ladder_answered},\n  \
         \"ladder_availability\": {ladder_availability:.6},\n  \
         \"degraded\": {degraded},\n  \"degraded_share\": {degraded_share:.6},\n  \
         \"exact_bit_identical\": {exact_bit_identical},\n  \
         \"degraded_sound\": {degraded_sound},\n  \"rungs\": [\n{rungs_json}\n  ]\n}}\n"
    );
    let json_note = match std::fs::write("BENCH_degrade.json", &json) {
        Ok(()) => "recorded to BENCH_degrade.json".to_owned(),
        Err(e) => format!("could not write BENCH_degrade.json: {e}"),
    };
    format!(
        "Robustness — availability under a {DEGRADE_STEP_CAP}-step budget, strict vs \
         degradation ladder ({submitted} requests, {json_note})\n{}",
        table.render()
    )
}

/// Warm-start payoff: cold-run a permuted/renamed request stream, snapshot
/// the cache, replay the stream in a **fresh** engine warm-started from the
/// snapshot, and score the compile steps and wall clock the snapshot saved.
///
/// Three runs over the identical `canon_request_stream`:
///
/// * a **cold** engine — compiles every distinct shape once; its cache is
///   then written to disk via `Engine::save_cache`;
/// * a **warm-started** fresh engine (`CacheConfig::warm_start`) — every
///   shape in the stream must be served from the loaded snapshot, values
///   transferring through the persisted canonical witnesses;
/// * a warm-started **sharded** engine (2 shards) — the same snapshot
///   re-routed across shards at load, proving snapshots are shard-count
///   independent.
///
/// All three value streams must be bit-identical. Emits `BENCH_persist.json`
/// for the CI `bench-regression` gate (`bench_gate --persist`), which
/// requires `bit_identical`, nonzero savings, and the steps-saved floor from
/// `BENCH_baseline.json`.
#[allow(clippy::too_many_lines)]
pub fn warm_start(config: &HarnessConfig) -> String {
    let (shapes, lineages) = canon_request_stream(config);
    let requests = lineages.len();
    let snapshot_path = std::env::temp_dir().join(format!(
        "banzhaf-warm-start-{}-{:x}.bzc",
        std::process::id(),
        config.seed
    ));

    // Cold run: a fresh engine compiles the stream, then snapshots.
    let cold_wall = Instant::now();
    let cold_engine = Engine::new(EngineConfig::new(Algorithm::ExaBan).with_threads(1));
    let mut cold_session = cold_engine.session();
    let cold = exact_value_stream(&mut cold_session, &lineages);
    let cold_wall = cold_wall.elapsed();
    let cold_compile_steps = cold_session.stats().compile_steps;
    let snapshot_entries =
        cold_engine.save_cache(&snapshot_path).expect("snapshot written to the temp dir");
    let snapshot_bytes = std::fs::metadata(&snapshot_path).map(|m| m.len()).unwrap_or(0);

    // Warm replay: a fresh engine loads the snapshot at construction and
    // replays the identical stream.
    let warm_config = banzhaf_engine::CacheConfig::new().with_warm_start(&snapshot_path);
    let warm_wall = Instant::now();
    let warm_engine = Engine::new(
        EngineConfig::new(Algorithm::ExaBan).with_cache_config(warm_config.clone()).with_threads(1),
    );
    let mut warm_session = warm_engine.session();
    let warm = exact_value_stream(&mut warm_session, &lineages);
    let warm_wall = warm_wall.elapsed();
    let warm_compile_steps = warm_session.stats().compile_steps;
    let warm_stats = warm_engine.stats().cache;

    // Sharded warm replay: the same snapshot re-routed across 2 shards.
    let sharded_engine = Engine::new(
        EngineConfig::new(Algorithm::ExaBan)
            .with_cache_config(warm_config.with_shards(2))
            .with_threads(1),
    );
    let mut sharded_session = sharded_engine.session();
    let sharded = exact_value_stream(&mut sharded_session, &lineages);
    let sharded_compile_steps = sharded_session.stats().compile_steps;
    let sharded_snapshot = sharded_engine.stats();

    let _ = std::fs::remove_file(&snapshot_path);

    let bit_identical = warm == cold && sharded == cold;
    let steps_saved = cold_compile_steps.saturating_sub(warm_compile_steps);
    let steps_saved_ratio =
        if cold_compile_steps > 0 { steps_saved as f64 / cold_compile_steps as f64 } else { 0.0 };
    let wall_saved_ratio = if cold_wall.as_secs_f64() > 0.0 {
        1.0 - warm_wall.as_secs_f64() / cold_wall.as_secs_f64()
    } else {
        0.0
    };

    let mut table =
        TextTable::new(["Path", "Compile steps", "Cache hits", "Snapshot entries", "Wall"]);
    table.push_row([
        "cold (fresh cache, then save)".to_owned(),
        cold_compile_steps.to_string(),
        cold_engine.stats().cache.hits.to_string(),
        snapshot_entries.to_string(),
        format!("{:.1} ms", cold_wall.as_secs_f64() * 1e3),
    ]);
    table.push_row([
        "warm-started fresh engine".to_owned(),
        warm_compile_steps.to_string(),
        warm_stats.hits.to_string(),
        warm_stats.snapshot_entries.to_string(),
        format!("{:.1} ms", warm_wall.as_secs_f64() * 1e3),
    ]);
    table.push_row([
        format!("warm-started, {} shards", sharded_snapshot.shards.len()),
        sharded_compile_steps.to_string(),
        sharded_snapshot.cache.hits.to_string(),
        sharded_snapshot.cache.snapshot_entries.to_string(),
        "—".to_owned(),
    ]);

    let json = format!(
        "{{\n  \"experiment\": \"warm_start\",\n  \"algorithm\": \"ExaBan\",\n  \
         \"requests\": {requests},\n  \"shapes\": {shapes},\n  \
         \"cold_compile_steps\": {cold_compile_steps},\n  \
         \"warm_compile_steps\": {warm_compile_steps},\n  \
         \"sharded_compile_steps\": {sharded_compile_steps},\n  \
         \"steps_saved\": {steps_saved},\n  \
         \"steps_saved_ratio\": {steps_saved_ratio:.4},\n  \
         \"cold_wall_ms\": {:.3},\n  \"warm_wall_ms\": {:.3},\n  \
         \"wall_saved_ratio\": {wall_saved_ratio:.4},\n  \
         \"snapshot_entries\": {snapshot_entries},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \
         \"snapshot_loads\": {},\n  \"snapshot_rejects\": {},\n  \
         \"warm_hits\": {},\n  \"shards\": {},\n  \
         \"bit_identical\": {bit_identical}\n}}\n",
        cold_wall.as_secs_f64() * 1e3,
        warm_wall.as_secs_f64() * 1e3,
        warm_stats.snapshot_loads,
        warm_stats.snapshot_rejects,
        warm_stats.hits,
        sharded_snapshot.shards.len(),
    );
    let json_note = match std::fs::write("BENCH_persist.json", &json) {
        Ok(()) => "recorded to BENCH_persist.json".to_owned(),
        Err(e) => format!("could not write BENCH_persist.json: {e}"),
    };
    format!(
        "Warm start — snapshot/reload of the shared cache on a permuted/renamed \
         stream ({requests} requests over {shapes} shapes, {json_note})\n{}",
        table.render()
    )
}

/// The aggregate-attribution repro experiment: exact aggregate Banzhaf
/// values (SUM and COUNT) over a TPC-H-like supplier/lineitem workload.
///
/// A seeded generator fills `Supp(s, n)` / `Item(s, p, v)` relations, the
/// query layer evaluates `SUM(V)` and `COUNT(*)` revenue queries into
/// per-answer [`banzhaf_engine::WeightedDnf`] lineages, and the engine
/// attributes every lineage under four configurations — cache on/off ×
/// 1/2 threads. Three checks:
///
/// * **agreement** — every per-fact value equals the brute-force definition
///   (`Σ over all 2^n worlds of val(Y ∪ {f}) − val(Y)`), so
///   `agreement_rate` must be exactly 1.0;
/// * **bit identity** — all four configurations produce identical rationals;
/// * **kind keying** — re-attributing a COUNT twin of a SUM lineage (same
///   Boolean skeleton) must *miss* the cache: a SUM entry never serves a
///   COUNT request.
///
/// Emits `BENCH_aggregate.json` for the CI `bench-regression` gate
/// (`bench_gate --aggregate`).
#[allow(clippy::too_many_lines)]
pub fn aggregate_attribution(config: &HarnessConfig) -> String {
    use banzhaf_boolean::WeightedDnf;
    use banzhaf_engine::{evaluate_aggregate, Score};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    // Seeded TPC-H-flavoured instance. Sizes are capped so the brute-force
    // cross-check (2^n worlds per lineage) stays trivial.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA66E_CA7E);
    let suppliers = 4 + 2 * config.scale.min(4);
    let mut db = Database::new();
    db.add_relation("Supp", 2);
    db.add_relation("Item", 3);
    for s in 0..suppliers {
        let s = i64::try_from(s).expect("supplier count fits in i64");
        db.insert_endogenous("Supp", vec![s.into(), format!("s{s}").into()])
            .expect("fresh supplier row");
        for p in 0..rng.gen_range(1..=3i64) {
            let value = rng.gen_range(1..=20i64);
            let row = vec![s.into(), p.into(), value.into()];
            if rng.gen_bool(0.25) {
                db.insert_exogenous("Item", row).expect("fresh exogenous item row");
            } else {
                db.insert_endogenous("Item", row).expect("fresh endogenous item row");
            }
        }
    }

    let sum_query = parse_program("Rev(N, SUM(V)) :- Supp(S, N), Item(S, P, V).")
        .expect("the SUM revenue query parses");
    let count_query = parse_program("Cnt(N, COUNT(*)) :- Supp(S, N), Item(S, P, V).")
        .expect("the COUNT orders query parses");
    let sum_result = evaluate_aggregate(&sum_query, &db).expect("SUM evaluation succeeds");
    let count_result = evaluate_aggregate(&count_query, &db).expect("COUNT evaluation succeeds");
    let lineages: Vec<WeightedDnf> = sum_result
        .answers()
        .iter()
        .chain(count_result.answers())
        .map(|a| a.lineage.clone())
        .collect();
    let sum_answers = sum_result.answers().len();
    let count_answers = count_result.answers().len();
    let refs: Vec<&WeightedDnf> = lineages.iter().collect();

    // One value stream per (cache, threads) configuration; all four must be
    // bit-identical. On this container parallelism is a plan, not extra
    // cores, so identity across thread counts is the correctness signal.
    let run_stream = |cache_on: bool, threads: usize| {
        let cache = if cache_on { CacheConfig::new() } else { CacheConfig::disabled() };
        let engine = Engine::new(
            EngineConfig::new(Algorithm::ExaBan).with_cache_config(cache).with_threads(threads),
        );
        let mut session = engine.session();
        let values: Vec<Vec<(Var, banzhaf_engine::Rational)>> = session
            .attribute_aggregate_batch(&refs, BatchOptions::default())
            .into_iter()
            .map(|outcome| {
                let attribution = outcome.expect("no budget is set in this experiment");
                let mut scores: Vec<(Var, banzhaf_engine::Rational)> = attribution
                    .values
                    .into_iter()
                    .map(|(var, score)| match score {
                        Score::Rational(r) => (var, r),
                        other => panic!("exact aggregate backends return rationals, got {other:?}"),
                    })
                    .collect();
                scores.sort_unstable_by_key(|(var, _)| *var);
                scores
            })
            .collect();
        (values, engine)
    };

    let wall = Instant::now();
    let (baseline, cached_engine) = run_stream(true, 1);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let variants = [run_stream(false, 1).0, run_stream(true, 2).0, run_stream(false, 2).0];
    let bit_identical = variants.iter().all(|v| *v == baseline);

    // Brute-force cross-check of the baseline stream.
    let mut checked = 0usize;
    let mut agreed = 0usize;
    for (lineage, scores) in lineages.iter().zip(&baseline) {
        for (var, value) in scores {
            checked += 1;
            if *value == lineage.brute_force_aggregate_banzhaf(*var) {
                agreed += 1;
            }
        }
    }
    let agreement_rate = if checked > 0 { agreed as f64 / checked as f64 } else { 0.0 };

    // Kind keying, on a fresh engine so only the SUM entry is cached: a
    // COUNT twin of the first SUM lineage shares the Boolean skeleton but
    // must not be served from the SUM entry (first COUNT attribution
    // misses and inserts; the second one hits its own entry).
    let sum_lineage = &lineages[0];
    let count_twin =
        WeightedDnf::from_weighted_clauses(
            banzhaf_boolean::AggregateKind::Count,
            sum_lineage.dnf().clauses().iter().map(|clause| {
                (clause.iter().collect::<Vec<Var>>(), banzhaf_engine::Rational::one())
            }),
        );
    let kind_engine = Engine::new(EngineConfig::new(Algorithm::ExaBan).with_threads(1));
    let mut kind_session = kind_engine.session();
    kind_session.attribute_aggregate(sum_lineage).expect("no budget is set");
    let hits_before = kind_engine.stats().cache.hits;
    let twin = kind_session.attribute_aggregate(&count_twin).expect("no budget is set");
    let twin_missed = kind_engine.stats().cache.hits == hits_before;
    kind_session.attribute_aggregate(&count_twin).expect("no budget is set");
    let twin_rehits = kind_engine.stats().cache.hits == hits_before + 1;
    let kind_keying_separate = twin_missed && twin_rehits;
    let twin_agrees = twin.values.iter().all(|(var, score)| {
        matches!(score, Score::Rational(r) if *r == count_twin.brute_force_aggregate_banzhaf(*var))
    });

    let cache_stats = cached_engine.stats().cache;
    let mut table = TextTable::new(["Check", "Result"]);
    table.push_row(["lineages (SUM + COUNT answers)".to_owned(), lineages.len().to_string()]);
    table.push_row(["per-fact values checked".to_owned(), checked.to_string()]);
    table.push_row(["brute-force agreement".to_owned(), format!("{agreed}/{checked}")]);
    table.push_row([
        "bit-identical across cache on/off × threads 1/2".to_owned(),
        bit_identical.to_string(),
    ]);
    table.push_row([
        "COUNT twin of SUM skeleton misses cache".to_owned(),
        kind_keying_separate.to_string(),
    ]);
    table.push_row([
        "cache hits / insertions".to_owned(),
        format!("{} / {}", cache_stats.hits, cache_stats.insertions),
    ]);

    let json = format!(
        "{{\n  \"experiment\": \"aggregate_attribution\",\n  \"algorithm\": \"ExaBan\",\n  \
         \"lineages\": {},\n  \"sum_answers\": {sum_answers},\n  \
         \"count_answers\": {count_answers},\n  \"values_checked\": {checked},\n  \
         \"agreement_rate\": {agreement_rate:.4},\n  \
         \"bit_identical\": {bit_identical},\n  \
         \"kind_keying_separate\": {kind_keying_separate},\n  \
         \"count_twin_agrees\": {twin_agrees},\n  \
         \"cache_hits\": {},\n  \"cache_insertions\": {},\n  \
         \"wall_ms\": {wall_ms:.3}\n}}\n",
        lineages.len(),
        cache_stats.hits,
        cache_stats.insertions,
    );
    let json_note = match std::fs::write("BENCH_aggregate.json", &json) {
        Ok(()) => "recorded to BENCH_aggregate.json".to_owned(),
        Err(e) => format!("could not write BENCH_aggregate.json: {e}"),
    };
    format!(
        "Aggregate attribution — exact SUM/COUNT Banzhaf over a TPC-H-like \
         workload ({} lineages, {json_note})\n{}",
        lineages.len(),
        table.render()
    )
}

/// Runs the full sweep once and renders all sweep-based tables.
pub fn run_all(config: &HarnessConfig) -> String {
    let mut out = String::new();
    out.push_str(&table1(config));
    out.push('\n');
    let records = run_sweep(config);
    out.push_str(&table2(&records, config));
    out.push('\n');
    out.push_str(&table3(&records));
    out.push('\n');
    out.push_str(&table4(&records));
    out.push('\n');
    out.push_str(&fig4(&records));
    out.push('\n');
    out.push_str(&table5(&records));
    out.push('\n');
    out.push_str(&table6(&records));
    out.push('\n');
    out.push_str(&table7(&records));
    out.push('\n');
    out.push_str(&fig5(&records, config));
    out.push('\n');
    out.push_str(&table8(&records, config));
    out.push('\n');
    out.push_str(&table9(config));
    out.push('\n');
    out.push_str(&app_d());
    out.push('\n');
    out.push_str(&ablation_heuristic(config));
    out.push('\n');
    out.push_str(&ablation_adaban(config));
    out.push('\n');
    out.push_str(&engine_cache(config));
    out.push('\n');
    out.push_str(&parallel_speedup(config));
    out.push('\n');
    out.push_str(&serve_throughput(config));
    out.push('\n');
    out.push_str(&canon_hit_rate(config));
    out.push('\n');
    out.push_str(&warm_start(config));
    out.push('\n');
    out.push_str(&update_stream(config));
    out.push('\n');
    out.push_str(&degrade_under_pressure(config));
    out.push('\n');
    out.push_str(&aggregate_attribution(config));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny_config() -> HarnessConfig {
        HarnessConfig { timeout: Duration::from_millis(50), scale: 1, ..Default::default() }
    }

    #[test]
    fn table1_renders_three_corpora() {
        let report = table1(&tiny_config());
        assert!(report.contains("Academic-like"));
        assert!(report.contains("IMDB-like"));
        assert!(report.contains("TPC-H-like"));
    }

    #[test]
    fn app_d_reports_disagreement() {
        let report = app_d();
        assert!(report.contains("Banzhaf(R(a1)) = 62867"));
        assert!(report.contains("Banzhaf(R(a2)) = 60435"));
        assert!(report.contains("disagree"));
    }

    #[test]
    fn engine_cache_report_covers_all_corpora() {
        let report = engine_cache(&tiny_config());
        assert!(report.contains("d-tree cache effect"));
        assert!(report.contains("Academic-like"));
        assert!(report.contains("TPC-H-like"));
    }

    #[test]
    fn canon_hit_rate_beats_first_occurrence_keying() {
        let report = canon_hit_rate(&tiny_config());
        assert!(report.contains("canonical, engine session"), "{report}");
        let json = std::fs::read_to_string("BENCH_canon.json").unwrap();
        let parsed = crate::json::Json::parse(&json).unwrap();
        let canon = parsed.get("canon_hit_rate").unwrap().as_f64().unwrap();
        let naive = parsed.get("naive_hit_rate").unwrap().as_f64().unwrap();
        assert!(
            canon > naive,
            "canonical keying must strictly beat first-occurrence keying: {canon} vs {naive}"
        );
        // Every isomorph after the first of each shape hits: the canonical
        // key is complete on these shapes.
        let requests = parsed.get("requests").unwrap().as_f64().unwrap();
        let shapes = parsed.get("shapes").unwrap().as_f64().unwrap();
        let hits = parsed.get("canon_hits").unwrap().as_f64().unwrap();
        assert_eq!(hits, requests - shapes, "{json}");
        assert_eq!(parsed.get("bit_identical").unwrap().as_bool(), Some(true), "{json}");
    }

    #[test]
    fn warm_start_saves_the_whole_replayed_stream() {
        let report = warm_start(&tiny_config());
        assert!(report.contains("Warm start"), "{report}");
        let json = std::fs::read_to_string("BENCH_persist.json").unwrap();
        let parsed = crate::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.get("bit_identical").unwrap().as_bool(), Some(true), "{json}");
        // Every request of the replayed stream is served from the snapshot:
        // the warm engine compiles nothing at all.
        assert_eq!(parsed.get("warm_compile_steps").unwrap().as_f64(), Some(0.0), "{json}");
        assert_eq!(parsed.get("sharded_compile_steps").unwrap().as_f64(), Some(0.0), "{json}");
        assert_eq!(parsed.get("steps_saved_ratio").unwrap().as_f64(), Some(1.0), "{json}");
        assert_eq!(parsed.get("snapshot_rejects").unwrap().as_f64(), Some(0.0), "{json}");
        let requests = parsed.get("requests").unwrap().as_f64().unwrap();
        assert_eq!(parsed.get("warm_hits").unwrap().as_f64(), Some(requests), "{json}");
        assert!(parsed.get("snapshot_bytes").unwrap().as_f64().unwrap() > 0.0, "{json}");
    }

    #[test]
    fn aggregate_attribution_agrees_with_brute_force() {
        let report = aggregate_attribution(&tiny_config());
        assert!(report.contains("Aggregate attribution"), "{report}");
        let json = std::fs::read_to_string("BENCH_aggregate.json").unwrap();
        let parsed = crate::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.get("agreement_rate").unwrap().as_f64(), Some(1.0), "{json}");
        assert_eq!(parsed.get("bit_identical").unwrap().as_bool(), Some(true), "{json}");
        assert_eq!(parsed.get("kind_keying_separate").unwrap().as_bool(), Some(true), "{json}");
        assert_eq!(parsed.get("count_twin_agrees").unwrap().as_bool(), Some(true), "{json}");
        assert!(parsed.get("values_checked").unwrap().as_f64().unwrap() > 0.0, "{json}");
    }

    #[test]
    fn degrade_ladder_answers_the_whole_starved_stream() {
        let report = degrade_under_pressure(&tiny_config());
        assert!(report.contains("degradation ladder"), "{report}");
        let json = std::fs::read_to_string("BENCH_degrade.json").unwrap();
        let parsed = crate::json::Json::parse(&json).unwrap();
        // The ladder answers everything at a pressure where strict mode
        // loses at least half the stream.
        assert_eq!(parsed.get("ladder_availability").unwrap().as_f64(), Some(1.0), "{json}");
        assert!(parsed.get("strict_availability").unwrap().as_f64().unwrap() <= 0.5, "{json}");
        // Exact answers stay bit-identical; degraded ones bracket/estimate.
        assert_eq!(parsed.get("exact_bit_identical").unwrap().as_bool(), Some(true), "{json}");
        assert_eq!(parsed.get("degraded_sound").unwrap().as_bool(), Some(true), "{json}");
        assert!(parsed.get("degraded").unwrap().as_f64().unwrap() > 0.0, "{json}");
    }

    #[test]
    fn serve_throughput_is_bit_identical_with_cache_hits() {
        let report = serve_throughput(&tiny_config());
        assert!(report.contains("shared cache"));
        assert!(report.contains("true"), "served run must match the cold run:\n{report}");
        assert!(!report.contains("false"), "bit-identity must hold:\n{report}");
        // The workload repeats 4 shapes 8 times (32 requests): with 2
        // workers each shape is compiled at most twice (both workers racing
        // it cold), leaving at least 32 - 4*2 = 24 shared-cache hits.
        let json = std::fs::read_to_string("BENCH_serve.json").unwrap();
        let parsed = crate::json::Json::parse(&json).unwrap();
        assert!(parsed.get("cache_hits").unwrap().as_f64().unwrap() >= 24.0);
        assert_eq!(parsed.get("bit_identical").unwrap().as_bool(), Some(true));
    }
}
