//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--timeout-ms N] [--scale N] [--epsilon E] [--topk K] [--threads N] <experiment>...
//! repro --all
//! ```
//!
//! Experiments: `table1 table2 table3 table4 fig4 table5 table6 table7 fig5
//! table8 table9 app_d ablation_heuristic ablation_adaban engine_cache
//! parallel_speedup serve_throughput canon_hit_rate warm_start update_stream
//! degrade_under_pressure aggregate_attribution`.
//! Sweep-based experiments share one sweep per invocation; every experiment
//! dispatches its algorithms through `banzhaf_engine::Attributor`.
//! `--threads N` fans the sweep's instance loop and the engine sessions
//! across N workers (0 = one per CPU); completed instances record identical
//! scores at any thread count (wall-clock timeouts may cut off different
//! borderline instances when workers contend for cores).

use banzhaf_bench::experiments;
use banzhaf_bench::runner::{run_sweep, HarnessConfig};
use std::time::Duration;

/// All experiment names the driver knows, as printed in the usage text.
const KNOWN_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "fig4",
    "table5",
    "table6",
    "table7",
    "fig5",
    "table8",
    "table9",
    "app_d",
    "ablation_heuristic",
    "ablation_adaban",
    "engine_cache",
    "parallel_speedup",
    "serve_throughput",
    "canon_hit_rate",
    "warm_start",
    "update_stream",
    "degrade_under_pressure",
    "aggregate_attribution",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro [--timeout-ms N] [--scale N] [--epsilon E] [--topk K] [--threads N] <experiment>... | --all");
        eprintln!("experiments: table1 table2 table3 table4 fig4 table5 table6 table7 fig5 table8 table9 app_d ablation_heuristic ablation_adaban engine_cache parallel_speedup serve_throughput canon_hit_rate warm_start update_stream degrade_under_pressure aggregate_attribution");
        std::process::exit(1);
    }

    let mut config = HarnessConfig::default();
    let mut experiments_requested: Vec<String> = Vec::new();
    let mut run_everything = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => run_everything = true,
            "--timeout-ms" => {
                let value = iter.next().expect("--timeout-ms needs a value");
                config.timeout = Duration::from_millis(value.parse().expect("numeric timeout"));
            }
            "--scale" => {
                let value = iter.next().expect("--scale needs a value");
                config.scale = value.parse().expect("numeric scale");
            }
            "--epsilon" => {
                config.epsilon = iter.next().expect("--epsilon needs a value");
            }
            "--topk" => {
                let value = iter.next().expect("--topk needs a value");
                config.topk = value.parse().expect("numeric k");
            }
            "--seed" => {
                let value = iter.next().expect("--seed needs a value");
                config.seed = value.parse().expect("numeric seed");
            }
            "--threads" => {
                let value = iter.next().expect("--threads needs a value");
                config.threads = value.parse().expect("numeric thread count");
            }
            other => experiments_requested.push(other.to_owned()),
        }
    }

    // Reject typos up front (also on the --all path, which would otherwise
    // silently ignore positional arguments).
    let mut unknown = false;
    for experiment in &experiments_requested {
        if !KNOWN_EXPERIMENTS.contains(&experiment.as_str()) {
            eprintln!("unknown experiment: {experiment}");
            unknown = true;
        }
    }
    if unknown {
        std::process::exit(2);
    }

    if run_everything {
        println!("{}", experiments::run_all(&config));
        return;
    }

    // Run the sweep lazily: only if some requested experiment needs it.
    let needs_sweep = experiments_requested.iter().any(|e| {
        matches!(
            e.as_str(),
            "table2"
                | "table3"
                | "table4"
                | "fig4"
                | "table5"
                | "table6"
                | "table7"
                | "fig5"
                | "table8"
        )
    });
    let records = if needs_sweep { run_sweep(&config) } else { Vec::new() };

    for experiment in &experiments_requested {
        let report = match experiment.as_str() {
            "table1" => experiments::table1(&config),
            "table2" => experiments::table2(&records, &config),
            "table3" => experiments::table3(&records),
            "table4" => experiments::table4(&records),
            "fig4" => experiments::fig4(&records),
            "table5" => experiments::table5(&records),
            "table6" => experiments::table6(&records),
            "table7" => experiments::table7(&records),
            "fig5" => experiments::fig5(&records, &config),
            "table8" => experiments::table8(&records, &config),
            "table9" => experiments::table9(&config),
            "app_d" => experiments::app_d(),
            "ablation_heuristic" => experiments::ablation_heuristic(&config),
            "ablation_adaban" => experiments::ablation_adaban(&config),
            "engine_cache" => experiments::engine_cache(&config),
            "parallel_speedup" => experiments::parallel_speedup(&config),
            "serve_throughput" => experiments::serve_throughput(&config),
            "canon_hit_rate" => experiments::canon_hit_rate(&config),
            "warm_start" => experiments::warm_start(&config),
            "update_stream" => experiments::update_stream(&config),
            "degrade_under_pressure" => experiments::degrade_under_pressure(&config),
            "aggregate_attribution" => experiments::aggregate_attribution(&config),
            other => unreachable!("experiment {other} was validated against KNOWN_EXPERIMENTS"),
        };
        println!("{report}");
    }
}
