//! `bench_gate` — the CI perf-regression gate.
//!
//! Reads the perf artifacts the bench experiments emit (`BENCH_parallel.json`
//! from `repro parallel_speedup`, `BENCH_serve.json` from `repro
//! serve_throughput`, `BENCH_canon.json` from `repro canon_hit_rate`, and —
//! with the matching flags — `BENCH_update.json` from `repro update_stream`,
//! `BENCH_degrade.json` from `repro degrade_under_pressure`, and
//! `BENCH_persist.json` from `repro warm_start` and `BENCH_aggregate.json`
//! from `repro aggregate_attribution`) and
//! compares them against the checked-in `BENCH_baseline.json`. Exits
//! non-zero — failing the CI job — when:
//!
//! * any artifact reports `bit_identical: false` (correctness regression:
//!   parallel, served or cached execution diverged from the sequential
//!   reference);
//! * the serve experiment saw no shared-cache hits;
//! * the canonical keying's hit rate on the permuted/renamed stream fails to
//!   strictly beat the first-occurrence keying it replaced, or drops below
//!   the baseline floor;
//! * (with `--update`) the incremental update stream diverged from the cold
//!   re-evaluation reference, or the fraction of compile steps it saved fell
//!   below the baseline floor (the stream is seeded, so this is
//!   deterministic and gated with zero tolerance);
//! * (with `--persist`, reading `BENCH_persist.json` from `repro
//!   warm_start`) the warm-started replay diverged from the cold run, the
//!   snapshot saved no compile steps, a snapshot was rejected, or the
//!   steps-saved ratio fell below the baseline floor (the stream is seeded,
//!   so this is deterministic and gated with zero tolerance);
//! * (with `--degrade`, reading `BENCH_degrade.json` from `repro
//!   degrade_under_pressure`) the fallback ladder failed to answer the whole
//!   starved stream (availability floor 1.0), the workload stopped starving
//!   strict mode of at least half its requests, an exact answer diverged
//!   from the unbounded reference, or a degraded answer failed to bracket
//!   (interval rung) or stay finite (estimate rung);
//! * (with `--aggregate`, reading `BENCH_aggregate.json` from `repro
//!   aggregate_attribution`) any exact aggregate Banzhaf value disagreed
//!   with the brute-force definition, the four cache/thread configurations
//!   were not bit-identical, or a SUM cache entry served a COUNT request
//!   over the same Boolean skeleton (the workload is seeded, so this is
//!   deterministic and gated with zero tolerance);
//! * a tracked throughput metric regressed more than the tolerance
//!   (default 25%) against the baseline.
//!
//! Machine-normalized metrics are gated (`speedup` = t1/tN for the parallel
//! experiment, `speedup_vs_cold` for the serving experiment) so the gate is
//! stable across runner generations; raw seconds and rps are printed for
//! trend reading but only warned about. To move the baseline intentionally,
//! commit a new `BENCH_baseline.json` alongside the change that justifies it.
//!
//! ```text
//! bench_gate [--baseline BENCH_baseline.json] [--parallel BENCH_parallel.json]
//!            [--serve BENCH_serve.json] [--canon BENCH_canon.json]
//!            [--update BENCH_update.json] [--degrade BENCH_degrade.json]
//!            [--persist BENCH_persist.json] [--aggregate BENCH_aggregate.json]
//!            [--tolerance 0.25]
//! ```

use banzhaf_bench::json::Json;

struct Gate {
    failures: Vec<String>,
    warnings: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, label: &str, detail: String) {
        if ok {
            println!("PASS  {label}: {detail}");
        } else {
            println!("FAIL  {label}: {detail}");
            self.failures.push(format!("{label}: {detail}"));
        }
    }

    fn warn(&mut self, label: &str, detail: String) {
        println!("WARN  {label}: {detail}");
        self.warnings.push(format!("{label}: {detail}"));
    }
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn f64_at(json: &Json, path: &[&str], file: &str) -> f64 {
    let mut node = json;
    for key in path {
        node = node.get(key).unwrap_or_else(|| {
            eprintln!("bench_gate: {file} is missing \"{}\"", path.join("."));
            std::process::exit(2);
        });
    }
    node.as_f64().unwrap_or_else(|| {
        eprintln!("bench_gate: {file} \"{}\" is not a number", path.join("."));
        std::process::exit(2);
    })
}

fn bool_at(json: &Json, key: &str, file: &str) -> bool {
    json.get(key).and_then(Json::as_bool).unwrap_or_else(|| {
        eprintln!("bench_gate: {file} is missing boolean \"{key}\"");
        std::process::exit(2);
    })
}

/// The measured `(speedup, effective_threads)` of the run with the given
/// requested thread count.
fn speedup_at_threads(parallel: &Json, threads: f64, file: &str) -> (f64, f64) {
    let runs = parallel.get("runs").and_then(Json::as_array).unwrap_or_else(|| {
        eprintln!("bench_gate: {file} is missing \"runs\"");
        std::process::exit(2);
    });
    for run in runs {
        if run.get("threads").and_then(Json::as_f64) == Some(threads) {
            let effective = run.get("effective_threads").and_then(Json::as_f64).unwrap_or(threads);
            return (f64_at(run, &["speedup"], file), effective);
        }
    }
    eprintln!("bench_gate: {file} has no run with threads = {threads}");
    std::process::exit(2);
}

struct Args {
    baseline_path: String,
    parallel_path: String,
    serve_path: String,
    canon_path: String,
    update_path: Option<String>,
    degrade_path: Option<String>,
    persist_path: Option<String>,
    aggregate_path: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        baseline_path: "BENCH_baseline.json".to_owned(),
        parallel_path: "BENCH_parallel.json".to_owned(),
        serve_path: "BENCH_serve.json".to_owned(),
        canon_path: "BENCH_canon.json".to_owned(),
        update_path: None,
        degrade_path: None,
        persist_path: None,
        aggregate_path: None,
        tolerance: 0.25,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_gate: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => parsed.baseline_path = value("--baseline"),
            "--parallel" => parsed.parallel_path = value("--parallel"),
            "--serve" => parsed.serve_path = value("--serve"),
            "--canon" => parsed.canon_path = value("--canon"),
            "--update" => parsed.update_path = Some(value("--update")),
            "--degrade" => parsed.degrade_path = Some(value("--degrade")),
            "--persist" => parsed.persist_path = Some(value("--persist")),
            "--aggregate" => parsed.aggregate_path = Some(value("--aggregate")),
            "--tolerance" => {
                parsed.tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("bench_gate: --tolerance needs a number in [0, 1)");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("bench_gate: unknown argument {other}");
                eprintln!(
                    "usage: bench_gate [--baseline F] [--parallel F] [--serve F] [--canon F] \
                     [--update F] [--degrade F] [--persist F] [--aggregate F] [--tolerance T]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// The correctness checks: bit-identity everywhere, live cache, and the
/// canonical keying strictly beating the first-occurrence keying it replaced
/// on the (seeded, hence deterministic) permuted/renamed stream.
fn check_correctness(gate: &mut Gate, artifacts: &Artifacts) {
    let Artifacts { baseline, parallel, parallel_path, serve, serve_path, canon, canon_path } =
        artifacts;
    gate.check(
        bool_at(parallel, "bit_identical", parallel_path),
        "parallel.bit_identical",
        "parallel batches must match the sequential reference bit for bit".to_owned(),
    );
    gate.check(
        bool_at(serve, "bit_identical", serve_path),
        "serve.bit_identical",
        "served attributions must match a cold sequential run bit for bit".to_owned(),
    );
    gate.check(
        bool_at(canon, "bit_identical", canon_path),
        "canon.bit_identical",
        "cached and served runs of the permuted stream must match the cold reference".to_owned(),
    );
    let cache_hits = f64_at(serve, &["cache_hits"], serve_path);
    gate.check(
        cache_hits > 0.0,
        "serve.cache_hits",
        format!("shared cross-session cache must serve hits (got {cache_hits})"),
    );
    let canon_rate = f64_at(canon, &["canon_hit_rate"], canon_path);
    let naive_rate = f64_at(canon, &["naive_hit_rate"], canon_path);
    gate.check(
        canon_rate > naive_rate,
        "canon.hit_rate_advantage",
        format!("canonical {canon_rate:.3} must strictly beat first-occurrence {naive_rate:.3}"),
    );
    if let Some(base) =
        baseline.get("canon_hit_rate").and_then(|b| b.get("hit_rate")).and_then(Json::as_f64)
    {
        // Unlike the wall-clock metrics, the hit rate of the seeded stream
        // is fully deterministic, so no machine tolerance applies: any drop
        // beyond float formatting is a real canonicalization regression.
        gate.check(
            canon_rate >= base - 1e-9,
            "canon.hit_rate",
            format!("measured {canon_rate:.3} vs baseline {base:.3} (deterministic, 0 tolerance)"),
        );
    }
    if let Some(ceiling) =
        baseline.get("canon_hit_rate").and_then(|b| b.get("canon_steps")).and_then(Json::as_f64)
    {
        // The keying *cost* is gated too: the seeded stream performs a fixed
        // amount of refinement work, so any count above the baseline ceiling
        // means the worklist refiner or the fingerprint pre-key regressed.
        let canon_steps = f64_at(canon, &["canon_steps"], canon_path);
        gate.check(
            canon_steps <= ceiling + 1e-9,
            "canon.canon_steps",
            format!(
                "measured {canon_steps:.0} refinement steps vs baseline ceiling {ceiling:.0} \
                 (deterministic, 0 tolerance)"
            ),
        );
    }
}

/// The live-update checks (`--update`): bit-identity of the incremental
/// stream against its per-step cold re-evaluations, and the steps-saved
/// ratio against the baseline floor. The update stream is seeded, so both
/// are deterministic and gated with zero tolerance.
fn check_update_stream(gate: &mut Gate, baseline: &Json, update: &Json, update_path: &str) {
    gate.check(
        bool_at(update, "bit_identical", update_path),
        "update.bit_identical",
        "incremental updates must match a cold re-evaluation after every step".to_owned(),
    );
    let ratio = f64_at(update, &["steps_saved_ratio"], update_path);
    if let Some(base) = baseline
        .get("update_stream")
        .and_then(|b| b.get("steps_saved_ratio"))
        .and_then(Json::as_f64)
    {
        gate.check(
            ratio >= base - 1e-9,
            "update.steps_saved_ratio",
            format!("measured {ratio:.3} vs baseline floor {base:.3} (deterministic, 0 tolerance)"),
        );
    }
}

/// The warm-start persistence checks (`--persist`): bit-identity of the
/// warm-started (and sharded) replays against the cold run, real savings
/// from the snapshot, no rejected loads, and the steps-saved ratio against
/// the baseline floor. The stream is seeded, so every number is
/// deterministic and gated with zero tolerance.
fn check_persist(gate: &mut Gate, baseline: &Json, persist: &Json, persist_path: &str) {
    gate.check(
        bool_at(persist, "bit_identical", persist_path),
        "persist.bit_identical",
        "warm-started and sharded replays must match the cold run bit for bit".to_owned(),
    );
    let steps_saved = f64_at(persist, &["steps_saved"], persist_path);
    gate.check(
        steps_saved > 0.0,
        "persist.steps_saved",
        format!("the snapshot must save compile steps on the replay (got {steps_saved:.0})"),
    );
    let rejects = f64_at(persist, &["snapshot_rejects"], persist_path);
    gate.check(
        rejects == 0.0,
        "persist.snapshot_rejects",
        format!(
            "the snapshot the experiment just wrote must load cleanly (got {rejects:.0} rejects)"
        ),
    );
    let ratio = f64_at(persist, &["steps_saved_ratio"], persist_path);
    if let Some(base) =
        baseline.get("warm_start").and_then(|b| b.get("steps_saved_ratio")).and_then(Json::as_f64)
    {
        gate.check(
            ratio >= base - 1e-9,
            "persist.steps_saved_ratio",
            format!("measured {ratio:.3} vs baseline floor {base:.3} (deterministic, 0 tolerance)"),
        );
    }
}

/// The aggregate-attribution checks (`--aggregate`): exact brute-force
/// agreement, bit-identity across cache on/off x threads 1/2, and kind-aware
/// cache keying (a SUM entry never serves a COUNT request). The workload is
/// seeded, so every number is deterministic and gated with zero tolerance.
fn check_aggregate(gate: &mut Gate, baseline: &Json, aggregate: &Json, aggregate_path: &str) {
    gate.check(
        bool_at(aggregate, "bit_identical", aggregate_path),
        "aggregate.bit_identical",
        "aggregate values must match across cache on/off and 1/2 threads bit for bit".to_owned(),
    );
    let agreement = f64_at(aggregate, &["agreement_rate"], aggregate_path);
    let floor = baseline
        .get("aggregate_attribution")
        .and_then(|b| b.get("agreement_rate"))
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    gate.check(
        agreement >= floor - 1e-9,
        "aggregate.agreement_rate",
        format!(
            "every per-fact value must equal the brute-force definition \
             (got {agreement:.4}, floor {floor:.4})"
        ),
    );
    gate.check(
        bool_at(aggregate, "kind_keying_separate", aggregate_path),
        "aggregate.kind_keying_separate",
        "a SUM cache entry must never serve a COUNT twin of the same skeleton".to_owned(),
    );
    gate.check(
        bool_at(aggregate, "count_twin_agrees", aggregate_path),
        "aggregate.count_twin_agrees",
        "the COUNT twin's values must match brute force after the forced miss".to_owned(),
    );
}

/// The degradation-ladder checks (`--degrade`): availability, pressure, and
/// soundness of degraded answers. The workload is step-capped (no wall
/// clock), so every number is deterministic and gated with zero tolerance.
fn check_degrade(gate: &mut Gate, baseline: &Json, degrade: &Json, degrade_path: &str) {
    let ladder = f64_at(degrade, &["ladder_availability"], degrade_path);
    gate.check(
        ladder >= 1.0 - 1e-9,
        "degrade.ladder_availability",
        format!("the fallback ladder must answer every request (got {ladder:.3}, floor 1.0)"),
    );
    let strict = f64_at(degrade, &["strict_availability"], degrade_path);
    gate.check(
        strict <= 0.5 + 1e-9,
        "degrade.strict_pressure",
        format!(
            "the workload must starve strict mode of at least half its requests \
             (strict answered {strict:.3}; above 0.5 the ladder is not being exercised)"
        ),
    );
    gate.check(
        bool_at(degrade, "exact_bit_identical", degrade_path),
        "degrade.exact_bit_identical",
        "answers that completed exactly must match the unbounded reference bit for bit".to_owned(),
    );
    gate.check(
        bool_at(degrade, "degraded_sound", degrade_path),
        "degrade.degraded_sound",
        "interval-rung answers must bracket the exact value; estimate-rung answers must be finite"
            .to_owned(),
    );
    if let Some(base) = baseline
        .get("degrade_under_pressure")
        .and_then(|b| b.get("ladder_availability"))
        .and_then(Json::as_f64)
    {
        gate.check(
            ladder >= base - 1e-9,
            "degrade.baseline_availability",
            format!(
                "measured {ladder:.3} vs baseline floor {base:.3} (deterministic, 0 tolerance)"
            ),
        );
    }
}

/// The parsed artifact set the gate's checks read from.
struct Artifacts {
    baseline: Json,
    parallel: Json,
    parallel_path: String,
    serve: Json,
    serve_path: String,
    canon: Json,
    canon_path: String,
}

fn main() {
    let Args {
        baseline_path,
        parallel_path,
        serve_path,
        canon_path,
        update_path,
        degrade_path,
        persist_path,
        aggregate_path,
        tolerance,
    } = parse_args();
    let artifacts = Artifacts {
        baseline: read_json(&baseline_path),
        parallel: read_json(&parallel_path),
        parallel_path,
        serve: read_json(&serve_path),
        serve_path,
        canon: read_json(&canon_path),
        canon_path,
    };
    let floor = |base: f64| base * (1.0 - tolerance);
    let mut gate = Gate { failures: Vec::new(), warnings: Vec::new() };
    check_correctness(&mut gate, &artifacts);
    if let Some(update_path) = &update_path {
        let update = read_json(update_path);
        check_update_stream(&mut gate, &artifacts.baseline, &update, update_path);
    }
    if let Some(degrade_path) = &degrade_path {
        let degrade = read_json(degrade_path);
        check_degrade(&mut gate, &artifacts.baseline, &degrade, degrade_path);
    }
    if let Some(persist_path) = &persist_path {
        let persist = read_json(persist_path);
        check_persist(&mut gate, &artifacts.baseline, &persist, persist_path);
    }
    if let Some(aggregate_path) = &aggregate_path {
        let aggregate = read_json(aggregate_path);
        check_aggregate(&mut gate, &artifacts.baseline, &aggregate, aggregate_path);
    }
    let Artifacts { baseline, parallel, parallel_path, serve, serve_path, .. } = &artifacts;

    // Throughput vs the checked-in baseline (machine-normalized metrics).
    // The multicore baseline applies only when the run actually had that many
    // workers: `ThreadPool::new` clamps to the machine's cores, so on a
    // single-core box a "2-thread" run re-measures the sequential path and is
    // held to the degenerate floor of 1.0 instead (no parallelism ran, so no
    // parallelism can have regressed).
    for threads in [2.0f64, 4.0] {
        let key = format!("speedup_{threads}");
        let Some(multicore_base) = baseline
            .get("parallel_speedup")
            .and_then(|b| b.get(&format!("speedup_{}", threads as u64)))
            .and_then(Json::as_f64)
        else {
            continue;
        };
        let (measured, effective) = speedup_at_threads(parallel, threads, parallel_path);
        let clamped = effective < threads;
        let base = if clamped { multicore_base.min(1.0) } else { multicore_base };
        gate.check(
            measured >= floor(base),
            &format!("parallel.{key}"),
            format!(
                "measured {measured:.3} vs baseline {base:.3} (floor {:.3}{})",
                floor(base),
                if clamped {
                    format!("; clamped to {effective} effective worker(s), degenerate 1.0 bar")
                } else {
                    String::new()
                }
            ),
        );
    }
    if let Some(base) = baseline
        .get("serve_throughput")
        .and_then(|b| b.get("speedup_vs_cold"))
        .and_then(Json::as_f64)
    {
        let measured = f64_at(serve, &["speedup_vs_cold"], serve_path);
        gate.check(
            measured >= floor(base),
            "serve.speedup_vs_cold",
            format!("measured {measured:.3} vs baseline {base:.3} (floor {:.3})", floor(base)),
        );
    }

    // Raw rps is machine-dependent: print the comparison, warn on large
    // drops, but do not fail CI across runner generations on it.
    if let Some(base) =
        baseline.get("serve_throughput").and_then(|b| b.get("rps")).and_then(Json::as_f64)
    {
        let measured = f64_at(serve, &["serve_rps"], serve_path);
        if measured < floor(base) {
            gate.warn(
                "serve.rps",
                format!("measured {measured:.1} rps vs baseline {base:.1} (machine-dependent)"),
            );
        } else {
            println!("PASS  serve.rps: measured {measured:.1} rps vs baseline {base:.1}");
        }
    }

    println!();
    if gate.failures.is_empty() {
        let warnings = gate.warnings.len();
        println!("bench_gate: OK ({warnings} warning(s), tolerance {tolerance})");
    } else {
        println!("bench_gate: {} check(s) failed (tolerance {tolerance})", gate.failures.len());
        std::process::exit(1);
    }
}
