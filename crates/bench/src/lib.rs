//! Benchmark harness regenerating the paper's evaluation (Sec. 5, App. D/E).
//!
//! The library half of the crate contains the shared instrumentation
//! ([`runner`]) and the per-experiment drivers ([`experiments`]); the `repro`
//! binary dispatches on experiment names and prints each table/figure in a
//! plain-text layout mirroring the paper. Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod report;
pub mod runner;
