//! A minimal JSON reader for the harness's own `BENCH_*.json` artifacts.
//!
//! The build environment has no crates.io access, so the CI regression gate
//! (`bench_gate`) parses the perf artifacts with this ~150-line recursive
//! descent parser instead of `serde_json`. It accepts standard JSON (objects,
//! arrays, strings with the common escapes, numbers, booleans, null), which
//! is a superset of what the experiment writers emit.

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which is exact for the magnitudes the
    /// bench artifacts contain).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Duplicate keys keep the last value, like most parsers.
    Obj(HashMap<String, Json>),
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("end of input"));
        }
        Ok(value)
    }

    /// Member access on objects (`None` on other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError { at: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "'{'")?;
        let mut members = HashMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':', "':' after object key")?;
            self.skip_whitespace();
            members.insert(key, self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("escape character"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("four hex digits"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the bench
                            // artifacts; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("a valid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("valid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("a number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError { at: start, message: "a number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_artifact_shape() {
        let doc = r#"{
          "experiment": "parallel_speedup",
          "bit_identical": true,
          "runs": [
            {"threads": 1, "seconds": 0.25, "speedup": 1.0},
            {"threads": 2, "seconds": 0.125, "speedup": 2.0}
          ]
        }"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("experiment").unwrap().as_str(), Some("parallel_speedup"));
        assert_eq!(json.get("bit_identical").unwrap().as_bool(), Some(true));
        let runs = json.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("speedup").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e-1").unwrap(), Json::Num(-1.25));
        assert_eq!(Json::parse(r#""a\"b\nA""#).unwrap(), Json::Str("a\"b\nA".to_owned()));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(Vec::new()));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(HashMap::new()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parses_exponent_forms_the_gate_depends_on() {
        // The bench artifacts carry %.6f/%.3f-formatted floats today, but the
        // gate must not silently misread a writer that switches to shortest
        // round-trip formatting (which produces exponents for small ratios).
        for (text, value) in [
            ("1e-3", 1e-3),
            ("2.5e-2", 2.5e-2),
            ("-4E-7", -4e-7),
            ("1.25e+3", 1.25e3),
            ("9e0", 9.0),
            ("0.000001", 1e-6),
            ("-0.0", -0.0),
        ] {
            assert_eq!(Json::parse(text).unwrap(), Json::Num(value), "{text}");
        }
        // Exponents nested inside the artifact shape.
        let doc = r#"{"speedup_vs_cold": 3.3e0, "noise": -1.2e-4}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("speedup_vs_cold").unwrap().as_f64(), Some(3.3));
        assert_eq!(json.get("noise").unwrap().as_f64(), Some(-1.2e-4));
    }

    #[test]
    fn parses_escaped_strings_in_keys_and_values() {
        let doc = r#"{"a\"b": "tab\there", "uni": "Aé", "slash": "a\/b\\c"}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("a\"b").unwrap().as_str(), Some("tab\there"));
        assert_eq!(json.get("uni").unwrap().as_str(), Some("Aé"));
        assert_eq!(json.get("slash").unwrap().as_str(), Some("a/b\\c"));
        // Control escapes round through.
        assert_eq!(
            Json::parse(r#""\b\f\n\r\t""#).unwrap(),
            Json::Str("\u{8}\u{c}\n\r\t".to_owned())
        );
        // Truncated or unknown escapes are rejected, not mangled.
        for bad in [r#""\x""#, r#""\u00""#, r#""\"#, r#""\u00zz""#] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parses_deeply_nested_arrays() {
        // The recursive-descent parser must survive nesting far beyond
        // anything the artifacts contain (they nest 2 deep).
        let depth = 200;
        let doc = format!("{}7{}", "[".repeat(depth), "]".repeat(depth));
        let mut node = Json::parse(&doc).unwrap();
        for _ in 0..depth {
            let Json::Arr(items) = node else { panic!("expected an array") };
            assert_eq!(items.len(), 1);
            node = items.into_iter().next().unwrap();
        }
        assert_eq!(node, Json::Num(7.0));
        // Mixed deep object/array nesting.
        let doc = format!("{}[0]{}", r#"{"k":"#.repeat(50), "}".repeat(50));
        assert!(Json::parse(&doc).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage() {
        // A truncated artifact concatenated with a fresh write (the exact
        // failure mode of an interrupted bench run re-appending) must fail
        // loudly rather than silently yield the first document.
        for bad in [
            "{\"a\": 1}{\"a\": 2}",
            "[1, 2] [3]",
            "true false",
            "1.5 2.5",
            "{\"bit_identical\": true} garbage",
            "null,",
            "[]]",
            "{} }",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Trailing whitespace (including newlines from `format!` writers) is
        // fine — only non-whitespace garbage is an error.
        assert!(Json::parse("{\"a\": 1}\n\t ").is_ok());
    }

    #[test]
    fn accessors_return_none_on_wrong_variants() {
        let json = Json::parse("[1]").unwrap();
        assert!(json.get("x").is_none());
        assert!(json.as_f64().is_none());
        assert!(json.as_bool().is_none());
        assert!(json.as_str().is_none());
        assert_eq!(json.as_array().unwrap().len(), 1);
    }
}
