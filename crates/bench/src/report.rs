//! Plain-text table rendering and summary statistics.

/// Percentile labels used throughout the paper's runtime tables.
pub const PERCENTILES: &[(&str, f64)] =
    &[("p50", 0.50), ("p75", 0.75), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)];

/// Summary statistics of a sample of runtimes (in seconds).
#[derive(Clone, Debug, Default)]
pub struct RuntimeSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Percentiles in the order of [`PERCENTILES`].
    pub percentiles: Vec<f64>,
    /// Maximum.
    pub max: f64,
}

impl RuntimeSummary {
    /// Computes the summary of a sample (empty samples yield zeros).
    pub fn of(mut samples: Vec<f64>) -> RuntimeSummary {
        if samples.is_empty() {
            return RuntimeSummary {
                percentiles: vec![0.0; PERCENTILES.len()],
                ..Default::default()
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let percentile = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            samples[idx.min(count - 1)]
        };
        RuntimeSummary {
            count,
            mean,
            percentiles: PERCENTILES.iter().map(|&(_, p)| percentile(p)).collect(),
            max: samples[count - 1],
        }
    }

    /// Renders the summary as a row of the paper's runtime tables.
    pub fn row(&self) -> Vec<String> {
        let mut cells = vec![format_secs(self.mean)];
        cells.extend(self.percentiles.iter().map(|&v| format_secs(v)));
        cells.push(format_secs(self.max));
        cells
    }
}

/// Formats a duration in seconds with adaptive precision.
pub fn format_secs(secs: f64) -> String {
    if secs == 0.0 {
        "0".to_owned()
    } else if secs < 0.001 {
        format!("{:.2}ms", secs * 1000.0)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1000.0)
    } else {
        format!("{secs:.2}s")
    }
}

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, row: I) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage string.
pub fn percent(numerator: usize, denominator: usize) -> String {
    if denominator == 0 {
        "n/a".to_owned()
    } else {
        format!("{:.1}%", 100.0 * numerator as f64 / denominator as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = RuntimeSummary::of(vec![1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert_eq!(s.max, 100.0);
        // p50 of five samples is the middle one.
        assert_eq!(s.percentiles[0], 3.0);
        let empty = RuntimeSummary::of(vec![]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.percentiles.len(), PERCENTILES.len());
    }

    #[test]
    fn formatting() {
        assert_eq!(format_secs(0.0), "0");
        assert_eq!(format_secs(0.0005), "0.50ms");
        assert_eq!(format_secs(0.25), "250.0ms");
        assert_eq!(format_secs(3.2), "3.20s");
        assert_eq!(percent(1, 4), "25.0%");
        assert_eq!(percent(0, 0), "n/a");
    }

    #[test]
    fn table_rendering() {
        let mut t = TextTable::new(["name", "value"]);
        t.push_row(["alpha", "1"]);
        t.push_row(["b", "12345"]);
        let rendered = t.render();
        assert!(rendered.contains("name"));
        assert!(rendered.lines().count() >= 4);
        // Columns aligned: every line has the same position for the second column.
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("name "));
        assert!(lines[2].starts_with("alpha"));
    }
}
