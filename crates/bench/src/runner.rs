//! Shared instrumentation: run every algorithm on every instance of a corpus
//! under a per-instance budget and record runtimes, successes and outputs.
//!
//! All algorithm dispatch flows through [`banzhaf_engine::Attributor`]
//! objects built from the shared [`HarnessConfig`]; the runner never wires a
//! d-tree compilation to an algorithm function by hand.

use banzhaf::{Budget, Var};
use banzhaf_arith::Natural;
use banzhaf_boolean::Dnf;
use banzhaf_engine::{Algorithm, Attribution, CacheConfig, Engine, EngineConfig};
use banzhaf_par::ThreadPool;
use banzhaf_workloads::{academic_like, imdb_like, tpch_like, Corpus, DatasetSpec};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Harness configuration shared by all experiments.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Per-instance, per-algorithm timeout (the paper uses one hour on a
    /// server; the laptop-scale default here is one second).
    pub timeout: Duration,
    /// Scale factor passed to the synthetic dataset generators.
    pub scale: usize,
    /// Relative error used for AdaBan / IchiBan (the paper's headline setting
    /// is 0.1).
    pub epsilon: String,
    /// Monte Carlo samples per variable (the paper's `MC50#vars`).
    pub mc_samples_per_var: u64,
    /// RNG seed for dataset generation and sampling.
    pub seed: u64,
    /// Top-k size used for the ranking experiments.
    pub topk: usize,
    /// Worker threads for the sweep's instance loop and the engine sessions
    /// (`1` = sequential, `0` = one per CPU). Recorded per-fact scores are
    /// identical at every thread count for completed instances; note that
    /// under the sweep's *wall-clock* timeouts, core contention between
    /// parallel instances can change which instances finish in time (the
    /// engine's bit-identity guarantee is exact for step-cap and unlimited
    /// budgets).
    pub threads: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            timeout: Duration::from_millis(500),
            scale: 1,
            epsilon: "0.1".to_owned(),
            mc_samples_per_var: 50,
            seed: 0xBA27AF,
            topk: 10,
            threads: 1,
        }
    }
}

impl HarnessConfig {
    /// The dataset spec corresponding to this configuration.
    pub fn dataset_spec(&self) -> DatasetSpec {
        DatasetSpec { scale: self.scale, seed: self.seed }
    }

    /// Builds the three corpora.
    pub fn corpora(&self) -> Vec<Corpus> {
        let spec = self.dataset_spec();
        vec![academic_like(&spec), imdb_like(&spec), tpch_like(&spec)]
    }

    /// The [`EngineConfig`] running `algorithm` under this harness's timeout,
    /// ε and sampling parameters. Per-instance runs measure each algorithm in
    /// isolation, so the session cache is off by default.
    pub fn engine_config(&self, algorithm: Algorithm) -> EngineConfig {
        EngineConfig::new(algorithm)
            .with_epsilon_str(&self.epsilon)
            .with_timeout(self.timeout)
            .with_seed(self.seed)
            .with_cache_config(CacheConfig::disabled())
            .with_threads(self.threads)
    }

    /// The thread pool the sweep's instance loop fans out on.
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads)
    }
}

/// Outcome of one algorithm on one instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgoRun {
    /// Wall-clock seconds spent (up to the timeout).
    pub seconds: f64,
    /// Whether the algorithm finished within the budget.
    pub success: bool,
    /// Knowledge-compilation steps reported by the engine (d-tree expansions
    /// or DPLL nodes; 0 for compilation-free baselines and failed runs).
    pub steps: u64,
}

/// Everything recorded about one lineage instance.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    /// Corpus (dataset family) name.
    pub corpus: String,
    /// Query name within the corpus.
    pub query: String,
    /// Number of lineage variables.
    pub num_vars: usize,
    /// Number of lineage clauses.
    pub num_clauses: usize,
    /// ExaBan outcome (full compilation + all-variables exact values).
    pub exaban: AlgoRun,
    /// Sig22 baseline outcome.
    pub sig22: AlgoRun,
    /// AdaBan outcome (all variables, relative error ε).
    pub adaban: AlgoRun,
    /// Monte Carlo outcome.
    pub mc: AlgoRun,
    /// IchiBan-ε top-k outcome.
    pub ichiban: AlgoRun,
    /// Exact Banzhaf values (when ExaBan succeeded).
    pub exact: Option<HashMap<Var, Natural>>,
    /// AdaBan interval midpoints (when AdaBan succeeded).
    pub adaban_estimates: Option<HashMap<Var, f64>>,
    /// Monte Carlo estimates (when MC succeeded).
    pub mc_estimates: Option<HashMap<Var, f64>>,
    /// CNF-proxy scores (always available; linear time).
    pub proxy_scores: HashMap<Var, f64>,
    /// IchiBan-ε top-k members (when it succeeded).
    pub ichiban_topk: Option<Vec<Var>>,
}

impl InstanceRecord {
    /// Ground-truth top-k variables by exact Banzhaf value, if available.
    pub fn exact_topk(&self, k: usize) -> Option<Vec<Var>> {
        let exact = self.exact.as_ref()?;
        let mut vars: Vec<(&Var, &Natural)> = exact.iter().collect();
        vars.sort_by(|(va, ba), (vb, bb)| bb.cmp(ba).then(va.cmp(vb)));
        Some(vars.into_iter().take(k).map(|(v, _)| *v).collect())
    }
}

fn timed<T>(f: impl FnOnce() -> Option<T>) -> (AlgoRun, Option<T>) {
    let start = Instant::now();
    let out = f();
    let seconds = start.elapsed().as_secs_f64();
    (AlgoRun { seconds, success: out.is_some(), steps: 0 }, out)
}

fn attribution_steps(att: Option<&Attribution>) -> u64 {
    att.map(|a| a.stats.compile_steps).unwrap_or(0)
}

/// Runs every algorithm on one lineage and records the outcomes.
///
/// `instance_seed` varies the Monte Carlo sampling across instances while
/// keeping the sweep deterministic.
pub fn run_instance(
    corpus: &str,
    query: &str,
    lineage: &Dnf,
    config: &HarnessConfig,
    instance_seed: u64,
) -> InstanceRecord {
    let budget = || Budget::with_timeout(config.timeout);

    // ExaBan: full compilation + all-variables pass.
    let exa = config.engine_config(Algorithm::ExaBan).attributor();
    let (mut exaban, exa_att) = timed(|| exa.attribute(lineage, &budget()).ok());
    exaban.steps = attribution_steps(exa_att.as_ref());
    let exact = exa_att.as_ref().and_then(Attribution::exact_values);

    // Sig22 baseline.
    let sig = config.engine_config(Algorithm::Sig22).attributor();
    let (mut sig22, sig_att) = timed(|| sig.attribute(lineage, &budget()).ok());
    sig22.steps = attribution_steps(sig_att.as_ref());

    // AdaBan with relative error ε over all variables.
    let ada = config.engine_config(Algorithm::AdaBan).attributor();
    let (mut adaban, ada_att) = timed(|| ada.attribute(lineage, &budget()).ok());
    adaban.steps = attribution_steps(ada_att.as_ref());
    let adaban_estimates = ada_att.as_ref().map(Attribution::estimates);

    // Monte Carlo with 50·#vars samples in total (50 per variable). The
    // sweep already parallelizes at the instance level, so the estimator
    // keeps its per-variable loop sequential — nesting pools would
    // oversubscribe cores without changing the (stream-seeded) estimates.
    let mc_attr = config
        .engine_config(Algorithm::MonteCarlo)
        .with_seed(config.seed.wrapping_add(instance_seed))
        .with_threads(1)
        .attributor();
    let (mc, mc_att) = timed(|| mc_attr.attribute(lineage, &budget()).ok());
    let mc_estimates = mc_att.as_ref().map(Attribution::estimates);

    // IchiBan-ε top-k.
    let ichi = config.engine_config(Algorithm::IchiBan).attributor();
    let (mut ichiban, ranked) = timed(|| ichi.top_k(lineage, config.topk, &budget()).ok());
    ichiban.steps = ranked.as_ref().map(|r| r.stats.compile_steps).unwrap_or(0);
    let ichiban_topk = ranked.map(|r| r.order);

    // CNF proxy (linear time, never budgeted out in practice).
    let proxy = config.engine_config(Algorithm::CnfProxy).attributor();
    let proxy_scores =
        proxy.attribute(lineage, &Budget::unlimited()).map(|a| a.estimates()).unwrap_or_default();

    InstanceRecord {
        corpus: corpus.to_owned(),
        query: query.to_owned(),
        num_vars: lineage.num_vars(),
        num_clauses: lineage.num_clauses(),
        exaban,
        sig22,
        adaban,
        mc,
        ichiban,
        exact,
        adaban_estimates,
        mc_estimates,
        proxy_scores,
        ichiban_topk,
    }
}

/// Runs the full sweep over all corpora and returns one record per instance.
///
/// Instances are fanned across [`HarnessConfig::threads`] workers; the
/// records come back in the same deterministic corpus/instance order as the
/// sequential sweep, and every *completed* instance records identical scores
/// at any thread count. Parallel runs contend for cores, so under the
/// per-algorithm wall-clock timeout a borderline instance may time out at
/// one thread count and finish at another, and per-instance timings are for
/// trend reading, not for the paper's tables.
pub fn run_sweep(config: &HarnessConfig) -> Vec<InstanceRecord> {
    let corpora = config.corpora();
    // A sweep-global index keeps the Monte Carlo sample streams independent
    // across corpora (a per-corpus index would replay the same seeds for
    // every corpus).
    let work: Vec<(&str, &str, &Dnf)> = corpora
        .iter()
        .flat_map(|corpus| {
            corpus
                .instances
                .iter()
                .map(|instance| (corpus.name.as_str(), instance.query.as_str(), &instance.lineage))
        })
        .collect();
    config.pool().parallel_map(&work, |sweep_index, &(corpus, query, lineage)| {
        run_instance(corpus, query, lineage, config, sweep_index as u64)
    })
}

/// Outcome of running one corpus through an engine [`banzhaf_engine::Session`]
/// with the d-tree cache enabled vs disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheComparison {
    /// Instances attributed (in both runs).
    pub instances: usize,
    /// Cache hits observed in the cached run.
    pub cache_hits: u64,
    /// Total compile steps with the cache enabled.
    pub cached_steps: u64,
    /// Total compile steps with the cache disabled.
    pub uncached_steps: u64,
}

/// Attributes every lineage twice through engine sessions — once with the
/// canonical-lineage d-tree cache, once without — and reports the compile
/// work each run performed. Both sessions attribute the canonical form, so
/// per-instance compile work is identical except where the cache elides it.
///
/// Every *completed* attribution is charged to its run's step total — in
/// particular a cache miss is charged even if the uncached run timed out on
/// the same instance, so later hits on that shape can never claim savings
/// whose one-time compile cost was dropped (under tight budgets the bias is
/// against the cache, never in its favour). `instances` counts the instances
/// both runs completed.
pub fn compare_cache(lineages: &[&Dnf], config: &HarnessConfig) -> CacheComparison {
    let mut comparison = CacheComparison::default();
    let base = config.engine_config(Algorithm::ExaBan);
    let mut cached = Engine::new(base.clone().with_cache_config(CacheConfig::new())).session();
    let mut uncached = Engine::new(base.with_cache_config(CacheConfig::disabled())).session();
    for lineage in lineages {
        let (a, b) = (cached.attribute(lineage), uncached.attribute(lineage));
        if let Ok(a) = &a {
            comparison.cache_hits += a.stats.cache_hit as u64;
            comparison.cached_steps += a.stats.compile_steps;
        }
        if let Ok(b) = &b {
            comparison.uncached_steps += b.stats.compile_steps;
        }
        if a.is_ok() && b.is_ok() {
            comparison.instances += 1;
        }
    }
    comparison
}

/// Groups records by corpus name (preserving first-seen corpus order).
pub fn by_corpus(records: &[InstanceRecord]) -> Vec<(String, Vec<&InstanceRecord>)> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&InstanceRecord>> = HashMap::new();
    for r in records {
        if !order.contains(&r.corpus) {
            order.push(r.corpus.clone());
        }
        groups.entry(r.corpus.clone()).or_default().push(r);
    }
    order
        .into_iter()
        .map(|name| {
            let group = groups.remove(&name).unwrap_or_default();
            (name, group)
        })
        .collect()
}

/// Query-level success rate: the fraction of queries for which *every*
/// instance of that query succeeded for the given algorithm.
pub fn query_success_rate(
    records: &[&InstanceRecord],
    succeeded: impl Fn(&InstanceRecord) -> bool,
) -> (usize, usize) {
    let mut per_query: HashMap<&str, bool> = HashMap::new();
    for r in records {
        let entry = per_query.entry(r.query.as_str()).or_insert(true);
        *entry = *entry && succeeded(r);
    }
    let total = per_query.len();
    let ok = per_query.values().filter(|&&v| v).count();
    (ok, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HarnessConfig {
        HarnessConfig { timeout: Duration::from_millis(200), ..Default::default() }
    }

    #[test]
    fn run_instance_records_everything_on_small_lineage() {
        let lineage =
            Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(0), Var(2)], vec![Var(3)]]);
        let config = small_config();
        let record = run_instance("test", "q", &lineage, &config, 1);
        assert!(record.exaban.success);
        assert!(record.sig22.success);
        assert!(record.adaban.success);
        assert!(record.mc.success);
        assert!(record.ichiban.success);
        let exact = record.exact.as_ref().unwrap();
        assert_eq!(exact[&Var(3)].to_u64(), Some(5));
        assert_eq!(record.exact_topk(1).unwrap(), vec![Var(3)]);
        assert_eq!(record.num_vars, 4);
        assert!(!record.proxy_scores.is_empty());
        // The Sig22 baseline explores DPLL nodes; the engine reports them.
        assert!(record.sig22.steps > 0);
    }

    #[test]
    fn query_success_rate_requires_all_instances() {
        let lineage = Dnf::from_clauses(vec![vec![Var(0)]]);
        let config = small_config();
        let mut a = run_instance("c", "q1", &lineage, &config, 1);
        let b = run_instance("c", "q1", &lineage, &config, 2);
        let c = run_instance("c", "q2", &lineage, &config, 3);
        a.exaban.success = false;
        let records = vec![&a, &b, &c];
        let (ok, total) = query_success_rate(&records, |r| r.exaban.success);
        assert_eq!((ok, total), (1, 2));
    }

    #[test]
    fn grouping_by_corpus() {
        let lineage = Dnf::from_clauses(vec![vec![Var(0)]]);
        let config = small_config();
        let a = run_instance("c1", "q", &lineage, &config, 1);
        let b = run_instance("c2", "q", &lineage, &config, 2);
        let records = vec![a, b];
        let grouped = by_corpus(&records);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "c1");
        assert_eq!(grouped[0].1.len(), 1);
    }

    #[test]
    fn cache_reduces_compile_steps_on_repeated_lineages() {
        // Six isomorphic non-hierarchical lineages (shifted variable ids):
        // with the cache only the first one is compiled.
        let lineages: Vec<Dnf> = (0..6u32)
            .map(|s| {
                let o = s * 10;
                Dnf::from_clauses(vec![
                    vec![Var(o), Var(o + 1)],
                    vec![Var(o + 1), Var(o + 2)],
                    vec![Var(o + 2), Var(o + 3)],
                    vec![Var(o + 3), Var(o)],
                ])
            })
            .collect();
        let refs: Vec<&Dnf> = lineages.iter().collect();
        let comparison = compare_cache(&refs, &small_config());
        assert_eq!(comparison.instances, 6);
        assert_eq!(comparison.cache_hits, 5);
        assert!(
            comparison.cached_steps < comparison.uncached_steps,
            "cache must save compile steps: {} vs {}",
            comparison.cached_steps,
            comparison.uncached_steps
        );
        // Exactly one compilation's worth of work with the cache.
        assert_eq!(comparison.cached_steps * 6, comparison.uncached_steps);
    }
}
