//! Shared instrumentation: run every algorithm on every instance of a corpus
//! under a per-instance budget and record runtimes, successes and outputs.

use banzhaf::{
    adaban_all, exaban_all, ichiban_topk, AdaBanOptions, Budget, DTree, IchiBanOptions,
    PivotHeuristic, Var,
};
use banzhaf_arith::Natural;
use banzhaf_baselines::{cnf_proxy, mc_banzhaf, sig22_exact, McOptions};
use banzhaf_workloads::{academic_like, imdb_like, tpch_like, Corpus, DatasetSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Harness configuration shared by all experiments.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Per-instance, per-algorithm timeout (the paper uses one hour on a
    /// server; the laptop-scale default here is one second).
    pub timeout: Duration,
    /// Scale factor passed to the synthetic dataset generators.
    pub scale: usize,
    /// Relative error used for AdaBan / IchiBan (the paper's headline setting
    /// is 0.1).
    pub epsilon: String,
    /// Monte Carlo samples per variable (the paper's `MC50#vars`).
    pub mc_samples_per_var: u64,
    /// RNG seed for dataset generation and sampling.
    pub seed: u64,
    /// Top-k size used for the ranking experiments.
    pub topk: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            timeout: Duration::from_millis(500),
            scale: 1,
            epsilon: "0.1".to_owned(),
            mc_samples_per_var: 50,
            seed: 0xBA27AF,
            topk: 10,
        }
    }
}

impl HarnessConfig {
    /// The dataset spec corresponding to this configuration.
    pub fn dataset_spec(&self) -> DatasetSpec {
        DatasetSpec { scale: self.scale, seed: self.seed }
    }

    /// Builds the three corpora.
    pub fn corpora(&self) -> Vec<Corpus> {
        let spec = self.dataset_spec();
        vec![academic_like(&spec), imdb_like(&spec), tpch_like(&spec)]
    }
}

/// Outcome of one algorithm on one instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgoRun {
    /// Wall-clock seconds spent (up to the timeout).
    pub seconds: f64,
    /// Whether the algorithm finished within the budget.
    pub success: bool,
}

/// Everything recorded about one lineage instance.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    /// Corpus (dataset family) name.
    pub corpus: String,
    /// Query name within the corpus.
    pub query: String,
    /// Number of lineage variables.
    pub num_vars: usize,
    /// Number of lineage clauses.
    pub num_clauses: usize,
    /// ExaBan outcome (full compilation + all-variables exact values).
    pub exaban: AlgoRun,
    /// Sig22 baseline outcome.
    pub sig22: AlgoRun,
    /// AdaBan outcome (all variables, relative error ε).
    pub adaban: AlgoRun,
    /// Monte Carlo outcome.
    pub mc: AlgoRun,
    /// IchiBan-ε top-k outcome.
    pub ichiban: AlgoRun,
    /// Exact Banzhaf values (when ExaBan succeeded).
    pub exact: Option<HashMap<Var, Natural>>,
    /// AdaBan interval midpoints (when AdaBan succeeded).
    pub adaban_estimates: Option<HashMap<Var, f64>>,
    /// Monte Carlo estimates (when MC succeeded).
    pub mc_estimates: Option<HashMap<Var, f64>>,
    /// CNF-proxy scores (always available; linear time).
    pub proxy_scores: HashMap<Var, f64>,
    /// IchiBan-ε top-k members (when it succeeded).
    pub ichiban_topk: Option<Vec<Var>>,
}

impl InstanceRecord {
    /// Ground-truth top-k variables by exact Banzhaf value, if available.
    pub fn exact_topk(&self, k: usize) -> Option<Vec<Var>> {
        let exact = self.exact.as_ref()?;
        let mut vars: Vec<(&Var, &Natural)> = exact.iter().collect();
        vars.sort_by(|(va, ba), (vb, bb)| bb.cmp(ba).then(va.cmp(vb)));
        Some(vars.into_iter().take(k).map(|(v, _)| *v).collect())
    }
}

fn timed<T>(f: impl FnOnce() -> Option<T>) -> (AlgoRun, Option<T>) {
    let start = Instant::now();
    let out = f();
    let seconds = start.elapsed().as_secs_f64();
    (AlgoRun { seconds, success: out.is_some() }, out)
}

/// Runs every algorithm on one lineage and records the outcomes.
pub fn run_instance(
    corpus: &str,
    query: &str,
    lineage: &banzhaf_boolean::Dnf,
    config: &HarnessConfig,
    rng: &mut StdRng,
) -> InstanceRecord {
    let vars: Vec<Var> = lineage.universe().iter().collect();

    // ExaBan: full compilation + all-variables pass.
    let (exaban, exact) = timed(|| {
        let budget = Budget::with_timeout(config.timeout);
        let tree =
            DTree::compile_full(lineage.clone(), PivotHeuristic::MostFrequent, &budget).ok()?;
        Some(exaban_all(&tree).values)
    });

    // Sig22 baseline.
    let (sig22, _) = timed(|| {
        let budget = Budget::with_timeout(config.timeout);
        sig22_exact(lineage, &budget).ok()
    });

    // AdaBan with relative error ε over all variables.
    let (adaban, adaban_estimates) = timed(|| {
        let budget = Budget::with_timeout(config.timeout);
        let options = AdaBanOptions::with_epsilon_str(&config.epsilon);
        let mut tree = DTree::from_leaf(lineage.clone());
        let intervals = adaban_all(&mut tree, &vars, &options, &budget).ok()?;
        Some(
            intervals
                .into_iter()
                .map(|(v, interval)| (v, interval.midpoint()))
                .collect::<HashMap<Var, f64>>(),
        )
    });

    // Monte Carlo with 50·#vars samples in total (50 per variable).
    let (mc, mc_estimates) = timed(|| {
        let budget = Budget::with_timeout(config.timeout);
        let options = McOptions { samples_per_var: config.mc_samples_per_var };
        mc_banzhaf(lineage, &options, rng, &budget).ok()
    });

    // IchiBan-ε top-k.
    let (ichiban, ichiban_topk) = timed(|| {
        let budget = Budget::with_timeout(config.timeout);
        let options = IchiBanOptions::with_epsilon_str(&config.epsilon);
        let mut tree = DTree::from_leaf(lineage.clone());
        let topk = ichiban_topk(&mut tree, config.topk, &options, &budget).ok()?;
        Some(topk.members)
    });

    InstanceRecord {
        corpus: corpus.to_owned(),
        query: query.to_owned(),
        num_vars: lineage.num_vars(),
        num_clauses: lineage.num_clauses(),
        exaban,
        sig22,
        adaban,
        mc,
        ichiban,
        exact,
        adaban_estimates,
        mc_estimates,
        proxy_scores: cnf_proxy(lineage),
        ichiban_topk,
    }
}

/// Runs the full sweep over all corpora and returns one record per instance.
pub fn run_sweep(config: &HarnessConfig) -> Vec<InstanceRecord> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED);
    let mut records = Vec::new();
    for corpus in config.corpora() {
        for instance in &corpus.instances {
            records.push(run_instance(
                &corpus.name,
                &instance.query,
                &instance.lineage,
                config,
                &mut rng,
            ));
        }
    }
    records
}

/// Groups records by corpus name (preserving first-seen corpus order).
pub fn by_corpus(records: &[InstanceRecord]) -> Vec<(String, Vec<&InstanceRecord>)> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&InstanceRecord>> = HashMap::new();
    for r in records {
        if !order.contains(&r.corpus) {
            order.push(r.corpus.clone());
        }
        groups.entry(r.corpus.clone()).or_default().push(r);
    }
    order
        .into_iter()
        .map(|name| {
            let group = groups.remove(&name).unwrap_or_default();
            (name, group)
        })
        .collect()
}

/// Query-level success rate: the fraction of queries for which *every*
/// instance of that query succeeded for the given algorithm.
pub fn query_success_rate(
    records: &[&InstanceRecord],
    succeeded: impl Fn(&InstanceRecord) -> bool,
) -> (usize, usize) {
    let mut per_query: HashMap<&str, bool> = HashMap::new();
    for r in records {
        let entry = per_query.entry(r.query.as_str()).or_insert(true);
        *entry = *entry && succeeded(r);
    }
    let total = per_query.len();
    let ok = per_query.values().filter(|&&v| v).count();
    (ok, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzhaf_boolean::Dnf;

    fn small_config() -> HarnessConfig {
        HarnessConfig { timeout: Duration::from_millis(200), ..Default::default() }
    }

    #[test]
    fn run_instance_records_everything_on_small_lineage() {
        let lineage =
            Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(0), Var(2)], vec![Var(3)]]);
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(1);
        let record = run_instance("test", "q", &lineage, &config, &mut rng);
        assert!(record.exaban.success);
        assert!(record.sig22.success);
        assert!(record.adaban.success);
        assert!(record.mc.success);
        assert!(record.ichiban.success);
        let exact = record.exact.as_ref().unwrap();
        assert_eq!(exact[&Var(3)].to_u64(), Some(5));
        assert_eq!(record.exact_topk(1).unwrap(), vec![Var(3)]);
        assert_eq!(record.num_vars, 4);
        assert!(!record.proxy_scores.is_empty());
    }

    #[test]
    fn query_success_rate_requires_all_instances() {
        let lineage = Dnf::from_clauses(vec![vec![Var(0)]]);
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = run_instance("c", "q1", &lineage, &config, &mut rng);
        let b = run_instance("c", "q1", &lineage, &config, &mut rng);
        let c = run_instance("c", "q2", &lineage, &config, &mut rng);
        a.exaban.success = false;
        let records = vec![&a, &b, &c];
        let (ok, total) = query_success_rate(&records, |r| r.exaban.success);
        assert_eq!((ok, total), (1, 2));
    }

    #[test]
    fn grouping_by_corpus() {
        let lineage = Dnf::from_clauses(vec![vec![Var(0)]]);
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(1);
        let a = run_instance("c1", "q", &lineage, &config, &mut rng);
        let b = run_instance("c2", "q", &lineage, &config, &mut rng);
        let records = vec![a, b];
        let grouped = by_corpus(&records);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "c1");
        assert_eq!(grouped[0].1.len(), 1);
    }
}
