//! Structural query analyses: self-join-freeness and the hierarchical
//! property (Sec. 2 and the dichotomy of Sec. 4.2).

use crate::ConjunctiveQuery;
use std::collections::{BTreeSet, HashMap};

/// `true` iff the CQ is self-join free: no two atoms use the same relation
/// symbol.
pub fn is_self_join_free(cq: &ConjunctiveQuery) -> bool {
    let mut seen = BTreeSet::new();
    cq.atoms.iter().all(|a| seen.insert(a.relation.as_str()))
}

/// `true` iff the CQ is hierarchical with respect to its existential
/// variables: for any two variables `X`, `Y`, the atom sets `at(X)` and
/// `at(Y)` are comparable by inclusion or disjoint.
///
/// For a Boolean query this is exactly the paper's definition; for a
/// non-Boolean query we follow the standard convention of checking the
/// property over the existential (bound) variables only, which is the notion
/// relevant to per-answer lineage (each answer fixes the free variables to
/// constants).
///
/// The dichotomy of Theorem 17 states that Banzhaf-based ranking (like exact
/// Banzhaf computation) is tractable for hierarchical self-join-free CQs and
/// intractable otherwise; operationally, lineages of hierarchical queries
/// compile into d-trees without Shannon expansion.
pub fn is_hierarchical(cq: &ConjunctiveQuery) -> bool {
    let bound = cq.bound_variables();
    let mut at: HashMap<&str, BTreeSet<usize>> = HashMap::new();
    for v in &bound {
        at.insert(v.as_str(), BTreeSet::new());
    }
    for (idx, atom) in cq.atoms.iter().enumerate() {
        for v in atom.variables() {
            if let Some(set) = at.get_mut(v) {
                set.insert(idx);
            }
        }
    }
    let sets: Vec<&BTreeSet<usize>> = at.values().collect();
    for (i, a) in sets.iter().enumerate() {
        for b in sets.iter().skip(i + 1) {
            let disjoint = a.is_disjoint(b);
            let a_in_b = a.is_subset(b);
            let b_in_a = b.is_subset(a);
            if !(disjoint || a_in_b || b_in_a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn cq(text: &str) -> ConjunctiveQuery {
        parse_program(text).unwrap().disjuncts.remove(0)
    }

    #[test]
    fn example_5_hierarchical_query() {
        // Q = ∃X,Y,Z,V,U R(X,Y,Z) ∧ S(X,Y,V) ∧ T(X,U) is hierarchical.
        let q = cq("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U).");
        assert!(is_hierarchical(&q));
        assert!(is_self_join_free(&q));
    }

    #[test]
    fn example_5_non_hierarchical_query() {
        // Q = ∃X,Y R(X) ∧ S(X,Y) ∧ T(Y) is not hierarchical.
        let q = cq("Q() :- R(X), S(X, Y), T(Y).");
        assert!(!is_hierarchical(&q));
        assert!(is_self_join_free(&q));
    }

    #[test]
    fn self_joins_detected() {
        let q = cq("Q() :- R(X, Y), R(Y, Z).");
        assert!(!is_self_join_free(&q));
    }

    #[test]
    fn free_variables_do_not_break_hierarchy() {
        // The non-Boolean variant of the hierarchical query from App. D:
        // Q(X) :- R(X), S(X, Y), T(X, Z). The bound variables Y and Z each
        // occur in a single atom, so the query is hierarchical.
        let q = cq("Q(X) :- R(X), S(X, Y), T(X, Z).");
        assert!(is_hierarchical(&q));
        // Whereas treating the join variable as bound makes R(X),S(X,Y),T(Y)
        // non-hierarchical even with a free head variable elsewhere.
        let q = cq("Q(Z) :- R(X), S(X, Y), T(Y), U(Z, X).");
        assert!(!is_hierarchical(&q));
    }

    #[test]
    fn single_atom_queries_are_hierarchical() {
        assert!(is_hierarchical(&cq("Q() :- R(X, Y, Z).")));
        assert!(is_hierarchical(&cq("Q(X) :- R(X).")));
    }
}
