//! Abstract syntax of conjunctive queries and unions thereof.

use banzhaf_boolean::AggregateKind;
use banzhaf_db::Value;
use std::fmt;

/// A term in an atom: a query variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A query variable (by name, conventionally upper-case).
    Variable(String),
    /// A constant value.
    Constant(Value),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Variable(name.into())
    }

    /// Convenience constructor for a constant term.
    pub fn constant(value: impl Into<Value>) -> Term {
        Term::Constant(value.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            Term::Variable(v) => Some(v),
            Term::Constant(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Variable(v) => write!(f, "{v}"),
            Term::Constant(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `R(t1, ..., tk)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub relation: String,
    /// The terms, one per attribute.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom { relation: relation.into(), terms }
    }

    /// The names of the variables occurring in the atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> + '_ {
        self.terms.iter().filter_map(Term::as_variable)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self.terms.iter().map(Term::to_string).collect();
        write!(f, "{}({})", self.relation, terms.join(", "))
    }
}

/// Comparison operators of selection predicates (`X θ const`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Comparison {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl Comparison {
    /// Evaluates `lhs θ rhs`.
    pub fn evaluate(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            Comparison::Lt => lhs < rhs,
            Comparison::Le => lhs <= rhs,
            Comparison::Eq => lhs == rhs,
            Comparison::Ne => lhs != rhs,
            Comparison::Ge => lhs >= rhs,
            Comparison::Gt => lhs > rhs,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Eq => "=",
            Comparison::Ne => "!=",
            Comparison::Ge => ">=",
            Comparison::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// A selection predicate `X θ const`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Selection {
    /// The constrained query variable.
    pub variable: String,
    /// The comparison operator.
    pub comparison: Comparison,
    /// The constant compared against.
    pub constant: Value,
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.variable, self.comparison, self.constant)
    }
}

/// An aggregate head term: `COUNT(*)`, `SUM(V)`, `MIN(V)`, or `MAX(V)`.
///
/// Written as the *last* head term in the textual syntax; the remaining head
/// variables are the grouping keys. `COUNT(*)` takes no input; the other
/// kinds aggregate the groundings' bindings of `input`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AggregateSpec {
    /// Which aggregate is computed over each group's groundings.
    pub kind: AggregateKind,
    /// The aggregated body variable — `None` for `COUNT(*)`.
    pub input: Option<String>,
}

impl fmt::Display for AggregateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(v) => write!(f, "{}({v})", self.kind),
            None => write!(f, "{}(*)", self.kind),
        }
    }
}

/// A conjunctive query with selection predicates.
///
/// `head` lists the free (output) variables; every other variable is
/// existentially quantified. A query with an empty head is Boolean. A query
/// with an `aggregate` groups its groundings by the head variables and
/// aggregates each group (the head variables become grouping keys, as in
/// SQL's `GROUP BY`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    /// Name of the query (the head predicate in the textual syntax).
    pub name: String,
    /// The free variables, in output order.
    pub head: Vec<String>,
    /// The aggregate computed per head-variable group, if any.
    pub aggregate: Option<AggregateSpec>,
    /// The relational atoms.
    pub atoms: Vec<Atom>,
    /// The selection predicates.
    pub selections: Vec<Selection>,
}

impl ConjunctiveQuery {
    /// `true` iff the query has no free variables.
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// All variable names occurring in atoms, deduplicated, in first-seen
    /// order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if !seen.iter().any(|s: &String| s == v) {
                    seen.push(v.to_owned());
                }
            }
        }
        seen
    }

    /// The existential (bound) variables: those not in the head.
    pub fn bound_variables(&self) -> Vec<String> {
        self.variables().into_iter().filter(|v| !self.head.contains(v)).collect()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atoms: Vec<String> = self.atoms.iter().map(Atom::to_string).collect();
        let mut body = atoms.join(", ");
        if !self.selections.is_empty() {
            let sels: Vec<String> = self.selections.iter().map(Selection::to_string).collect();
            body = format!("{}, {}", body, sels.join(", "));
        }
        let mut head_terms = self.head.clone();
        if let Some(agg) = &self.aggregate {
            head_terms.push(agg.to_string());
        }
        write!(f, "{}({}) :- {}.", self.name, head_terms.join(", "), body)
    }
}

/// A union of conjunctive queries. All disjuncts share the same head arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Wraps a single CQ.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        UnionQuery { disjuncts: vec![cq] }
    }

    /// `true` iff all disjuncts are Boolean.
    pub fn is_boolean(&self) -> bool {
        self.disjuncts.iter().all(ConjunctiveQuery::is_boolean)
    }

    /// The common head arity.
    pub fn head_arity(&self) -> usize {
        self.disjuncts.first().map_or(0, |cq| cq.head.len())
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cq in &self.disjuncts {
            writeln!(f, "{cq}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cq() -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: "Q".into(),
            head: vec!["X".into()],
            aggregate: None,
            atoms: vec![
                Atom::new("R", vec![Term::var("X"), Term::var("Y")]),
                Atom::new("S", vec![Term::var("Y"), Term::constant(5)]),
            ],
            selections: vec![Selection {
                variable: "Y".into(),
                comparison: Comparison::Gt,
                constant: Value::from(3),
            }],
        }
    }

    #[test]
    fn aggregate_heads_display() {
        let mut cq = sample_cq();
        cq.aggregate = Some(AggregateSpec { kind: AggregateKind::Sum, input: Some("Y".into()) });
        assert!(cq.to_string().contains("Q(X, SUM(Y)) :-"));
        cq.head.clear();
        cq.aggregate = Some(AggregateSpec { kind: AggregateKind::Count, input: None });
        assert!(cq.to_string().contains("Q(COUNT(*)) :-"));
    }

    #[test]
    fn variable_collection() {
        let cq = sample_cq();
        assert_eq!(cq.variables(), vec!["X".to_owned(), "Y".to_owned()]);
        assert_eq!(cq.bound_variables(), vec!["Y".to_owned()]);
        assert!(!cq.is_boolean());
    }

    #[test]
    fn display_roundtrips_structure() {
        let cq = sample_cq();
        let s = cq.to_string();
        assert!(s.contains("Q(X) :- R(X, Y), S(Y, 5), Y > 3."));
    }

    #[test]
    fn comparisons() {
        use Comparison::*;
        let three = Value::from(3);
        let five = Value::from(5);
        assert!(Lt.evaluate(&three, &five));
        assert!(Le.evaluate(&three, &three));
        assert!(Eq.evaluate(&three, &three));
        assert!(Ne.evaluate(&three, &five));
        assert!(Ge.evaluate(&five, &five));
        assert!(Gt.evaluate(&five, &three));
        assert!(!Gt.evaluate(&three, &five));
    }

    #[test]
    fn union_query_helpers() {
        let q = UnionQuery::single(sample_cq());
        assert_eq!(q.head_arity(), 1);
        assert!(!q.is_boolean());
    }
}
