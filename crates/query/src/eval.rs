//! Provenance-aware query evaluation: computing per-answer lineage.
//!
//! The evaluator enumerates homomorphisms from each conjunctive query into the
//! database by backtracking over atoms (most-bound-first ordering), applying
//! selection predicates as soon as their variable is bound. Every homomorphism
//! (grounding) contributes one clause to the lineage of the answer tuple it
//! produces: the conjunction of the provenance variables of the *endogenous*
//! facts it uses (exogenous facts contribute nothing, missing facts prune the
//! grounding), exactly as defined in Sec. 2 of the paper.

use crate::{ConjunctiveQuery, Term, UnionQuery};
use banzhaf_arith::Rational;
use banzhaf_boolean::{Dnf, Var, VarSet, WeightedDnf};
use banzhaf_db::{Database, FactId, Provenance, Value};
use std::collections::HashMap;
use std::fmt;

/// One answer tuple with its lineage.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The values of the free variables, in head order (empty for Boolean
    /// queries).
    pub tuple: Vec<Value>,
    /// The lineage: a positive DNF over the provenance variables of the
    /// endogenous facts.
    pub lineage: Dnf,
}

/// The result of evaluating a UCQ over a database.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    answers: Vec<Answer>,
    /// Tuple → position in `answers`, so per-answer lookups are O(1) instead
    /// of a linear scan (query results can have many thousands of answers).
    index: HashMap<Vec<Value>, usize>,
}

impl QueryResult {
    /// The answers, sorted by tuple for determinism.
    pub fn answers(&self) -> &[Answer] {
        &self.answers
    }

    /// Looks up the lineage of a particular answer tuple.
    pub fn lineage_of(&self, tuple: &[Value]) -> Option<&Dnf> {
        self.index.get(tuple).map(|&i| &self.answers[i].lineage)
    }

    /// Consumes the result, yielding the owned answers (still sorted by
    /// tuple) without cloning their lineages.
    pub fn into_answers(self) -> Vec<Answer> {
        self.answers
    }

    /// `true` iff the (Boolean) query is satisfied, i.e. there is at least one
    /// answer with at least one grounding.
    pub fn is_satisfied(&self) -> bool {
        self.answers.iter().any(|a| !a.lineage.is_false())
    }
}

/// Evaluates a UCQ over a database, producing one lineage per answer tuple.
///
/// The propositional variable of an endogenous fact with id `f` is `Var(f.0)`,
/// so callers can map lineage variables back to facts via
/// [`Database::fact`](banzhaf_db::Database::fact).
pub fn evaluate(query: &UnionQuery, db: &Database) -> QueryResult {
    // Collect clauses per answer tuple across all disjuncts.
    let mut clauses: HashMap<Vec<Value>, Vec<Vec<Var>>> = HashMap::new();
    for cq in &query.disjuncts {
        let groundings = enumerate_groundings(cq, db);
        for (tuple, clause) in groundings {
            clauses.entry(tuple).or_default().push(clause);
        }
    }
    let mut answers: Vec<Answer> = clauses
        .into_iter()
        .map(|(tuple, clause_list)| {
            let universe: VarSet = clause_list.iter().flatten().copied().collect();
            let lineage = Dnf::from_clauses_with_universe(clause_list, universe);
            Answer { tuple, lineage }
        })
        .collect();
    answers.sort_by(|a, b| a.tuple.cmp(&b.tuple));
    let index = answers.iter().enumerate().map(|(i, a)| (a.tuple.clone(), i)).collect();
    QueryResult { answers, index }
}

/// One group of an aggregate query: the grouping-key tuple and the weighted
/// lineage of its aggregate value.
#[derive(Clone, Debug)]
pub struct AggregateAnswer {
    /// The values of the grouping (head) variables, in head order — empty
    /// when the whole result is one group (`Q(COUNT(*)) :- ...`).
    pub tuple: Vec<Value>,
    /// The weighted lineage: one clause per grounding (the endogenous facts
    /// it uses) carrying that grounding's numeric contribution. Groundings
    /// over the same fact set merge kind-aware (`SUM`/`COUNT` add, `MIN`
    /// keeps the least, `MAX` the greatest).
    pub lineage: WeightedDnf,
}

/// The result of aggregate evaluation: one [`AggregateAnswer`] per group.
#[derive(Clone, Debug, Default)]
pub struct AggregateResult {
    answers: Vec<AggregateAnswer>,
    index: HashMap<Vec<Value>, usize>,
}

impl AggregateResult {
    /// The groups, sorted by grouping tuple for determinism.
    pub fn answers(&self) -> &[AggregateAnswer] {
        &self.answers
    }

    /// Looks up the weighted lineage of a particular group.
    pub fn lineage_of(&self, tuple: &[Value]) -> Option<&WeightedDnf> {
        self.index.get(tuple).map(|&i| &self.answers[i].lineage)
    }

    /// Consumes the result, yielding the owned answers (still sorted by
    /// tuple) without cloning their lineages.
    pub fn into_answers(self) -> Vec<AggregateAnswer> {
        self.answers
    }
}

/// Why aggregate evaluation refused a query or database.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AggregateError {
    /// A disjunct carries no aggregate head term — use [`evaluate`].
    MissingAggregate,
    /// The disjuncts disagree on the aggregate kind.
    MixedAggregates,
    /// A grounding bound the aggregated variable to a non-integer value.
    NonIntegerInput {
        /// The aggregated variable.
        variable: String,
        /// The offending binding.
        value: Value,
    },
    /// A grounding uses only exogenous facts: its contribution would hold in
    /// every world, which the weighted lineage (and the Banzhaf attribution
    /// over it) cannot represent.
    UnconditionalGrounding,
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::MissingAggregate => {
                write!(f, "the query has no aggregate head term")
            }
            AggregateError::MixedAggregates => {
                write!(f, "all disjuncts must carry the same aggregate kind")
            }
            AggregateError::NonIntegerInput { variable, value } => {
                write!(f, "aggregated variable {variable} bound to non-integer value {value}")
            }
            AggregateError::UnconditionalGrounding => {
                write!(
                    f,
                    "a grounding uses only exogenous facts; its contribution is unconditional"
                )
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// Evaluates an aggregate UCQ, producing one [`WeightedDnf`] lineage per
/// group of the head variables.
///
/// Every grounding contributes one weighted clause to its group: the clause
/// is the conjunction of the endogenous facts the grounding uses (exactly as
/// in [`evaluate`]) and the weight is the grounding's numeric contribution —
/// `1` for `COUNT(*)`, the binding of the aggregated variable for
/// `SUM`/`MIN`/`MAX`. The possible-world value of the group's aggregate is
/// then the lineage's [`WeightedDnf::evaluate`] and exact attribution runs
/// over it via the engine's aggregate backends.
///
/// # Errors
/// Rejects queries without an aggregate (or with disagreeing kinds across
/// disjuncts), groundings that bind the aggregated variable to a string, and
/// groundings using only exogenous facts (their contribution would be
/// unconditional, which a weighted lineage cannot represent).
pub fn evaluate_aggregate(
    query: &UnionQuery,
    db: &Database,
) -> Result<AggregateResult, AggregateError> {
    let specs = query
        .disjuncts
        .iter()
        .map(|cq| cq.aggregate.as_ref().ok_or(AggregateError::MissingAggregate))
        .collect::<Result<Vec<_>, _>>()?;
    let kind = specs.first().ok_or(AggregateError::MissingAggregate)?.kind;
    if specs.iter().any(|s| s.kind != kind) {
        return Err(AggregateError::MixedAggregates);
    }
    let mut weighted: HashMap<Vec<Value>, Vec<(Vec<Var>, Rational)>> = HashMap::new();
    for (cq, spec) in query.disjuncts.iter().zip(specs) {
        // Reuse the Boolean grounding enumeration unchanged: appending the
        // aggregated variable to the head makes every grounding surface its
        // binding as the tuple's last component, popped off below.
        let mut probe = cq.clone();
        if let Some(input) = &spec.input {
            probe.head.push(input.clone());
        }
        for (mut tuple, clause) in enumerate_groundings(&probe, db) {
            let weight = match &spec.input {
                Some(variable) => {
                    let value =
                        tuple.pop().expect("the probe head appends the aggregated variable");
                    match value.as_int() {
                        Some(i) => Rational::from(i),
                        None => {
                            return Err(AggregateError::NonIntegerInput {
                                variable: variable.clone(),
                                value,
                            })
                        }
                    }
                }
                None => Rational::one(),
            };
            if clause.is_empty() {
                return Err(AggregateError::UnconditionalGrounding);
            }
            weighted.entry(tuple).or_default().push((clause, weight));
        }
    }
    let mut answers: Vec<AggregateAnswer> = weighted
        .into_iter()
        .map(|(tuple, pairs)| {
            let lineage = WeightedDnf::from_weighted_clauses(kind, pairs);
            AggregateAnswer { tuple, lineage }
        })
        .collect();
    answers.sort_by(|a, b| a.tuple.cmp(&b.tuple));
    let index = answers.iter().enumerate().map(|(i, a)| (a.tuple.clone(), i)).collect();
    Ok(AggregateResult { answers, index })
}

/// Groundings contributed by a single endogenous fact: every homomorphism of
/// `query` into `db` that uses the fact identified by `id` in at least one
/// atom, as `(answer tuple, clause)` pairs. `db` must already contain the
/// fact; an unknown or deleted id yields no groundings.
///
/// This is the delta rule of incremental view maintenance specialised to one
/// inserted fact: for each disjunct and each atom position whose relation
/// matches, the backtracking join re-runs with that position *pinned* to the
/// new tuple while every other atom ranges over the full (already updated)
/// database. A grounding that uses the new fact at `k` atom positions is
/// found `k` times; the canonical DNF constructor deduplicates the repeated
/// clauses.
pub fn delta_groundings(
    query: &UnionQuery,
    db: &Database,
    id: FactId,
) -> Vec<(Vec<Value>, Vec<Var>)> {
    let Some(fact) = db.fact(id) else {
        return Vec::new();
    };
    let mut results = Vec::new();
    for cq in &query.disjuncts {
        let order = atom_order(cq);
        for (atom_index, atom) in cq.atoms.iter().enumerate() {
            if atom.relation != fact.relation() || atom.terms.len() != fact.values().len() {
                continue;
            }
            let search = Search {
                cq,
                db,
                order: &order,
                pin: Some(Pin {
                    atom_index,
                    values: fact.values(),
                    provenance: Provenance::Endogenous(id),
                }),
            };
            let mut bindings: HashMap<&str, Value> = HashMap::new();
            let mut clause: Vec<Var> = Vec::new();
            ground_atom(&search, 0, &mut bindings, &mut clause, &mut results);
        }
    }
    results
}

/// Enumerates all groundings of a CQ, returning for each the answer tuple and
/// the clause of endogenous provenance variables it uses.
fn enumerate_groundings(cq: &ConjunctiveQuery, db: &Database) -> Vec<(Vec<Value>, Vec<Var>)> {
    // Order atoms greedily so that atoms sharing variables with already
    // processed atoms come early (reduces the branching of the backtracking
    // join).
    let order = atom_order(cq);
    let search = Search { cq, db, order: &order, pin: None };
    let mut results = Vec::new();
    let mut bindings: HashMap<&str, Value> = HashMap::new();
    let mut clause: Vec<Var> = Vec::new();
    ground_atom(&search, 0, &mut bindings, &mut clause, &mut results);
    results
}

fn atom_order(cq: &ConjunctiveQuery) -> Vec<usize> {
    let n = cq.atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    let mut bound_vars: Vec<&str> = Vec::new();
    while !remaining.is_empty() {
        // Pick the remaining atom with the most variables already bound
        // (ties: fewest unbound variables, then original order).
        let (pos, &idx) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &idx)| {
                let atom = &cq.atoms[idx];
                let bound = atom.variables().filter(|v| bound_vars.contains(v)).count();
                let unbound = atom.variables().count() - bound;
                (bound, usize::MAX - unbound)
            })
            .expect("remaining is non-empty");
        chosen.push(idx);
        for v in cq.atoms[idx].variables() {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        remaining.remove(pos);
    }
    chosen
}

/// The invariant context of one backtracking join: the query disjunct, the
/// database, the atom visit order, and (for delta evaluation) the atom
/// position pinned to a single tuple.
struct Search<'q, 'd> {
    cq: &'q ConjunctiveQuery,
    db: &'d Database,
    order: &'d [usize],
    pin: Option<Pin<'d>>,
}

/// A pinned atom occurrence: during grounding, the atom at `atom_index` is
/// matched only against this single tuple.
struct Pin<'d> {
    atom_index: usize,
    values: &'d [Value],
    provenance: Provenance,
}

fn ground_atom<'q>(
    search: &Search<'q, '_>,
    depth: usize,
    bindings: &mut HashMap<&'q str, Value>,
    clause: &mut Vec<Var>,
    results: &mut Vec<(Vec<Value>, Vec<Var>)>,
) {
    let cq = search.cq;
    if depth == search.order.len() {
        // All atoms grounded; check any selection that might involve
        // variables bound only now (they were checked eagerly, but re-check
        // defensively) and emit the answer.
        if !selections_hold(cq, bindings, true) {
            return;
        }
        let tuple: Vec<Value> = cq
            .head
            .iter()
            .map(|v| bindings.get(v.as_str()).expect("head variable bound by parser check").clone())
            .collect();
        results.push((tuple, clause.clone()));
        return;
    }
    let atom_index = search.order[depth];
    if let Some(pin) = search.pin.as_ref().filter(|pin| pin.atom_index == atom_index) {
        try_tuple(search, depth, pin.values, pin.provenance, bindings, clause, results);
        return;
    }
    let atom = &cq.atoms[atom_index];
    let Some(relation) = search.db.relation(&atom.relation) else {
        return; // Unknown relation: no groundings.
    };
    for (values, provenance) in relation.tuples() {
        try_tuple(search, depth, values, provenance, bindings, clause, results);
    }
}

/// Attempts to match the atom at `search.order[depth]` against one tuple:
/// unify, check selections, record the provenance variable and recurse.
fn try_tuple<'q>(
    search: &Search<'q, '_>,
    depth: usize,
    values: &[Value],
    provenance: Provenance,
    bindings: &mut HashMap<&'q str, Value>,
    clause: &mut Vec<Var>,
    results: &mut Vec<(Vec<Value>, Vec<Var>)>,
) {
    let cq = search.cq;
    let atom = &cq.atoms[search.order[depth]];
    if values.len() != atom.terms.len() {
        return;
    }
    // Try to unify the atom's terms with the tuple.
    let mut new_bindings: Vec<&'q str> = Vec::new();
    for (term, value) in atom.terms.iter().zip(values.iter()) {
        match term {
            Term::Constant(c) => {
                if c != value {
                    undo(bindings, &new_bindings);
                    return;
                }
            }
            Term::Variable(name) => match bindings.get(name.as_str()) {
                Some(bound) if bound != value => {
                    undo(bindings, &new_bindings);
                    return;
                }
                Some(_) => {}
                None => {
                    bindings.insert(name.as_str(), value.clone());
                    new_bindings.push(name.as_str());
                }
            },
        }
    }
    // Apply selections whose variables are bound.
    if !selections_hold(cq, bindings, false) {
        undo(bindings, &new_bindings);
        return;
    }
    let pushed_var = match provenance {
        Provenance::Endogenous(id) => {
            clause.push(Var(id.0));
            true
        }
        Provenance::Exogenous => false,
    };
    ground_atom(search, depth + 1, bindings, clause, results);
    if pushed_var {
        clause.pop();
    }
    undo(bindings, &new_bindings);
}

fn undo<'q>(bindings: &mut HashMap<&'q str, Value>, added: &[&'q str]) {
    for name in added {
        bindings.remove(name);
    }
}

/// Checks the selection predicates. When `require_all_bound` is false,
/// selections over still-unbound variables are treated as satisfied (they will
/// be re-checked once bound).
fn selections_hold(
    cq: &ConjunctiveQuery,
    bindings: &HashMap<&str, Value>,
    require_all_bound: bool,
) -> bool {
    cq.selections.iter().all(|sel| match bindings.get(sel.variable.as_str()) {
        Some(value) => sel.comparison.evaluate(value, &sel.constant),
        None => !require_all_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    /// The database of Example 6 of the paper.
    fn example6_db() -> Database {
        let mut db = Database::new();
        db.add_relation("R", 3);
        db.add_relation("S", 3);
        db.add_relation("T", 2);
        db.insert_endogenous("R", vec![1.into(), 2.into(), 3.into()]).unwrap();
        db.insert_endogenous("S", vec![1.into(), 2.into(), 4.into()]).unwrap();
        db.insert_endogenous("S", vec![1.into(), 2.into(), 5.into()]).unwrap();
        db.insert_endogenous("T", vec![1.into(), 6.into()]).unwrap();
        db
    }

    #[test]
    fn example_6_lineage() {
        let db = example6_db();
        let q = parse_program("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U).").unwrap();
        let result = evaluate(&q, &db);
        assert_eq!(result.answers().len(), 1);
        assert!(result.is_satisfied());
        let lineage = &result.answers()[0].lineage;
        // Two groundings → two clauses of three facts each, 4 variables total.
        assert_eq!(lineage.num_clauses(), 2);
        assert_eq!(lineage.num_vars(), 4);
        assert_eq!(lineage.brute_force_model_count().to_u64(), Some(3));
    }

    #[test]
    fn exogenous_facts_do_not_appear_in_lineage() {
        let mut db = Database::new();
        db.add_relation("R", 1);
        db.add_relation("S", 2);
        db.insert_endogenous("R", vec![1.into()]).unwrap();
        db.insert_exogenous("S", vec![1.into(), 2.into()]).unwrap();
        let q = parse_program("Q() :- R(X), S(X, Y).").unwrap();
        let result = evaluate(&q, &db);
        assert_eq!(result.answers().len(), 1);
        let lineage = &result.answers()[0].lineage;
        assert_eq!(lineage.num_vars(), 1);
        assert_eq!(lineage.num_clauses(), 1);
    }

    #[test]
    fn unsatisfied_boolean_query_has_no_answers() {
        let mut db = Database::new();
        db.add_relation("R", 1);
        db.add_relation("S", 2);
        db.insert_endogenous("R", vec![1.into()]).unwrap();
        // No S facts join with R(1).
        db.insert_endogenous("S", vec![7.into(), 2.into()]).unwrap();
        let q = parse_program("Q() :- R(X), S(X, Y).").unwrap();
        let result = evaluate(&q, &db);
        assert!(result.answers().is_empty());
        assert!(!result.is_satisfied());
    }

    #[test]
    fn free_variables_group_lineage_per_answer() {
        let mut db = Database::new();
        db.add_relation("R", 2);
        db.add_relation("S", 2);
        db.insert_endogenous("R", vec![1.into(), 10.into()]).unwrap();
        db.insert_endogenous("R", vec![1.into(), 20.into()]).unwrap();
        db.insert_endogenous("R", vec![2.into(), 30.into()]).unwrap();
        db.insert_endogenous("S", vec![10.into(), 1.into()]).unwrap();
        db.insert_endogenous("S", vec![20.into(), 1.into()]).unwrap();
        db.insert_endogenous("S", vec![30.into(), 1.into()]).unwrap();
        let q = parse_program("Q(X) :- R(X, Y), S(Y, Z).").unwrap();
        let result = evaluate(&q, &db);
        assert_eq!(result.answers().len(), 2);
        let lineage1 = result.lineage_of(&[Value::from(1)]).unwrap();
        let lineage2 = result.lineage_of(&[Value::from(2)]).unwrap();
        assert_eq!(lineage1.num_clauses(), 2);
        assert_eq!(lineage2.num_clauses(), 1);
        assert!(result.lineage_of(&[Value::from(3)]).is_none());
    }

    #[test]
    fn selections_filter_groundings() {
        let mut db = Database::new();
        db.add_relation("R", 2);
        for (a, b) in [(1, 5), (1, 15), (2, 25)] {
            db.insert_endogenous("R", vec![a.into(), b.into()]).unwrap();
        }
        let q = parse_program("Q(X) :- R(X, Y), Y > 10.").unwrap();
        let result = evaluate(&q, &db);
        assert_eq!(result.answers().len(), 2);
        assert_eq!(result.lineage_of(&[Value::from(1)]).unwrap().num_clauses(), 1);
        // String selections work too.
        let mut db2 = Database::new();
        db2.add_relation("P", 2);
        db2.insert_endogenous("P", vec![1.into(), "alice".into()]).unwrap();
        db2.insert_endogenous("P", vec![2.into(), "bob".into()]).unwrap();
        let q2 = parse_program("Q(X) :- P(X, N), N = 'alice'.").unwrap();
        assert_eq!(evaluate(&q2, &db2).answers().len(), 1);
    }

    #[test]
    fn constants_in_atoms_restrict_matches() {
        let mut db = Database::new();
        db.add_relation("R", 2);
        db.insert_endogenous("R", vec![1.into(), 2.into()]).unwrap();
        db.insert_endogenous("R", vec![3.into(), 4.into()]).unwrap();
        let q = parse_program("Q(Y) :- R(1, Y).").unwrap();
        let result = evaluate(&q, &db);
        assert_eq!(result.answers().len(), 1);
        assert_eq!(result.answers()[0].tuple, vec![Value::from(2)]);
    }

    #[test]
    fn union_queries_merge_clauses() {
        let mut db = Database::new();
        db.add_relation("R", 1);
        db.add_relation("S", 1);
        db.insert_endogenous("R", vec![1.into()]).unwrap();
        db.insert_endogenous("S", vec![1.into()]).unwrap();
        let q = parse_program("Q(X) :- R(X). Q(X) :- S(X).").unwrap();
        let result = evaluate(&q, &db);
        assert_eq!(result.answers().len(), 1);
        let lineage = result.lineage_of(&[Value::from(1)]).unwrap();
        assert_eq!(lineage.num_clauses(), 2);
        assert_eq!(lineage.num_vars(), 2);
    }

    /// Merges `before`'s per-answer clauses with the delta groundings and
    /// checks the result is identical to a fresh evaluation of the updated
    /// database.
    fn assert_delta_matches(query: &UnionQuery, before: &QueryResult, db: &Database, id: FactId) {
        let after = evaluate(query, db);
        let mut merged: HashMap<Vec<Value>, Vec<Vec<Var>>> = HashMap::new();
        for answer in before.answers() {
            let clauses =
                answer.lineage.clauses().iter().map(|c| c.iter().collect()).collect::<Vec<_>>();
            merged.insert(answer.tuple.clone(), clauses);
        }
        let delta = delta_groundings(query, db, id);
        assert!(!delta.is_empty(), "the inserted fact must contribute groundings");
        for (tuple, clause) in delta {
            assert!(clause.contains(&Var(id.0)), "every delta clause uses the new fact");
            merged.entry(tuple).or_default().push(clause);
        }
        assert_eq!(merged.len(), after.answers().len());
        for (tuple, clauses) in merged {
            let lineage = Dnf::from_clauses(clauses);
            assert_eq!(Some(&lineage), after.lineage_of(&tuple), "answer {tuple:?}");
        }
    }

    #[test]
    fn delta_groundings_reconstruct_full_evaluation_after_insert() {
        let mut db = Database::new();
        db.add_relation("R", 2);
        db.add_relation("S", 2);
        for (a, b) in [(1, 10), (1, 20), (2, 30)] {
            db.insert_endogenous("R", vec![a.into(), b.into()]).unwrap();
        }
        for (b, c) in [(10, 1), (30, 1)] {
            db.insert_endogenous("S", vec![b.into(), c.into()]).unwrap();
        }
        let q = parse_program("Q(X) :- R(X, Y), S(Y, Z).").unwrap();
        let before = evaluate(&q, &db);
        // The new S fact joins with the existing R(1, 20) and creates a new
        // clause for the existing answer 1.
        let id = db.insert_endogenous("S", vec![20.into(), 2.into()]).unwrap();
        assert_delta_matches(&q, &before, &db, id);
        // A new R fact creates a brand-new answer tuple.
        let before = evaluate(&q, &db);
        let id = db.insert_endogenous("R", vec![7.into(), 30.into()]).unwrap();
        assert_delta_matches(&q, &before, &db, id);
    }

    #[test]
    fn delta_groundings_pin_every_self_join_position() {
        let mut db = Database::new();
        db.add_relation("E", 2);
        db.insert_endogenous("E", vec![1.into(), 2.into()]).unwrap();
        let q = parse_program("Q() :- E(X, Y), E(Y, Z).").unwrap();
        let before = evaluate(&q, &db);
        assert!(before.answers().is_empty());
        // E(2, 2) matches both atom positions (joined with E(1,2) and with
        // itself), so the pinned search finds the self-loop grounding at both
        // pins; the canonical DNF form absorbs the duplicate.
        let id = db.insert_endogenous("E", vec![2.into(), 2.into()]).unwrap();
        assert_delta_matches(&q, &before, &db, id);
    }

    #[test]
    fn delta_groundings_of_unrelated_or_missing_facts_are_empty() {
        let mut db = Database::new();
        db.add_relation("R", 1);
        db.add_relation("T", 1);
        db.insert_endogenous("R", vec![1.into()]).unwrap();
        let q = parse_program("Q(X) :- R(X).").unwrap();
        // A fact in a relation the query never mentions contributes nothing.
        let id = db.insert_endogenous("T", vec![1.into()]).unwrap();
        assert!(delta_groundings(&q, &db, id).is_empty());
        // A deleted or unknown id contributes nothing.
        db.delete_endogenous(id).unwrap();
        assert!(delta_groundings(&q, &db, id).is_empty());
        assert!(delta_groundings(&q, &db, FactId(99)).is_empty());
    }

    #[test]
    fn sum_aggregate_weights_groundings_by_their_binding() {
        let mut db = Database::new();
        db.add_relation("Supp", 2); // (supplier, nation)
        db.add_relation("Item", 3); // (supplier, part, revenue)
        db.insert_endogenous("Supp", vec![1.into(), 10.into()]).unwrap();
        db.insert_endogenous("Supp", vec![2.into(), 10.into()]).unwrap();
        db.insert_endogenous("Item", vec![1.into(), 100.into(), 7.into()]).unwrap();
        db.insert_endogenous("Item", vec![1.into(), 101.into(), 5.into()]).unwrap();
        db.insert_endogenous("Item", vec![2.into(), 100.into(), 11.into()]).unwrap();
        let q = parse_program("Q(N, SUM(V)) :- Supp(S, N), Item(S, P, V).").unwrap();
        let result = evaluate_aggregate(&q, &db).unwrap();
        assert_eq!(result.answers().len(), 1);
        let lineage = result.lineage_of(&[Value::from(10)]).unwrap();
        assert_eq!(lineage.kind(), banzhaf_boolean::AggregateKind::Sum);
        assert_eq!(lineage.num_clauses(), 3);
        // Each clause is {supplier fact, item fact} weighted by the revenue.
        let mut weights: Vec<Rational> = lineage.weights().to_vec();
        weights.sort();
        assert_eq!(
            weights,
            vec![Rational::from(5i64), Rational::from(7i64), Rational::from(11i64)]
        );
        // In the all-facts world the SUM is the plain SQL answer.
        let world = banzhaf_boolean::Assignment::from_true_vars(lineage.universe().iter());
        assert_eq!(lineage.evaluate(&world), Rational::from(23i64));
    }

    #[test]
    fn count_star_groups_by_head_variables() {
        let mut db = Database::new();
        db.add_relation("R", 2);
        for (a, b) in [(1, 10), (1, 20), (2, 30)] {
            db.insert_endogenous("R", vec![a.into(), b.into()]).unwrap();
        }
        let q = parse_program("Q(X, COUNT(*)) :- R(X, Y).").unwrap();
        let result = evaluate_aggregate(&q, &db).unwrap();
        assert_eq!(result.answers().len(), 2);
        assert_eq!(result.lineage_of(&[Value::from(1)]).unwrap().num_clauses(), 2);
        assert_eq!(result.lineage_of(&[Value::from(2)]).unwrap().num_clauses(), 1);
        // COUNT clauses all weigh 1.
        let lineage = result.lineage_of(&[Value::from(1)]).unwrap();
        assert!(lineage.weights().iter().all(|w| *w == Rational::one()));
    }

    #[test]
    fn duplicate_fact_sets_merge_kind_aware() {
        // Two groundings over the same endogenous fact: the exogenous side
        // varies, so the clauses coincide and must merge per the kind.
        let mut db = Database::new();
        db.add_relation("R", 1);
        db.add_relation("S", 2);
        db.insert_endogenous("R", vec![1.into()]).unwrap();
        db.insert_exogenous("S", vec![1.into(), 4.into()]).unwrap();
        db.insert_exogenous("S", vec![1.into(), 9.into()]).unwrap();
        let sum = parse_program("Q(SUM(V)) :- R(X), S(X, V).").unwrap();
        let result = evaluate_aggregate(&sum, &db).unwrap();
        let lineage = result.lineage_of(&[]).unwrap();
        assert_eq!(lineage.num_clauses(), 1);
        assert_eq!(lineage.weights(), &[Rational::from(13i64)]);
        let max = parse_program("Q(MAX(V)) :- R(X), S(X, V).").unwrap();
        let lineage = evaluate_aggregate(&max, &db).unwrap().into_answers().remove(0).lineage;
        assert_eq!(lineage.weights(), &[Rational::from(9i64)]);
        let min = parse_program("Q(MIN(V)) :- R(X), S(X, V).").unwrap();
        let lineage = evaluate_aggregate(&min, &db).unwrap().into_answers().remove(0).lineage;
        assert_eq!(lineage.weights(), &[Rational::from(4i64)]);
    }

    #[test]
    fn aggregate_evaluation_rejects_unsupported_inputs() {
        let mut db = Database::new();
        db.add_relation("R", 2);
        db.insert_endogenous("R", vec![1.into(), "oops".into()]).unwrap();
        let q = parse_program("Q(SUM(V)) :- R(X, V).").unwrap();
        assert!(matches!(evaluate_aggregate(&q, &db), Err(AggregateError::NonIntegerInput { .. })));
        // A grounding over exogenous facts only cannot be represented.
        let mut db2 = Database::new();
        db2.add_relation("R", 2);
        db2.insert_exogenous("R", vec![1.into(), 5.into()]).unwrap();
        let q2 = parse_program("Q(SUM(V)) :- R(X, V).").unwrap();
        assert_eq!(
            evaluate_aggregate(&q2, &db2).unwrap_err(),
            AggregateError::UnconditionalGrounding
        );
        // A plain Boolean query has no aggregate to evaluate.
        let q3 = parse_program("Q(X) :- R(X, V).").unwrap();
        assert_eq!(evaluate_aggregate(&q3, &db2).unwrap_err(), AggregateError::MissingAggregate);
        // Disagreeing kinds (buildable only programmatically — the parser
        // rejects them) are refused too.
        let mut mixed = parse_program("Q(SUM(V)) :- R(X, V).").unwrap();
        let mut second = mixed.disjuncts[0].clone();
        second.aggregate = Some(crate::AggregateSpec {
            kind: banzhaf_boolean::AggregateKind::Max,
            input: Some("V".into()),
        });
        mixed.disjuncts.push(second);
        assert_eq!(evaluate_aggregate(&mixed, &db2).unwrap_err(), AggregateError::MixedAggregates);
    }

    #[test]
    fn self_join_uses_distinct_variables_per_atom() {
        let mut db = Database::new();
        db.add_relation("E", 2);
        db.insert_endogenous("E", vec![1.into(), 2.into()]).unwrap();
        db.insert_endogenous("E", vec![2.into(), 3.into()]).unwrap();
        // Path of length 2: E(X,Y), E(Y,Z).
        let q = parse_program("Q(X, Z) :- E(X, Y), E(Y, Z).").unwrap();
        let result = evaluate(&q, &db);
        assert_eq!(result.answers().len(), 1);
        let lineage = &result.answers()[0].lineage;
        assert_eq!(lineage.num_vars(), 2);
        assert_eq!(lineage.clauses()[0].len(), 2);
    }
}
