//! A small Datalog-style textual syntax for UCQs with selections.
//!
//! Grammar (informally):
//!
//! ```text
//! program   := rule+
//! rule      := HEAD "(" headterms? ")" ":-" body "."
//! headterms := VARIABLE ("," VARIABLE)* ("," aggregate)? | aggregate
//! aggregate := "COUNT" "(" "*" ")" | ("SUM" | "MIN" | "MAX") "(" VARIABLE ")"
//! body      := item ("," item)*
//! item      := atom | selection
//! atom      := NAME "(" term ("," term)* ")"
//! term      := VARIABLE | INTEGER | "'" chars "'"
//! selection := VARIABLE op (INTEGER | "'" chars "'")
//! op        := "<" | "<=" | "=" | "!=" | ">=" | ">"
//! ```
//!
//! Variables start with an upper-case letter; relation names with any letter.
//! Rules with the same head predicate form a union of conjunctive queries.
//! An aggregate, if present, must be the last head term; the plain head
//! variables are the grouping keys, and every rule of a union must carry the
//! same aggregate kind.

use crate::{AggregateSpec, Atom, Comparison, ConjunctiveQuery, Selection, Term, UnionQuery};
use banzhaf_boolean::AggregateKind;
use banzhaf_db::Value;
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a program (one or more rules) into a [`UnionQuery`].
///
/// All rules must share the same head predicate and arity; they become the
/// disjuncts of the union.
pub fn parse_program(input: &str) -> Result<UnionQuery, ParseError> {
    // Drop comment lines (starting with '%') before splitting into rules.
    let stripped: String = input
        .lines()
        .filter(|line| !line.trim_start().starts_with('%'))
        .collect::<Vec<_>>()
        .join("\n");
    let rules: Vec<&str> = stripped.split('.').map(str::trim).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return Err(ParseError::new("empty program"));
    }
    let mut disjuncts = Vec::with_capacity(rules.len());
    for rule in rules {
        disjuncts.push(parse_rule(rule)?);
    }
    let name = disjuncts[0].name.clone();
    let arity = disjuncts[0].head.len();
    let kind = disjuncts[0].aggregate.as_ref().map(|a| a.kind);
    for cq in &disjuncts {
        if cq.name != name {
            return Err(ParseError::new(format!(
                "all rules must define the same head predicate ({} vs {})",
                name, cq.name
            )));
        }
        if cq.head.len() != arity {
            return Err(ParseError::new("all rules must have the same head arity"));
        }
        if cq.aggregate.as_ref().map(|a| a.kind) != kind {
            return Err(ParseError::new("all rules must carry the same aggregate"));
        }
    }
    Ok(UnionQuery { disjuncts })
}

fn parse_rule(rule: &str) -> Result<ConjunctiveQuery, ParseError> {
    let (head, body) = rule
        .split_once(":-")
        .ok_or_else(|| ParseError::new(format!("missing ':-' in rule: {rule}")))?;
    let (name, head_vars, aggregate) = parse_head(head.trim())?;
    let items = split_top_level(body.trim());
    let mut atoms = Vec::new();
    let mut selections = Vec::new();
    for item in items {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if item.contains('(') {
            atoms.push(parse_atom(item)?);
        } else {
            selections.push(parse_selection(item)?);
        }
    }
    if atoms.is_empty() {
        return Err(ParseError::new("a rule needs at least one relational atom"));
    }
    // Head variables — and the aggregated variable — must occur in the body.
    let input = aggregate.as_ref().and_then(|a| a.input.clone());
    for hv in head_vars.iter().chain(&input) {
        let occurs = atoms.iter().any(|a| a.variables().any(|v| v == hv));
        if !occurs {
            return Err(ParseError::new(format!("head variable {hv} does not occur in the body")));
        }
    }
    Ok(ConjunctiveQuery { name, head: head_vars, aggregate, atoms, selections })
}

#[allow(clippy::type_complexity)]
fn parse_head(head: &str) -> Result<(String, Vec<String>, Option<AggregateSpec>), ParseError> {
    let open = head.find('(').ok_or_else(|| ParseError::new(format!("malformed head: {head}")))?;
    let close =
        head.rfind(')').ok_or_else(|| ParseError::new(format!("malformed head: {head}")))?;
    let name = head[..open].trim();
    if name.is_empty() {
        return Err(ParseError::new("head predicate name is empty"));
    }
    let inner = head[open + 1..close].trim();
    let mut vars = Vec::new();
    let mut aggregate = None;
    if !inner.is_empty() {
        for term in split_top_level(inner) {
            let term = term.trim();
            if aggregate.is_some() {
                return Err(ParseError::new("the aggregate must be the last head term"));
            }
            if let Some(spec) = parse_aggregate_term(term)? {
                aggregate = Some(spec);
            } else if is_variable(term) {
                vars.push(term.to_owned());
            } else {
                return Err(ParseError::new(format!("head term {term} must be a variable")));
            }
        }
    }
    Ok((name.to_owned(), vars, aggregate))
}

/// Parses `COUNT(*)` / `SUM(V)` / `MIN(V)` / `MAX(V)`; `Ok(None)` if the
/// term carries no parentheses (a plain head variable).
fn parse_aggregate_term(term: &str) -> Result<Option<AggregateSpec>, ParseError> {
    let Some(open) = term.find('(') else {
        return Ok(None);
    };
    let inner = term[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| ParseError::new(format!("malformed aggregate head term: {term}")))?
        .trim();
    let kind = match term[..open].trim() {
        "COUNT" => AggregateKind::Count,
        "SUM" => AggregateKind::Sum,
        "MIN" => AggregateKind::Min,
        "MAX" => AggregateKind::Max,
        other => {
            return Err(ParseError::new(format!(
                "unknown aggregate {other} (expected COUNT, SUM, MIN, or MAX)"
            )))
        }
    };
    let input = match (kind, inner) {
        (AggregateKind::Count, "*") => None,
        (AggregateKind::Count, other) => {
            return Err(ParseError::new(format!("COUNT takes '*', not {other}")));
        }
        (_, v) if is_variable(v) => Some(v.to_owned()),
        (_, other) => {
            return Err(ParseError::new(format!("{kind} takes a variable, not {other}")));
        }
    };
    Ok(Some(AggregateSpec { kind, input }))
}

/// Splits a rule body on commas that are not nested inside parentheses or
/// quotes.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '\'' => {
                in_quote = !in_quote;
                current.push(c);
            }
            '(' if !in_quote => {
                depth += 1;
                current.push(c);
            }
            ')' if !in_quote => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 && !in_quote => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_atom(item: &str) -> Result<Atom, ParseError> {
    let open = item.find('(').expect("caller checked");
    let close =
        item.rfind(')').ok_or_else(|| ParseError::new(format!("missing ')' in atom: {item}")))?;
    let relation = item[..open].trim();
    if relation.is_empty() {
        return Err(ParseError::new(format!("missing relation name in atom: {item}")));
    }
    let inner = &item[open + 1..close];
    let terms = split_top_level(inner)
        .into_iter()
        .map(|t| parse_term(t.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    if terms.is_empty() {
        return Err(ParseError::new(format!("atom {relation} has no terms")));
    }
    Ok(Atom::new(relation, terms))
}

fn parse_term(term: &str) -> Result<Term, ParseError> {
    if term.is_empty() {
        return Err(ParseError::new("empty term"));
    }
    if is_variable(term) {
        return Ok(Term::var(term));
    }
    Ok(Term::Constant(parse_value(term)?))
}

fn parse_value(text: &str) -> Result<Value, ParseError> {
    if let Some(stripped) = text.strip_prefix('\'') {
        let inner = stripped
            .strip_suffix('\'')
            .ok_or_else(|| ParseError::new(format!("unterminated string constant: {text}")))?;
        return Ok(Value::from(inner));
    }
    text.parse::<i64>()
        .map(Value::from)
        .map_err(|_| ParseError::new(format!("invalid constant: {text}")))
}

fn parse_selection(item: &str) -> Result<Selection, ParseError> {
    // Two-character operators first so that ">=" is not parsed as ">".
    for (symbol, op) in [
        ("<=", Comparison::Le),
        (">=", Comparison::Ge),
        ("!=", Comparison::Ne),
        ("<", Comparison::Lt),
        (">", Comparison::Gt),
        ("=", Comparison::Eq),
    ] {
        if let Some((lhs, rhs)) = item.split_once(symbol) {
            let variable = lhs.trim();
            if !is_variable(variable) {
                return Err(ParseError::new(format!(
                    "selection left-hand side {variable} must be a variable"
                )));
            }
            let constant = parse_value(rhs.trim())?;
            return Ok(Selection { variable: variable.to_owned(), comparison: op, constant });
        }
    }
    Err(ParseError::new(format!("unrecognized body item: {item}")))
}

fn is_variable(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_boolean_query() {
        let q = parse_program("Q() :- R(X), S(X, Y), T(Y).").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.disjuncts.len(), 1);
        assert_eq!(q.disjuncts[0].atoms.len(), 3);
        assert_eq!(q.disjuncts[0].variables(), vec!["X".to_owned(), "Y".to_owned()]);
    }

    #[test]
    fn parses_free_variables_and_constants() {
        let q = parse_program("Q(X, Y) :- R(X, 3), S(X, Y, 'abc').").unwrap();
        let cq = &q.disjuncts[0];
        assert_eq!(cq.head, vec!["X".to_owned(), "Y".to_owned()]);
        assert_eq!(cq.atoms[0].terms[1], Term::Constant(Value::from(3)));
        assert_eq!(cq.atoms[1].terms[2], Term::Constant(Value::from("abc")));
    }

    #[test]
    fn parses_selections() {
        let q = parse_program("Q(X) :- R(X, Y), Y >= 10, X != 'x', Y < 20.").unwrap();
        let cq = &q.disjuncts[0];
        assert_eq!(cq.selections.len(), 3);
        assert_eq!(cq.selections[0].comparison, Comparison::Ge);
        assert_eq!(cq.selections[1].comparison, Comparison::Ne);
        assert_eq!(cq.selections[2].comparison, Comparison::Lt);
    }

    #[test]
    fn parses_unions() {
        let q = parse_program(
            "Q(X) :- R(X, Y), S(Y).
             Q(X) :- T(X).",
        )
        .unwrap();
        assert_eq!(q.disjuncts.len(), 2);
        assert_eq!(q.head_arity(), 1);
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse_program("").is_err());
        assert!(parse_program("Q(X) : R(X).").is_err());
        assert!(parse_program("Q(X) :- .").is_err());
        assert!(parse_program("Q(X) :- R(Y).").is_err()); // head var not in body
        assert!(parse_program("Q(x) :- R(x).").is_err()); // lower-case head term
        assert!(parse_program("Q(X) :- R(X, 'oops).").is_err()); // unterminated string
        assert!(parse_program("Q(X) :- R(X).\nP(X) :- S(X).").is_err()); // two predicates
        assert!(parse_program("Q(X) :- R(X).\nQ(X, Y) :- S(X, Y).").is_err()); // arity clash
    }

    #[test]
    fn display_then_reparse() {
        let text = "Q(X) :- R(X, Y), S(Y, 7), Y > 3.";
        let q = parse_program(text).unwrap();
        let printed = q.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn parses_aggregate_heads() {
        let q = parse_program("Q(X, SUM(V)) :- R(X, Y), S(Y, V).").unwrap();
        let cq = &q.disjuncts[0];
        assert_eq!(cq.head, vec!["X".to_owned()]);
        assert_eq!(
            cq.aggregate,
            Some(AggregateSpec { kind: AggregateKind::Sum, input: Some("V".into()) })
        );
        let count = parse_program("Q(COUNT(*)) :- R(X, Y).").unwrap();
        assert_eq!(
            count.disjuncts[0].aggregate,
            Some(AggregateSpec { kind: AggregateKind::Count, input: None })
        );
        assert!(count.disjuncts[0].head.is_empty());
        for (text, kind) in [("MIN(V)", AggregateKind::Min), ("MAX(V)", AggregateKind::Max)] {
            let q = parse_program(&format!("Q({text}) :- R(X, V).")).unwrap();
            assert_eq!(q.disjuncts[0].aggregate.as_ref().unwrap().kind, kind);
        }
    }

    #[test]
    fn aggregate_heads_display_then_reparse() {
        for text in
            ["Q(X, SUM(V)) :- R(X, V).", "Q(COUNT(*)) :- R(X, Y).", "Q(MAX(V)) :- R(X, V), X > 2."]
        {
            let q = parse_program(text).unwrap();
            let reparsed = parse_program(&q.to_string()).unwrap();
            assert_eq!(q, reparsed, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_aggregates() {
        // The aggregate must be the last head term.
        assert!(parse_program("Q(SUM(V), X) :- R(X, V).").is_err());
        // At most one aggregate.
        assert!(parse_program("Q(SUM(V), COUNT(*)) :- R(X, V).").is_err());
        // COUNT takes '*', the others take a variable.
        assert!(parse_program("Q(COUNT(V)) :- R(X, V).").is_err());
        assert!(parse_program("Q(SUM(*)) :- R(X, V).").is_err());
        assert!(parse_program("Q(SUM(3)) :- R(X, V).").is_err());
        // Unknown aggregate name.
        assert!(parse_program("Q(AVG(V)) :- R(X, V).").is_err());
        // The aggregated variable must occur in the body.
        assert!(parse_program("Q(SUM(W)) :- R(X, V).").is_err());
        // Every rule of a union must carry the same aggregate kind.
        assert!(parse_program("Q(X, SUM(V)) :- R(X, V).\nQ(X, MAX(V)) :- S(X, V).").is_err());
        assert!(parse_program("Q(X, SUM(V)) :- R(X, V).\nQ(X) :- S(X, V).").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let q = parse_program("% the basic non-hierarchical query\nQ() :- R(X), S(X, Y), T(Y).");
        assert!(q.is_ok());
    }
}
