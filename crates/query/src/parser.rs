//! A small Datalog-style textual syntax for UCQs with selections.
//!
//! Grammar (informally):
//!
//! ```text
//! program   := rule+
//! rule      := HEAD "(" vars? ")" ":-" body "."
//! body      := item ("," item)*
//! item      := atom | selection
//! atom      := NAME "(" term ("," term)* ")"
//! term      := VARIABLE | INTEGER | "'" chars "'"
//! selection := VARIABLE op (INTEGER | "'" chars "'")
//! op        := "<" | "<=" | "=" | "!=" | ">=" | ">"
//! ```
//!
//! Variables start with an upper-case letter; relation names with any letter.
//! Rules with the same head predicate form a union of conjunctive queries.

use crate::{Atom, Comparison, ConjunctiveQuery, Selection, Term, UnionQuery};
use banzhaf_db::Value;
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a program (one or more rules) into a [`UnionQuery`].
///
/// All rules must share the same head predicate and arity; they become the
/// disjuncts of the union.
pub fn parse_program(input: &str) -> Result<UnionQuery, ParseError> {
    // Drop comment lines (starting with '%') before splitting into rules.
    let stripped: String = input
        .lines()
        .filter(|line| !line.trim_start().starts_with('%'))
        .collect::<Vec<_>>()
        .join("\n");
    let rules: Vec<&str> = stripped.split('.').map(str::trim).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return Err(ParseError::new("empty program"));
    }
    let mut disjuncts = Vec::with_capacity(rules.len());
    for rule in rules {
        disjuncts.push(parse_rule(rule)?);
    }
    let name = disjuncts[0].name.clone();
    let arity = disjuncts[0].head.len();
    for cq in &disjuncts {
        if cq.name != name {
            return Err(ParseError::new(format!(
                "all rules must define the same head predicate ({} vs {})",
                name, cq.name
            )));
        }
        if cq.head.len() != arity {
            return Err(ParseError::new("all rules must have the same head arity"));
        }
    }
    Ok(UnionQuery { disjuncts })
}

fn parse_rule(rule: &str) -> Result<ConjunctiveQuery, ParseError> {
    let (head, body) = rule
        .split_once(":-")
        .ok_or_else(|| ParseError::new(format!("missing ':-' in rule: {rule}")))?;
    let (name, head_vars) = parse_head(head.trim())?;
    let items = split_top_level(body.trim());
    let mut atoms = Vec::new();
    let mut selections = Vec::new();
    for item in items {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if item.contains('(') {
            atoms.push(parse_atom(item)?);
        } else {
            selections.push(parse_selection(item)?);
        }
    }
    if atoms.is_empty() {
        return Err(ParseError::new("a rule needs at least one relational atom"));
    }
    // Head variables must occur in the body.
    for hv in &head_vars {
        let occurs = atoms.iter().any(|a| a.variables().any(|v| v == hv));
        if !occurs {
            return Err(ParseError::new(format!("head variable {hv} does not occur in the body")));
        }
    }
    Ok(ConjunctiveQuery { name, head: head_vars, atoms, selections })
}

fn parse_head(head: &str) -> Result<(String, Vec<String>), ParseError> {
    let open = head.find('(').ok_or_else(|| ParseError::new(format!("malformed head: {head}")))?;
    let close =
        head.rfind(')').ok_or_else(|| ParseError::new(format!("malformed head: {head}")))?;
    let name = head[..open].trim();
    if name.is_empty() {
        return Err(ParseError::new("head predicate name is empty"));
    }
    let inner = head[open + 1..close].trim();
    let vars = if inner.is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|v| {
                let v = v.trim();
                if is_variable(v) {
                    Ok(v.to_owned())
                } else {
                    Err(ParseError::new(format!("head term {v} must be a variable")))
                }
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok((name.to_owned(), vars))
}

/// Splits a rule body on commas that are not nested inside parentheses or
/// quotes.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '\'' => {
                in_quote = !in_quote;
                current.push(c);
            }
            '(' if !in_quote => {
                depth += 1;
                current.push(c);
            }
            ')' if !in_quote => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 && !in_quote => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_atom(item: &str) -> Result<Atom, ParseError> {
    let open = item.find('(').expect("caller checked");
    let close =
        item.rfind(')').ok_or_else(|| ParseError::new(format!("missing ')' in atom: {item}")))?;
    let relation = item[..open].trim();
    if relation.is_empty() {
        return Err(ParseError::new(format!("missing relation name in atom: {item}")));
    }
    let inner = &item[open + 1..close];
    let terms = split_top_level(inner)
        .into_iter()
        .map(|t| parse_term(t.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    if terms.is_empty() {
        return Err(ParseError::new(format!("atom {relation} has no terms")));
    }
    Ok(Atom::new(relation, terms))
}

fn parse_term(term: &str) -> Result<Term, ParseError> {
    if term.is_empty() {
        return Err(ParseError::new("empty term"));
    }
    if is_variable(term) {
        return Ok(Term::var(term));
    }
    Ok(Term::Constant(parse_value(term)?))
}

fn parse_value(text: &str) -> Result<Value, ParseError> {
    if let Some(stripped) = text.strip_prefix('\'') {
        let inner = stripped
            .strip_suffix('\'')
            .ok_or_else(|| ParseError::new(format!("unterminated string constant: {text}")))?;
        return Ok(Value::from(inner));
    }
    text.parse::<i64>()
        .map(Value::from)
        .map_err(|_| ParseError::new(format!("invalid constant: {text}")))
}

fn parse_selection(item: &str) -> Result<Selection, ParseError> {
    // Two-character operators first so that ">=" is not parsed as ">".
    for (symbol, op) in [
        ("<=", Comparison::Le),
        (">=", Comparison::Ge),
        ("!=", Comparison::Ne),
        ("<", Comparison::Lt),
        (">", Comparison::Gt),
        ("=", Comparison::Eq),
    ] {
        if let Some((lhs, rhs)) = item.split_once(symbol) {
            let variable = lhs.trim();
            if !is_variable(variable) {
                return Err(ParseError::new(format!(
                    "selection left-hand side {variable} must be a variable"
                )));
            }
            let constant = parse_value(rhs.trim())?;
            return Ok(Selection { variable: variable.to_owned(), comparison: op, constant });
        }
    }
    Err(ParseError::new(format!("unrecognized body item: {item}")))
}

fn is_variable(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_boolean_query() {
        let q = parse_program("Q() :- R(X), S(X, Y), T(Y).").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.disjuncts.len(), 1);
        assert_eq!(q.disjuncts[0].atoms.len(), 3);
        assert_eq!(q.disjuncts[0].variables(), vec!["X".to_owned(), "Y".to_owned()]);
    }

    #[test]
    fn parses_free_variables_and_constants() {
        let q = parse_program("Q(X, Y) :- R(X, 3), S(X, Y, 'abc').").unwrap();
        let cq = &q.disjuncts[0];
        assert_eq!(cq.head, vec!["X".to_owned(), "Y".to_owned()]);
        assert_eq!(cq.atoms[0].terms[1], Term::Constant(Value::from(3)));
        assert_eq!(cq.atoms[1].terms[2], Term::Constant(Value::from("abc")));
    }

    #[test]
    fn parses_selections() {
        let q = parse_program("Q(X) :- R(X, Y), Y >= 10, X != 'x', Y < 20.").unwrap();
        let cq = &q.disjuncts[0];
        assert_eq!(cq.selections.len(), 3);
        assert_eq!(cq.selections[0].comparison, Comparison::Ge);
        assert_eq!(cq.selections[1].comparison, Comparison::Ne);
        assert_eq!(cq.selections[2].comparison, Comparison::Lt);
    }

    #[test]
    fn parses_unions() {
        let q = parse_program(
            "Q(X) :- R(X, Y), S(Y).
             Q(X) :- T(X).",
        )
        .unwrap();
        assert_eq!(q.disjuncts.len(), 2);
        assert_eq!(q.head_arity(), 1);
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse_program("").is_err());
        assert!(parse_program("Q(X) : R(X).").is_err());
        assert!(parse_program("Q(X) :- .").is_err());
        assert!(parse_program("Q(X) :- R(Y).").is_err()); // head var not in body
        assert!(parse_program("Q(x) :- R(x).").is_err()); // lower-case head term
        assert!(parse_program("Q(X) :- R(X, 'oops).").is_err()); // unterminated string
        assert!(parse_program("Q(X) :- R(X).\nP(X) :- S(X).").is_err()); // two predicates
        assert!(parse_program("Q(X) :- R(X).\nQ(X, Y) :- S(X, Y).").is_err()); // arity clash
    }

    #[test]
    fn display_then_reparse() {
        let text = "Q(X) :- R(X, Y), S(Y, 7), Y > 3.";
        let q = parse_program(text).unwrap();
        let printed = q.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn comments_are_ignored() {
        let q = parse_program("% the basic non-hierarchical query\nQ() :- R(X), S(X, Y), T(Y).");
        assert!(q.is_ok());
    }
}
