//! Conjunctive queries, unions of conjunctive queries, and provenance-aware
//! evaluation producing per-answer lineage.
//!
//! This crate is the stand-in for the paper's use of ProvSQL: it evaluates
//! select-project-join-union queries (UCQs with selection predicates) over a
//! [`banzhaf_db::Database`] and constructs, for every answer tuple, the
//! *lineage* — a positive DNF over the provenance variables of the endogenous
//! facts (Sec. 2 of the paper). It also implements the structural analyses the
//! dichotomy of Sec. 4.2 relies on: self-join-freeness and the hierarchical
//! property.
//!
//! ```
//! use banzhaf_db::{Database, Value};
//! use banzhaf_query::{parse_program, evaluate};
//!
//! let mut db = Database::new();
//! db.add_relation("R", 3);
//! db.add_relation("S", 3);
//! db.add_relation("T", 2);
//! // The database of Example 6 in the paper.
//! db.insert_endogenous("R", vec![1.into(), 2.into(), 3.into()]).unwrap();
//! db.insert_endogenous("S", vec![1.into(), 2.into(), 4.into()]).unwrap();
//! db.insert_endogenous("S", vec![1.into(), 2.into(), 5.into()]).unwrap();
//! db.insert_endogenous("T", vec![1.into(), 6.into()]).unwrap();
//!
//! let query = parse_program("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U).").unwrap();
//! let result = evaluate(&query, &db);
//! assert_eq!(result.answers().len(), 1);
//! let lineage = &result.answers()[0].lineage;
//! assert_eq!(lineage.num_clauses(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod ast;
mod eval;
mod parser;

pub use analysis::{is_hierarchical, is_self_join_free};
pub use ast::{AggregateSpec, Atom, Comparison, ConjunctiveQuery, Selection, Term, UnionQuery};
pub use eval::{
    delta_groundings, evaluate, evaluate_aggregate, AggregateAnswer, AggregateError,
    AggregateResult, Answer, QueryResult,
};
pub use parser::{parse_program, ParseError};
