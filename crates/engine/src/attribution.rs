//! The unified result type returned by every [`crate::Attributor`].

use crate::config::Algorithm;
use banzhaf::{ApproxInterval, ShapleyValue};
use banzhaf_arith::{Natural, Rational};
use banzhaf_boolean::AggregateKind;
use banzhaf_boolean::Var;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::time::Duration;

/// The attribution score of one fact, at whatever precision the backend
/// provides: an exact value, a certified interval, or a point estimate with
/// no guarantee.
#[derive(Clone, Debug)]
pub enum Score {
    /// An exact Banzhaf value (ExaBan, Sig22, AdaBan with ε = 0).
    Exact(Natural),
    /// An exact *aggregate* Banzhaf value — a signed rational, since SUM
    /// weights are arbitrary and MIN attribution can be negative.
    Rational(Rational),
    /// A certified interval containing the exact value (AdaBan, IchiBan).
    Interval(ApproxInterval),
    /// A point estimate with no deterministic guarantee (MC, CNF proxy).
    Estimate(f64),
}

impl Score {
    /// The point value used for ranking and reporting: the exact value, the
    /// interval midpoint, or the estimate itself.
    pub fn point(&self) -> f64 {
        match self {
            Score::Exact(b) => b.to_f64(),
            Score::Rational(r) => r.to_f64(),
            Score::Interval(i) => i.midpoint(),
            Score::Estimate(e) => *e,
        }
    }

    /// The exact value, if this score certifies one (an [`Score::Exact`]
    /// value or a single-point interval). Exact aggregate scores are rational
    /// and surface through [`Score::exact_rational`] instead.
    pub fn exact(&self) -> Option<Natural> {
        match self {
            Score::Exact(b) => Some(b.clone()),
            Score::Interval(i) if i.is_exact() => Some(i.lower.clone()),
            _ => None,
        }
    }

    /// The exact value as a signed rational, if this score certifies one —
    /// the common exact view across Boolean and aggregate attributions.
    pub fn exact_rational(&self) -> Option<Rational> {
        match self {
            Score::Rational(r) => Some(r.clone()),
            _ => self.exact().map(|b| Rational::from(&b)),
        }
    }

    /// `true` iff this score certifies an exact value (Boolean or aggregate).
    pub fn is_exact(&self) -> bool {
        self.exact_rational().is_some()
    }

    /// Compares two scores for ranking purposes: exact values compare
    /// precisely (no `f64` round-off on huge values), everything else falls
    /// back to the point value.
    pub fn cmp_points(&self, other: &Score) -> Ordering {
        match (self, other) {
            (Score::Exact(a), Score::Exact(b)) => a.cmp(b),
            (Score::Rational(a), Score::Rational(b)) => a.cmp(b),
            _ => self.point().partial_cmp(&other.point()).unwrap_or(Ordering::Equal),
        }
    }
}

/// Per-attribution instrumentation recorded by every backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Knowledge-compilation steps performed: d-tree expansions for the
    /// tree-based algorithms, DPLL recursion nodes for Sig22, 0 for the
    /// compilation-free baselines — and 0 on a cache hit.
    pub compile_steps: u64,
    /// Size of the (possibly partial) d-tree after the run, in nodes.
    pub dtree_nodes: usize,
    /// Wall-clock time spent inside the backend.
    pub wall: Duration,
    /// `true` iff the result was served from the session's d-tree cache.
    pub cache_hit: bool,
    /// Colour-refinement work spent canonicalizing the lineage for the
    /// shared cache's order-insensitive key (0 when the backend was invoked
    /// directly, without a session). Unlike `compile_steps` this cost is
    /// paid on every attribution, hit or miss — the bench layer's
    /// `canon_hit_rate` experiment weighs it against the compile work the
    /// extra hits save.
    pub canon_steps: u64,
    /// Individualization searches this attribution actually ran (its own
    /// shape plus any still-unkeyed cache residents or in-batch mates it had
    /// to settle against; 0 when the fingerprint pre-key resolved the
    /// lookup, or when the backend was invoked directly).
    pub canon_searches: u64,
    /// 1 when the cache lookup was resolved without any canonicalization
    /// search because the lineage's cheap isomorphism-invariant fingerprint
    /// had no resident entry (a definite miss), 0 otherwise.
    pub prekey_skips: u64,
    /// `true` iff the primary backend failed and this result was produced by
    /// a fallback rung of the session's [`crate::FallbackPolicy`] ladder.
    pub degraded: bool,
    /// Steps charged to fallback rungs (both the failed intermediate rungs
    /// and the one that produced this result); 0 for a primary result.
    pub fallback_steps: u64,
}

/// Why the primary attributor failed, triggering the fallback ladder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradeReason {
    /// The primary attributor exhausted its budget (deadline or step cap).
    BudgetExhausted,
    /// The worker compiling the primary attribution panicked; the partial
    /// d-tree was discarded (quarantined from the shared cache) and the
    /// lineage re-attributed on a fallback rung.
    WorkerPanic,
}

/// Provenance of a degraded result: which rung of the fallback ladder
/// produced it, why the primary attributor failed, and what that failed
/// attempt cost before the ladder took over.
#[derive(Clone, Copy, Debug)]
pub struct Degradation {
    /// The algorithm of the rung that produced this result.
    pub rung: Algorithm,
    /// Why the primary attributor failed.
    pub reason: DegradeReason,
    /// Steps the failed primary attempt (plus any failed intermediate rungs)
    /// had consumed when this rung started.
    pub budget_spent: u64,
}

/// The unified attribution result: one [`Score`] per fact of the lineage's
/// universe, the model count when the backend certifies one, optional Shapley
/// values, and per-run [`EngineStats`].
#[derive(Clone, Debug)]
pub struct Attribution {
    /// The backend that produced the result (an [`crate::Algorithm`] name).
    pub algorithm: &'static str,
    /// One score per variable of the lineage's universe.
    pub values: HashMap<Var, Score>,
    /// The exact model count `#φ`, when the backend computes one.
    pub model_count: Option<Natural>,
    /// Exact Shapley values, when requested from an exact backend.
    pub shapley: Option<HashMap<Var, ShapleyValue>>,
    /// The aggregate this attribution explains, when the lineage was a
    /// weighted aggregate lineage rather than a Boolean answer.
    pub aggregate: Option<AggregateKind>,
    /// `Σ_Y val(Y)` over all worlds — the aggregate analogue of the model
    /// count, reported by the exact aggregate backends.
    pub aggregate_total: Option<Rational>,
    /// Instrumentation for this attribution.
    pub stats: EngineStats,
    /// `Some` iff this result came from a fallback rung rather than the
    /// configured primary algorithm (see [`crate::FallbackPolicy`]).
    pub degradation: Option<Degradation>,
}

impl Attribution {
    /// The score of one fact, if it is in the lineage's universe.
    pub fn value(&self, v: Var) -> Option<&Score> {
        self.values.get(&v)
    }

    /// Facts ordered by decreasing score (ties by variable index).
    pub fn ranking(&self) -> Vec<(Var, Score)> {
        let mut items: Vec<(Var, Score)> =
            self.values.iter().map(|(v, s)| (*v, s.clone())).collect();
        items.sort_by(|(va, sa), (vb, sb)| sb.cmp_points(sa).then(va.cmp(vb)));
        items
    }

    /// The `k` facts with the largest scores.
    pub fn top_k(&self, k: usize) -> Vec<(Var, Score)> {
        self.ranking().into_iter().take(k).collect()
    }

    /// All values as exact naturals, when every score certifies one.
    pub fn exact_values(&self) -> Option<HashMap<Var, Natural>> {
        self.values.iter().map(|(v, s)| s.exact().map(|b| (*v, b))).collect()
    }

    /// All values as `f64` point estimates (exact → lossy, interval →
    /// midpoint), the shape the error-measurement experiments consume.
    pub fn estimates(&self) -> HashMap<Var, f64> {
        self.values.iter().map(|(v, s)| (*v, s.point())).collect()
    }

    /// `true` iff every score is certified exact.
    pub fn is_exact(&self) -> bool {
        self.values.values().all(Score::is_exact)
    }
}

/// A ranking/top-k answer: the selected facts in decreasing order plus
/// whether the order is certified (interval separation or exact values)
/// rather than decided by ε-relaxed point estimates.
#[derive(Clone, Debug)]
pub struct Ranked {
    /// The facts, ordered by decreasing (estimated) Banzhaf value.
    pub order: Vec<Var>,
    /// `true` iff the selection/order is certified.
    pub certified: bool,
    /// Instrumentation for this run.
    pub stats: EngineStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn exact_attribution(pairs: &[(u32, u64)]) -> Attribution {
        Attribution {
            algorithm: "test",
            values: pairs.iter().map(|&(i, b)| (v(i), Score::Exact(Natural::from(b)))).collect(),
            model_count: None,
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            stats: EngineStats::default(),
            degradation: None,
        }
    }

    #[test]
    fn ranking_orders_by_value_then_index() {
        let att = exact_attribution(&[(0, 3), (1, 5), (2, 3), (3, 1)]);
        let order: Vec<Var> = att.ranking().into_iter().map(|(x, _)| x).collect();
        assert_eq!(order, vec![v(1), v(0), v(2), v(3)]);
        assert_eq!(att.top_k(2).len(), 2);
        assert!(att.is_exact());
        assert_eq!(att.exact_values().unwrap()[&v(1)].to_u64(), Some(5));
    }

    #[test]
    fn scores_expose_points_and_exactness() {
        let exact = Score::Exact(Natural::from(4u64));
        assert_eq!(exact.point(), 4.0);
        assert_eq!(exact.exact().unwrap().to_u64(), Some(4));
        let interval =
            Score::Interval(ApproxInterval::new(Natural::from(2u64), Natural::from(6u64)));
        assert_eq!(interval.point(), 4.0);
        assert!(interval.exact().is_none());
        let pinned = Score::Interval(ApproxInterval::new(Natural::from(3u64), Natural::from(3u64)));
        assert_eq!(pinned.exact().unwrap().to_u64(), Some(3));
        let estimate = Score::Estimate(1.5);
        assert!(estimate.exact().is_none());
        assert_eq!(exact.cmp_points(&estimate), Ordering::Greater);
        // Aggregate scores are exact rationals: no `Natural` view, but the
        // exact-rational view and the precise comparison both see them.
        let rational =
            Score::Rational(Rational::new(banzhaf_arith::Int::from(-3i64), Natural::from(2u64)));
        assert!(rational.exact().is_none());
        assert!(rational.is_exact());
        assert_eq!(rational.point(), -1.5);
        assert_eq!(rational.exact_rational().unwrap().to_f64(), -1.5);
        assert_eq!(exact.exact_rational().unwrap().to_f64(), 4.0);
        let larger = Score::Rational(Rational::from(1i64));
        assert_eq!(rational.cmp_points(&larger), Ordering::Less);
    }

    #[test]
    fn rational_scores_keep_the_attribution_exact() {
        let mut att = exact_attribution(&[(0, 3)]);
        att.values.insert(v(1), Score::Rational(Rational::from(-2i64)));
        att.aggregate = Some(AggregateKind::Sum);
        assert!(att.is_exact());
        assert!(att.exact_values().is_none(), "a rational score has no Natural view");
        let order: Vec<Var> = att.ranking().into_iter().map(|(x, _)| x).collect();
        assert_eq!(order, vec![v(0), v(1)]);
    }

    #[test]
    fn mixed_attribution_is_not_exact() {
        let mut att = exact_attribution(&[(0, 3)]);
        att.values.insert(v(1), Score::Estimate(2.0));
        assert!(!att.is_exact());
        assert!(att.exact_values().is_none());
        assert_eq!(att.estimates().len(), 2);
    }
}
