//! The engine-level shared attribution cache.
//!
//! PR 2 introduced a per-[`crate::Session`] d-tree cache keyed by canonical
//! lineage; this module promotes it to an **engine-level, cross-session**
//! cache: every session of an [`crate::Engine`] (and every worker of the
//! async serving layer on top) shares one size-bounded store, so repeated
//! queries across sessions reuse compilations instead of redoing them.
//!
//! Design:
//!
//! * **Canonical-lineage keying** ([`CanonicalKey`]): variables renamed to a
//!   dense numbering by the colour-refinement canonical form of
//!   [`crate::canon`] — equal keys imply isomorphic lineages (so cached
//!   attributions transfer under the variable bijection), and isomorphic
//!   lineages produce equal keys under arbitrary variable renamings and
//!   clause reorderings, not just identically-generated ones.
//! * **Size-bounded, LRU-evicted**: the cache holds at most
//!   [`SharedCache::capacity`] entries. Recency is tracked with a lazy LRU
//!   queue (every touch appends a `(key, tick)` pair; eviction pops from the
//!   front, skipping pairs whose tick is stale), so hits and inserts stay
//!   O(1) amortized with no intrusive lists.
//! * **Single-writer merge**: batch entry points look the cache up during
//!   planning, compute misses on worker threads *without touching the cache*,
//!   and merge freshly computed attributions only after the workers have
//!   joined — concurrent sessions serialize only on the brief lock of a
//!   lookup or merge, never for the duration of a compilation.
//! * **Counters** ([`CacheStats`]): hits, misses, insertions and evictions
//!   are tracked atomically and surfaced through
//!   [`crate::Engine::cache_stats`] (and the serving layer's stats).

use crate::attribution::{Attribution, Score};
use crate::canon::canonical_form;
use banzhaf_boolean::{Dnf, Var, VarSet};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// The cache key: the lineage with its variables renamed to the dense
/// colour-refinement canonical numbering of [`crate::canon`].
///
/// The invariant is **equal keys ⇔ isomorphic lineages, up to the
/// refinement's power**:
///
/// * *Soundness is unconditional*: the key is always a true renaming of the
///   lineage, so equal keys imply a variable bijection between the two
///   lineages, and attribution values — which are invariant under renaming —
///   transfer through it.
/// * *Completeness* — isomorphic lineages (any variable bijection composed
///   with any clause reordering) receive equal keys — holds whenever the
///   canonicalization's backtracking search runs to exhaustion, which it
///   does for every lineage whose refinement-invariant leaf count fits the
///   [`crate::canon`] leaf budget; past that (astronomically symmetric)
///   bound two copies may key apart and merely miss each other in the cache.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct CanonicalKey {
    pub(crate) num_vars: usize,
    pub(crate) clauses: Vec<Vec<u32>>,
}

/// A lineage together with its canonical renaming.
pub(crate) struct Canonicalized {
    pub(crate) key: CanonicalKey,
    /// The same function over the canonical variables `0..n`.
    pub(crate) dnf: Dnf,
    /// Refinement work spent computing the form (see
    /// [`crate::EngineStats::canon_steps`]).
    pub(crate) canon_steps: u64,
    /// Canonical index → original variable.
    originals: Vec<Var>,
}

impl Canonicalized {
    /// Renames variables to `0..n` by the colour-refinement canonical form
    /// over the clause–variable incidence graph (unused universe variables
    /// follow the used ones). The resulting key is invariant under arbitrary
    /// variable renamings and clause reorderings — see [`CanonicalKey`] for
    /// the exact invariant. (The previous first-occurrence renaming walked
    /// the clauses in the order the *original* labels sorted them, so a mere
    /// relabelling of the same lineage produced a different key and a
    /// spurious cache miss.)
    pub(crate) fn of(lineage: &Dnf) -> Canonicalized {
        // Dense pre-renaming by first occurrence: the canonical-form search
        // works on contiguous ids, and `dense_originals` remembers which
        // original fact each dense id stands for.
        let mut ids: HashMap<Var, u32> = HashMap::with_capacity(lineage.num_vars());
        let mut dense_originals: Vec<Var> = Vec::with_capacity(lineage.num_vars());
        let mut rename = |v: Var, originals: &mut Vec<Var>| -> u32 {
            *ids.entry(v).or_insert_with(|| {
                originals.push(v);
                (originals.len() - 1) as u32
            })
        };
        let dense_clauses: Vec<Vec<u32>> = lineage
            .clauses()
            .iter()
            .map(|c| c.iter().map(|v| rename(v, &mut dense_originals)).collect())
            .collect();
        for v in lineage.universe().iter() {
            rename(v, &mut dense_originals);
        }
        let form = canonical_form(dense_originals.len(), &dense_clauses);
        // Compose the two renamings: canonical index i stands for the
        // original fact behind the dense id the form placed at position i.
        let originals: Vec<Var> =
            form.order.iter().map(|&dense| dense_originals[dense as usize]).collect();
        let universe = VarSet::from_sorted((0..originals.len() as u32).map(Var).collect());
        let dnf = Dnf::from_clauses_with_universe(
            form.clauses.iter().map(|c| c.iter().map(|&i| Var(i))),
            universe,
        );
        Canonicalized {
            key: CanonicalKey { num_vars: originals.len(), clauses: form.clauses },
            dnf,
            canon_steps: form.steps,
            originals,
        }
    }

    /// Renames a canonical-variable attribution back to the original facts.
    pub(crate) fn map_back(&self, canonical: &Attribution) -> Attribution {
        let rename = |v: &Var| self.originals[v.index()];
        let values: HashMap<Var, Score> =
            canonical.values.iter().map(|(v, s)| (rename(v), s.clone())).collect();
        let shapley = canonical
            .shapley
            .as_ref()
            .map(|m| m.iter().map(|(v, s)| (rename(v), s.clone())).collect());
        Attribution {
            algorithm: canonical.algorithm,
            values,
            model_count: canonical.model_count.clone(),
            shapley,
            stats: canonical.stats,
        }
    }
}

/// A point-in-time snapshot of the shared cache's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry. An instance whose shape is compiled by an
    /// earlier instance of the *same batch* counts as a miss here (the shape
    /// was not cached when it was looked up) even though the session scores
    /// the shared work as a per-session hit.
    pub misses: u64,
    /// Attributions merged into the cache.
    pub insertions: u64,
    /// Entries evicted to keep the cache within its capacity bound.
    pub evictions: u64,
    /// Canonicalization work (colour-refinement steps) spent computing the
    /// cache keys by the engine's sessions — the price paid for the
    /// order-insensitive keying, to weigh against the compile steps the hits
    /// save.
    pub canon_steps: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The configured capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// The fraction of lookups answered from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    /// `Arc`ed so a hit hands the value out with an O(1) refcount bump — the
    /// deep copy (`Canonicalized::map_back`) happens outside the lock.
    attribution: Arc<Attribution>,
    /// The map key, shared with the recency queue so a touch appends an
    /// O(1) refcount bump instead of deep-copying the clause list.
    key: Arc<CanonicalKey>,
    /// The tick of this entry's most recent touch; queue pairs with an older
    /// tick are stale.
    tick: u64,
}

struct CacheInner {
    map: HashMap<Arc<CanonicalKey>, CacheEntry>,
    /// Lazy LRU order: `(key, tick)` appended on every touch; a pair is live
    /// iff its tick equals the entry's current tick.
    recency: VecDeque<(Arc<CanonicalKey>, u64)>,
    tick: u64,
    /// The counters live under the same lock as the map so a
    /// [`SharedCache::stats`] snapshot is consistent: each lookup increments
    /// exactly one of `hits`/`misses` atomically with the map access it
    /// describes. (They used to be separate relaxed atomics bumped after the
    /// lock was dropped, and a snapshot could observe a hit whose miss-side
    /// context was still unrecorded — hit-rate math briefly exceeding 1.0.)
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    canon_steps: u64,
}

/// The shared, size-bounded, canonical-lineage-keyed attribution cache.
///
/// Wrapped in an `Arc` by [`crate::Engine`] and handed to every
/// [`crate::Session`]; safe to share across threads. Lookups and merges take
/// a short internal lock; compilations never run under it.
pub struct SharedCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl SharedCache {
    /// A cache bounded to `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SharedCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                recency: VecDeque::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                canon_steps: 0,
            }),
            capacity,
        }
    }

    /// The configured entry-count bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks a canonical shape up, refreshing its recency on a hit.
    ///
    /// Returns a shared handle: the critical section is O(1) (refcount bump
    /// plus recency bookkeeping), never a deep copy of the attribution.
    pub(crate) fn get(&self, key: &CanonicalKey) -> Option<Arc<Attribution>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                let attribution = Arc::clone(&entry.attribution);
                let stored_key = Arc::clone(&entry.key);
                inner.recency.push_back((stored_key, tick));
                inner.hits += 1;
                Self::compact(&mut inner);
                Some(attribution)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Merges one freshly computed canonical attribution, evicting the least
    /// recently used entries if the capacity bound is exceeded. Re-inserting
    /// an existing shape refreshes its entry (last writer wins; both writers
    /// computed bit-identical values on the canonical form).
    pub(crate) fn insert(&self, key: CanonicalKey, attribution: Attribution) {
        let attribution = Arc::new(attribution);
        let key = Arc::new(key);
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.recency.push_back((Arc::clone(&key), tick));
        inner.map.insert(Arc::clone(&key), CacheEntry { attribution, key, tick });
        inner.insertions += 1;
        while inner.map.len() > self.capacity {
            let Some((victim, victim_tick)) = inner.recency.pop_front() else {
                break;
            };
            let live = inner.map.get(&victim).is_some_and(|e| e.tick == victim_tick);
            if live {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        Self::compact(&mut inner);
    }

    /// Records canonicalization work performed by a session of this engine,
    /// so [`CacheStats::canon_steps`] reports the end-to-end cost of the
    /// order-insensitive keying next to the hits it buys.
    pub(crate) fn record_canon(&self, steps: u64) {
        self.inner.lock().expect("cache lock poisoned").canon_steps += steps;
    }

    /// Drops stale recency pairs once the queue outgrows the live entry set,
    /// keeping the lazy-LRU bookkeeping O(1) amortized per touch.
    fn compact(inner: &mut CacheInner) {
        if inner.recency.len() <= inner.map.len().saturating_mul(4).max(64) {
            return;
        }
        let map = &inner.map;
        let mut seen: HashMap<&CanonicalKey, u64> = HashMap::with_capacity(map.len());
        for (key, entry) in map {
            seen.insert(key.as_ref(), entry.tick);
        }
        inner.recency.retain(|(key, tick)| seen.get(key.as_ref()) == Some(tick));
    }

    /// Removes every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.map.clear();
        inner.recency.clear();
    }

    /// A consistent snapshot of the cache's counters and occupancy: all
    /// fields are read under one acquisition of the inner lock, so no
    /// concurrent lookup is ever half-reflected — in particular
    /// `hits + misses` is exactly the number of completed lookups and the
    /// hit rate can never exceed 1.0.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            canon_steps: inner.canon_steps,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

impl fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCache").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::EngineStats;
    use banzhaf_arith::Natural;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn dummy_attribution(tag: u64) -> Attribution {
        Attribution {
            algorithm: "test",
            values: [(v(0), Score::Exact(Natural::from(tag)))].into_iter().collect(),
            model_count: None,
            shapley: None,
            stats: EngineStats::default(),
        }
    }

    fn key_of(clause: &[u32]) -> CanonicalKey {
        let vars: Vec<Var> = clause.iter().map(|&i| Var(i)).collect();
        Canonicalized::of(&Dnf::from_clauses(vec![vars])).key
    }

    #[test]
    fn lru_evicts_the_least_recently_used_shape() {
        let cache = SharedCache::new(2);
        let (a, b, c) = (key_of(&[0]), key_of(&[0, 1]), key_of(&[0, 1, 2]));
        cache.insert(a.clone(), dummy_attribution(1));
        cache.insert(b.clone(), dummy_attribution(2));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), dummy_attribution(3));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(&a).is_some(), "recently touched entry survives");
        assert!(cache.get(&b).is_none(), "LRU entry was evicted");
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn counters_track_hits_misses_and_insertions() {
        let cache = SharedCache::new(8);
        let key = key_of(&[0, 1]);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), dummy_attribution(7));
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions, stats.evictions), (1, 1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let cache = SharedCache::new(4);
        let key = key_of(&[0]);
        cache.insert(key.clone(), dummy_attribution(1));
        for _ in 0..10_000 {
            assert!(cache.get(&key).is_some());
        }
        let inner = cache.inner.lock().unwrap();
        assert!(
            inner.recency.len() <= 64 + 4,
            "lazy LRU queue must be compacted, got {}",
            inner.recency.len()
        );
    }

    #[test]
    fn concurrent_sessions_share_entries() {
        let cache = std::sync::Arc::new(SharedCache::new(16));
        let key = key_of(&[0, 1, 2]);
        cache.insert(key.clone(), dummy_attribution(9));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        assert!(cache.get(&key).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 400);
    }

    #[test]
    fn snapshots_are_consistent_under_concurrent_lookups() {
        // Every worker alternates a guaranteed miss with a guaranteed hit —
        // miss first — so at any *consistent* point in time hits ≤ misses.
        // With the old torn snapshot (each counter its own relaxed atomic,
        // bumped after the lock was dropped) a reader could observe the hit
        // of a pair whose miss was still unrecorded and see hits > misses,
        // i.e. transient hit rates above their true value (and, with more
        // workers than pairs, above 1.0).
        let cache = SharedCache::new(8);
        let present = key_of(&[0, 1]);
        let missing = key_of(&[0, 1, 2, 3]);
        cache.insert(present.clone(), dummy_attribution(1));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..2_000 {
                        assert!(cache.get(&missing).is_none());
                        assert!(cache.get(&present).is_some());
                    }
                });
            }
            for _ in 0..5_000 {
                let stats = cache.stats();
                assert!(
                    stats.hits <= stats.misses,
                    "torn snapshot: {} hits vs {} misses",
                    stats.hits,
                    stats.misses
                );
                assert!(stats.hit_rate() <= 1.0);
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 8_000);
        assert_eq!(stats.misses, 8_000);
    }

    #[test]
    fn relabelled_lineages_share_one_key_and_shapes_key_apart() {
        // First-occurrence renaming keyed the 3-path by which variable held
        // the middle label ({x,y} ∨ {y,z} vs {y,x} ∨ {y,z}): one
        // isomorphism class, two keys, a spurious miss. The
        // refinement-based key identifies every labelling...
        let middle_mid =
            Canonicalized::of(&Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(1), v(2)]]));
        let middle_large =
            Canonicalized::of(&Dnf::from_clauses(vec![vec![v(9), v(0)], vec![v(9), v(1)]]));
        let middle_small =
            Canonicalized::of(&Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)]]));
        assert_eq!(middle_mid.key, middle_large.key, "isomorphic lineages must key equal");
        assert_eq!(middle_mid.key, middle_small.key, "isomorphic lineages must key equal");
        assert!(middle_mid.canon_steps > 0);
        // ...while non-isomorphic shapes (different model counts) stay apart.
        let path4 = Canonicalized::of(&Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
        ]));
        let star4 = Canonicalized::of(&Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(0), v(2)],
            vec![v(0), v(3)],
        ]));
        assert_ne!(path4.key, star4.key, "non-isomorphic shapes must key apart");
    }

    #[test]
    fn canonical_dnf_is_isomorphic_to_the_input() {
        // The backend runs the canonical form; it must be the same function
        // modulo renaming — model counts are renaming-invariant.
        let phi = Dnf::from_clauses(vec![vec![v(7), v(2)], vec![v(2), v(5)], vec![v(9)]]);
        let canonical = Canonicalized::of(&phi);
        assert_eq!(
            phi.brute_force_model_count(),
            canonical.dnf.brute_force_model_count(),
            "canonicalization must preserve the function up to renaming"
        );
        assert_eq!(canonical.dnf.num_vars(), phi.num_vars());
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = SharedCache::new(4);
        let key = key_of(&[0]);
        cache.insert(key.clone(), dummy_attribution(1));
        assert!(cache.get(&key).is_some());
        cache.clear();
        assert!(cache.get(&key).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.insertions, 1);
    }
}
