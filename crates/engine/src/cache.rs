//! The engine-level shared attribution cache.
//!
//! PR 2 introduced a per-[`crate::Session`] d-tree cache keyed by canonical
//! lineage; this module promotes it to an **engine-level, cross-session**
//! cache: every session of an [`crate::Engine`] (and every worker of the
//! async serving layer on top) shares one size-bounded store, so repeated
//! queries across sessions reuse compilations instead of redoing them.
//!
//! Design:
//!
//! * **Two-level keying: fingerprint, then canonical form.** Every lookup
//!   first computes a cheap isomorphism-invariant [`Fingerprint`]
//!   (variable/clause counts plus hashed clause-width and variable-degree
//!   multisets — one linear pass, no refinement). Isomorphic lineages always
//!   share a fingerprint, so an empty fingerprint bucket is a **definite
//!   miss**: the lineage is compiled and inserted under its fingerprint with
//!   the canonical form left *uncomputed*. Only when a second distinct shape
//!   arrives under the same fingerprint does anyone pay for canonicalization
//!   — the new arrival and any still-unkeyed residents are canonicalized
//!   ([`CanonicalKey`], the colour-refinement canonical renaming of
//!   [`crate::canon`]) and compared exactly. Singleton fingerprints — the
//!   common case for heterogeneous traffic — never run the
//!   individualization search at all; the searches avoided this way are
//!   counted as [`CacheStats::prekey_skips`].
//! * **Exact canonical confirmation**: equal canonical keys imply isomorphic
//!   lineages (so cached attributions transfer under the variable
//!   bijection), and isomorphic lineages produce equal keys under arbitrary
//!   variable renamings and clause reorderings — fingerprint collisions
//!   between non-isomorphic shapes (e.g. two triangles vs a hexagon) are
//!   resolved by the canonical key, never served across.
//! * **Size-bounded, LRU-evicted**: the cache holds at most
//!   [`SharedCache::capacity`] entries. Recency is tracked with a lazy LRU
//!   queue (every touch appends an `(entry id, tick)` pair; eviction pops
//!   from the front, skipping pairs whose tick is stale), so hits and
//!   inserts stay O(1) amortized with no intrusive lists.
//! * **Single-writer merge**: batch entry points look the cache up during
//!   planning, compute misses on worker threads *without touching the cache*,
//!   and merge freshly computed attributions only after the workers have
//!   joined — concurrent sessions serialize only on the brief lock of a
//!   lookup or merge, never for the duration of a compilation (or of a
//!   canonicalization, which also runs outside the lock).
//! * **Counters** ([`CacheStats`]): hits, misses, insertions, evictions and
//!   the canonicalization work (`canon_steps`, `canon_searches`,
//!   `prekey_skips`) are tracked under one lock and surfaced through
//!   [`crate::Engine::stats`] (and the serving layer's stats).

use crate::attribution::{Attribution, Score};
use crate::canon::{
    canonical_form_classed, canonical_form_classed_budgeted, fingerprint, weighted_payload,
    Fingerprint,
};
use crate::persist::SnapshotError;
use banzhaf::{Budget, Interrupted};
use banzhaf_arith::Rational;
use banzhaf_boolean::{AggregateKind, Dnf, Var, VarSet, WeightedDnf};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// The exact cache key: the lineage with its variables renamed to the dense
/// colour-refinement canonical numbering of [`crate::canon`].
///
/// The invariant is **equal keys ⇔ isomorphic lineages, up to the
/// refinement's power**:
///
/// * *Soundness is unconditional*: the key is always a true renaming of the
///   lineage, so equal keys imply a variable bijection between the two
///   lineages, and attribution values — which are invariant under renaming —
///   transfer through it.
/// * *Completeness* — isomorphic lineages (any variable bijection composed
///   with any clause reordering) receive equal keys — holds whenever the
///   canonicalization's backtracking search runs to exhaustion, which it
///   does for every lineage whose refinement-invariant leaf count fits the
///   [`crate::canon`] leaf budget; past that (astronomically symmetric)
///   bound two copies may key apart and merely miss each other in the cache.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct CanonicalKey {
    pub(crate) num_vars: usize,
    pub(crate) clauses: Vec<Vec<u32>>,
    /// The aggregate payload, `None` for Boolean lineages. Weights are
    /// aligned with `clauses` (the canonical clause order), so two weighted
    /// lineages key equal iff some variable bijection matches clauses *and*
    /// their weights *and* the aggregate kind — a `SUM` lineage never serves
    /// a `COUNT` hit, and equal Boolean skeletons with different weights key
    /// apart.
    pub(crate) payload: Option<WeightedInfo>,
}

/// What distinguishes a weighted aggregate lineage from its Boolean
/// skeleton: the aggregate kind plus the per-clause weights. Attached as the
/// `payload` of [`Shape`] (dense clause order) and [`CanonicalKey`]
/// (canonical clause order).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct WeightedInfo {
    pub(crate) kind: AggregateKind,
    pub(crate) weights: Vec<Rational>,
}

/// A lineage in dense first-occurrence presentation: variables renamed to
/// `0..num_vars` in order of first occurrence, clauses sorted. This is *not*
/// isomorphism-invariant (that is [`CanonicalKey`]'s job) — it is the stable
/// presentation the backends run and the one the canonical form is computed
/// from when a fingerprint collision forces it.
#[derive(PartialEq, Eq, Debug)]
pub(crate) struct Shape {
    pub(crate) num_vars: usize,
    pub(crate) clauses: Vec<Vec<u32>>,
    /// The aggregate payload, `None` for Boolean lineages; weights aligned
    /// with `clauses` (the dense presentation).
    pub(crate) payload: Option<WeightedInfo>,
}

impl Shape {
    /// Runs the individualization search on this presentation. Returns the
    /// canonical renaming and the refinement steps it cost.
    pub(crate) fn canonicalize(&self) -> (CanonInfo, u64) {
        let classes = self.weight_classes();
        let form = canonical_form_classed(self.num_vars, &self.clauses, classes.as_deref());
        let payload = self.canonical_payload(&form.order, &form.clauses);
        (
            CanonInfo {
                key: CanonicalKey { num_vars: self.num_vars, clauses: form.clauses, payload },
                order: form.order,
            },
            form.steps,
        )
    }

    /// [`Shape::canonicalize`] under a cooperative budget: exhaustion
    /// interrupts the descent and the caller treats the shape as unkeyable
    /// (a definite miss) rather than stalling the planning walk.
    pub(crate) fn canonicalize_budgeted(
        &self,
        budget: &Budget,
    ) -> Result<(CanonInfo, u64), Interrupted> {
        let classes = self.weight_classes();
        let form = canonical_form_classed_budgeted(
            self.num_vars,
            &self.clauses,
            classes.as_deref(),
            budget,
        )?;
        let payload = self.canonical_payload(&form.order, &form.clauses);
        Ok((
            CanonInfo {
                key: CanonicalKey { num_vars: self.num_vars, clauses: form.clauses, payload },
                order: form.order,
            },
            form.steps,
        ))
    }

    /// Per-clause class labels for the canonical search: the rank of each
    /// clause's weight among the shape's sorted distinct weights. Ranks are
    /// isomorphism-invariant (a weighted bijection carries each clause's
    /// weight along, and both sides rank the same weight multiset), and they
    /// make the canonical witness *weight-aware*: without them a symmetric
    /// Boolean skeleton — the 3-path, say — lets the search pick either of
    /// two automorphic witnesses, landing the weights of two isomorphic
    /// weighted lineages in different canonical orders and splitting one
    /// isomorphism class across two keys. `None` for Boolean shapes.
    fn weight_classes(&self) -> Option<Vec<u32>> {
        let payload = self.payload.as_ref()?;
        let mut distinct: Vec<&Rational> = payload.weights.iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        Some(
            payload
                .weights
                .iter()
                .map(|w| {
                    distinct.binary_search(&w).expect("every weight ranks in the distinct list")
                        as u32
                })
                .collect(),
        )
    }

    /// Permutes the shape's clause weights into the canonical clause order —
    /// the weights of [`CanonicalKey::payload`]. Renames each dense clause
    /// through the inverse of the canonical witness, sorts the (clause,
    /// weight) pairs by clause; the weighted clauses are distinct (the
    /// lineage merged duplicates), so the permutation is unambiguous and the
    /// resulting clause list is exactly the canonical one.
    fn canonical_payload(
        &self,
        order: &[u32],
        canonical_clauses: &[Vec<u32>],
    ) -> Option<WeightedInfo> {
        let payload = self.payload.as_ref()?;
        let mut inv = vec![0u32; order.len()];
        for (i, &dense) in order.iter().enumerate() {
            inv[dense as usize] = i as u32;
        }
        let mut pairs: Vec<(Vec<u32>, &Rational)> = self
            .clauses
            .iter()
            .zip(&payload.weights)
            .map(|(c, w)| {
                let mut clause: Vec<u32> = c.iter().map(|&v| inv[v as usize]).collect();
                clause.sort_unstable();
                (clause, w)
            })
            .collect();
        pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        debug_assert!(
            pairs.iter().map(|(c, _)| c).eq(canonical_clauses.iter()),
            "renaming the clauses through the witness must reproduce the canonical form"
        );
        Some(WeightedInfo {
            kind: payload.kind,
            weights: pairs.into_iter().map(|(_, w)| w.clone()).collect(),
        })
    }
}

/// The canonical renaming of one [`Shape`]: the exact key plus the witness
/// order needed to transfer attribution values between isomorphic shapes.
#[derive(Debug)]
pub(crate) struct CanonInfo {
    pub(crate) key: CanonicalKey,
    /// `order[i]` is the dense variable of the owning [`Shape`] assigned
    /// canonical index `i`.
    pub(crate) order: Vec<u32>,
}

/// A lineage prepared for a cache lookup: densely renamed, fingerprinted —
/// and *not yet canonicalized*. The individualization search only runs (via
/// [`Shape::canonicalize`]) when the fingerprint bucket is contested.
pub(crate) struct Prekeyed {
    pub(crate) fingerprint: Fingerprint,
    pub(crate) shape: Arc<Shape>,
    /// The same function over the dense variables `0..n` — what the backends
    /// run; results are renamed back to the original facts via
    /// [`Prekeyed::map_back`].
    pub(crate) dnf: Dnf,
    /// For aggregate lookups ([`Prekeyed::of_weighted`]): the dense weighted
    /// lineage the backends run, `None` for Boolean lookups.
    pub(crate) weighted: Option<WeightedDnf>,
    /// Dense variable → original fact.
    originals: Vec<Var>,
}

impl Prekeyed {
    /// Renames variables to `0..n` by first occurrence (clauses first, then
    /// the unused universe padding), computes the fingerprint, and builds
    /// the dense [`Dnf`] the backends will run. No refinement, no search —
    /// one linear pass.
    pub(crate) fn of(lineage: &Dnf) -> Prekeyed {
        let mut ids: HashMap<Var, u32> = HashMap::with_capacity(lineage.num_vars());
        let mut originals: Vec<Var> = Vec::with_capacity(lineage.num_vars());
        let mut rename = |v: Var, originals: &mut Vec<Var>| -> u32 {
            *ids.entry(v).or_insert_with(|| {
                originals.push(v);
                (originals.len() - 1) as u32
            })
        };
        let mut clauses: Vec<Vec<u32>> = lineage
            .clauses()
            .iter()
            .map(|c| {
                let mut clause: Vec<u32> = c.iter().map(|v| rename(v, &mut originals)).collect();
                clause.sort_unstable();
                clause
            })
            .collect();
        clauses.sort_unstable();
        for v in lineage.universe().iter() {
            rename(v, &mut originals);
        }
        let num_vars = originals.len();
        let universe = VarSet::from_sorted((0..num_vars as u32).map(Var).collect());
        let dnf = Dnf::from_clauses_with_universe(
            clauses.iter().map(|c| c.iter().map(|&i| Var(i))),
            universe,
        );
        Prekeyed {
            fingerprint: fingerprint(num_vars, &clauses),
            shape: Arc::new(Shape { num_vars, clauses, payload: None }),
            dnf,
            weighted: None,
            originals,
        }
    }

    /// [`Prekeyed::of`] for a weighted aggregate lineage: the Boolean
    /// skeleton is densely renamed exactly as for a Boolean lookup, the
    /// weights follow their clauses through the rename, and the fingerprint
    /// gains the renaming-invariant aggregate payload digest — so weighted
    /// lookups never even share a bucket with Boolean ones (or with a
    /// different kind or weight multiset).
    pub(crate) fn of_weighted(lineage: &WeightedDnf) -> Prekeyed {
        let base = Prekeyed::of(lineage.dnf());
        // The weighted clauses are distinct (duplicates were merged at
        // construction), so a sorted-variable-list lookup recovers each dense
        // clause's weight unambiguously.
        let by_clause: HashMap<Vec<Var>, &Rational> = lineage
            .dnf()
            .clauses()
            .iter()
            .zip(lineage.weights())
            .map(|(c, w)| {
                let mut vars = c.vars().to_vec();
                vars.sort_unstable();
                (vars, w)
            })
            .collect();
        let weights: Vec<Rational> = base
            .shape
            .clauses
            .iter()
            .map(|c| {
                let mut vars: Vec<Var> = c.iter().map(|&i| base.originals[i as usize]).collect();
                vars.sort_unstable();
                by_clause[&vars].clone()
            })
            .collect();
        let kind = lineage.kind();
        let fingerprint =
            base.fingerprint.with_payload(weighted_payload(kind, &base.shape.clauses, &weights));
        let weighted = WeightedDnf::from_weighted_clauses(
            kind,
            base.shape
                .clauses
                .iter()
                .zip(&weights)
                .map(|(c, w)| (c.iter().map(|&i| Var(i)).collect::<Vec<Var>>(), w.clone())),
        )
        .widen_universe(base.dnf.universe().clone());
        let shape = Arc::new(Shape {
            num_vars: base.shape.num_vars,
            clauses: base.shape.clauses.clone(),
            payload: Some(WeightedInfo { kind, weights }),
        });
        Prekeyed {
            fingerprint,
            shape,
            dnf: base.dnf,
            weighted: Some(weighted),
            originals: base.originals,
        }
    }

    /// Renames a dense-variable attribution (computed on [`Prekeyed::dnf`])
    /// back to the original facts.
    pub(crate) fn map_back(&self, dense: &Attribution) -> Attribution {
        Self::rename_through(dense, |v| self.originals[v.index()])
    }

    /// Renames an attribution computed on *another* isomorphic shape back to
    /// this lineage's original facts, composing the two canonical witnesses:
    /// canonical index `i` is the owner's dense variable `owner.order[i]`
    /// and this lineage's dense variable `mine.order[i]`.
    pub(crate) fn map_back_via(
        &self,
        mine: &CanonInfo,
        owner: &CanonInfo,
        dense: &Attribution,
    ) -> Attribution {
        debug_assert_eq!(mine.key, owner.key, "witness composition requires equal keys");
        let mut through = vec![Var(0); self.originals.len()];
        for (&theirs, &ours) in owner.order.iter().zip(mine.order.iter()) {
            through[theirs as usize] = self.originals[ours as usize];
        }
        Self::rename_through(dense, |v| through[v.index()])
    }

    fn rename_through(dense: &Attribution, rename: impl Fn(&Var) -> Var) -> Attribution {
        let values: HashMap<Var, Score> =
            dense.values.iter().map(|(v, s)| (rename(v), s.clone())).collect();
        let shapley =
            dense.shapley.as_ref().map(|m| m.iter().map(|(v, s)| (rename(v), s.clone())).collect());
        Attribution {
            algorithm: dense.algorithm,
            values,
            model_count: dense.model_count.clone(),
            shapley,
            aggregate: dense.aggregate,
            aggregate_total: dense.aggregate_total.clone(),
            stats: dense.stats,
            degradation: dense.degradation,
        }
    }
}

/// A point-in-time snapshot of the shared cache's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry — either a vacant fingerprint bucket (no
    /// canonicalization performed) or a contested bucket whose residents all
    /// keyed apart. An instance whose shape is compiled by an earlier
    /// instance of the *same batch* counts as a miss here (the shape was not
    /// cached when it was looked up) even though the session scores the
    /// shared work as a per-session hit.
    pub misses: u64,
    /// Attributions merged into the cache.
    pub insertions: u64,
    /// Entries evicted to keep the cache within its capacity bound.
    pub evictions: u64,
    /// Canonicalization work (colour-refinement steps) spent computing the
    /// exact cache keys by the engine's sessions — the price paid for the
    /// order-insensitive keying, to weigh against the compile steps the hits
    /// save.
    pub canon_steps: u64,
    /// Individualization searches actually run by the engine's sessions
    /// (one per shape canonicalized — lookups resolved by the fingerprint
    /// alone run none).
    pub canon_searches: u64,
    /// Lookups resolved without any individualization search because their
    /// fingerprint bucket was vacant (the common case for heterogeneous
    /// traffic).
    pub prekey_skips: u64,
    /// Warm-start snapshot files loaded successfully (see
    /// [`SharedCache::load`] / [`ShardedCache::load`]).
    pub snapshot_loads: u64,
    /// Entries admitted from warm-start snapshots (excess entries beyond the
    /// capacity bound are dropped at load, not evicted later).
    pub snapshot_entries: u64,
    /// Snapshot loads rejected — corrupt files, bad magic/version, checksum
    /// mismatches — each surfaced to the caller as a typed
    /// [`crate::SnapshotError`] while the cache degrades to a cold start.
    pub snapshot_rejects: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The configured capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// The fraction of lookups answered from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The first, cheap phase of a lookup: what the fingerprint bucket holds.
pub(crate) enum Lookup {
    /// No resident shares the fingerprint — a definite miss, already counted;
    /// no canonicalization is needed (insert the compiled result with
    /// `canon: None`).
    Vacant,
    /// Residents share the fingerprint. Canonicalize (outside the lock!) the
    /// probe and any resident returned with `canon: None`, then settle the
    /// lookup with [`SharedCache::finish_lookup`].
    Occupied(Vec<Resident>),
}

/// One cache entry visible to a contested lookup.
pub(crate) struct Resident {
    pub(crate) id: u64,
    pub(crate) shape: Arc<Shape>,
    /// The entry's canonical renaming, if some earlier contested lookup
    /// already paid for it.
    pub(crate) canon: Option<Arc<CanonInfo>>,
}

/// A settled cache hit: the stored dense attribution plus the owning entry's
/// canonical witness (compose with the probe's own witness to rename the
/// values — see [`Prekeyed::map_back_via`]).
pub(crate) struct CacheHit {
    pub(crate) attribution: Arc<Attribution>,
    pub(crate) canon: Arc<CanonInfo>,
}

struct CacheEntry {
    fingerprint: Fingerprint,
    shape: Arc<Shape>,
    /// `Arc`ed so a hit hands the value out with an O(1) refcount bump — the
    /// deep copy (`Prekeyed::map_back_via`) happens outside the lock. The
    /// attribution is over the entry's *dense* variables.
    attribution: Arc<Attribution>,
    /// Computed lazily, only once the fingerprint bucket is contested.
    canon: Option<Arc<CanonInfo>>,
    /// The tick of this entry's most recent touch; queue pairs with an older
    /// tick are stale.
    tick: u64,
}

struct CacheInner {
    /// Fingerprint → resident entry ids. Buckets are tiny (almost always a
    /// singleton); an absent fingerprint is a definite miss.
    buckets: HashMap<Fingerprint, Vec<u64>>,
    entries: HashMap<u64, CacheEntry>,
    /// Lazy LRU order: `(entry id, tick)` appended on every touch; a pair is
    /// live iff its tick equals the entry's current tick.
    recency: VecDeque<(u64, u64)>,
    next_id: u64,
    tick: u64,
    /// The counters live under the same lock as the map so a
    /// [`SharedCache::stats`] snapshot is consistent: each lookup increments
    /// exactly one of `hits`/`misses` atomically with the map access it
    /// describes. (They used to be separate relaxed atomics bumped after the
    /// lock was dropped, and a snapshot could observe a hit whose miss-side
    /// context was still unrecorded — hit-rate math briefly exceeding 1.0.)
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    canon_steps: u64,
    canon_searches: u64,
    prekey_skips: u64,
    snapshot_loads: u64,
    snapshot_entries: u64,
    snapshot_rejects: u64,
}

/// The shared, size-bounded attribution cache, keyed by fingerprint first
/// and canonical lineage second.
///
/// Wrapped in an `Arc` by [`crate::Engine`] and handed to every
/// [`crate::Session`]; safe to share across threads. Lookups and merges take
/// a short internal lock; compilations and canonicalizations never run
/// under it.
pub struct SharedCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl SharedCache {
    /// A cache bounded to `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SharedCache {
            inner: Mutex::new(CacheInner {
                buckets: HashMap::new(),
                entries: HashMap::new(),
                recency: VecDeque::new(),
                next_id: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                canon_steps: 0,
                canon_searches: 0,
                prekey_skips: 0,
                snapshot_loads: 0,
                snapshot_entries: 0,
                snapshot_rejects: 0,
            }),
            capacity,
        }
    }

    /// The configured entry-count bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Phase one of a lookup: inspects the fingerprint bucket. A vacant
    /// bucket is a definite miss (counted here); an occupied one returns the
    /// candidate residents so the caller can canonicalize outside the lock
    /// and settle with [`SharedCache::finish_lookup`].
    pub(crate) fn lookup(&self, fp: Fingerprint) -> Lookup {
        // Fault injection: simulate lock contention (a Sleep action stalls
        // the caller right before the acquisition).
        banzhaf_par::failpoint!("cache::lookup");
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        match inner.buckets.get(&fp) {
            Some(ids) if !ids.is_empty() => {
                let residents = ids
                    .iter()
                    .map(|&id| {
                        let entry = &inner.entries[&id];
                        Resident { id, shape: Arc::clone(&entry.shape), canon: entry.canon.clone() }
                    })
                    .collect();
                Lookup::Occupied(residents)
            }
            _ => {
                inner.misses += 1;
                Lookup::Vacant
            }
        }
    }

    /// Phase two of a contested lookup: stores the canonical renamings the
    /// caller computed for previously-unkeyed residents (`resolved`), then
    /// scans the bucket for an entry whose canonical key equals `key`. A
    /// match is a hit (recency refreshed); no match is a miss. Exactly one
    /// of `hits`/`misses` is incremented.
    pub(crate) fn finish_lookup(
        &self,
        fp: Fingerprint,
        key: &CanonicalKey,
        resolved: &[(u64, Arc<CanonInfo>)],
    ) -> Option<CacheHit> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        for (id, canon) in resolved {
            if let Some(entry) = inner.entries.get_mut(id) {
                // Keep an existing witness if another session raced us to
                // it: canonicalization is deterministic on the entry's
                // shape, so both computed the same renaming.
                if entry.canon.is_none() {
                    entry.canon = Some(Arc::clone(canon));
                }
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        let ids = inner.buckets.get(&fp).cloned().unwrap_or_default();
        for id in ids {
            let entry = &inner.entries[&id];
            let matches = entry.canon.as_ref().is_some_and(|c| c.key == *key);
            if matches {
                let entry = inner.entries.get_mut(&id).expect("resident just seen");
                entry.tick = tick;
                let hit = CacheHit {
                    attribution: Arc::clone(&entry.attribution),
                    canon: Arc::clone(entry.canon.as_ref().expect("matched on canon")),
                };
                inner.recency.push_back((id, tick));
                inner.hits += 1;
                Self::compact(&mut inner);
                return Some(hit);
            }
        }
        inner.misses += 1;
        None
    }

    /// Merges one freshly computed dense attribution under its fingerprint,
    /// evicting the least recently used entries if the capacity bound is
    /// exceeded. Re-inserting an existing shape refreshes that entry — last
    /// writer wins. When the match is by equal *dense presentation* both
    /// writers computed bit-identical values on the same dense form, so only
    /// the attribution (and a missing witness) need storing; when the match
    /// is by equal *canonical key* with a different dense presentation (two
    /// sessions raced isomorphic lineages through different labellings), the
    /// incoming attribution is keyed by the *inserter's* dense variables, so
    /// shape, witness and attribution are replaced together — mixing the old
    /// witness with the new values would silently misattribute per-variable
    /// scores on every subsequent hit.
    pub(crate) fn insert(
        &self,
        fp: Fingerprint,
        shape: &Arc<Shape>,
        canon: Option<Arc<CanonInfo>>,
        attribution: Arc<Attribution>,
    ) {
        debug_assert!(
            attribution.degradation.is_none(),
            "degraded results reflect a budget, not the lineage; never cache them"
        );
        // Fault injection: simulate lock contention on the merge side.
        banzhaf_par::failpoint!("cache::insert");
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let bucket = inner.buckets.get(&fp).cloned().unwrap_or_default();
        let existing = bucket.iter().copied().find(|id| {
            let entry = &inner.entries[id];
            let same_key = match (&entry.canon, &canon) {
                (Some(theirs), Some(ours)) => theirs.key == ours.key,
                _ => false,
            };
            same_key || *entry.shape == **shape
        });
        if let Some(id) = existing {
            let entry = inner.entries.get_mut(&id).expect("resident just seen");
            if *entry.shape == **shape {
                // Same dense presentation: the values are bit-identical;
                // keep the entry's witness (adopting ours if it has none).
                if entry.canon.is_none() {
                    entry.canon = canon;
                }
            } else {
                // Matched by canonical key across different presentations:
                // the attribution below is keyed by *our* dense variables,
                // so the shape and witness must switch presentation with it.
                debug_assert!(canon.is_some(), "cross-presentation match requires a witness");
                entry.shape = Arc::clone(shape);
                entry.canon = canon;
            }
            entry.attribution = attribution;
            entry.tick = tick;
            inner.recency.push_back((id, tick));
        } else {
            let id = inner.next_id;
            inner.next_id += 1;
            inner.entries.insert(
                id,
                CacheEntry { fingerprint: fp, shape: Arc::clone(shape), attribution, canon, tick },
            );
            inner.buckets.entry(fp).or_default().push(id);
            inner.recency.push_back((id, tick));
        }
        inner.insertions += 1;
        while inner.entries.len() > self.capacity {
            let Some((victim, victim_tick)) = inner.recency.pop_front() else {
                break;
            };
            let live = inner.entries.get(&victim).is_some_and(|e| e.tick == victim_tick);
            if live {
                let entry = inner.entries.remove(&victim).expect("live victim");
                if let Some(ids) = inner.buckets.get_mut(&entry.fingerprint) {
                    ids.retain(|&id| id != victim);
                    if ids.is_empty() {
                        inner.buckets.remove(&entry.fingerprint);
                    }
                }
                inner.evictions += 1;
            }
        }
        Self::compact(&mut inner);
    }

    /// A non-counting view of a fingerprint bucket: the residents, without
    /// touching the hit/miss counters or the recency queue. Batch planning
    /// uses this to decide *speculatively* which probes will need
    /// canonicalization (so the searches can fan out across the pool); the
    /// authoritative [`SharedCache::lookup`] / [`SharedCache::finish_lookup`]
    /// pair still runs for every instance, in instance order, so the
    /// counters and recency are exactly what the sequential walk produces.
    pub(crate) fn peek(&self, fp: Fingerprint) -> Vec<Resident> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        match inner.buckets.get(&fp) {
            Some(ids) => ids
                .iter()
                .map(|&id| {
                    let entry = &inner.entries[&id];
                    Resident { id, shape: Arc::clone(&entry.shape), canon: entry.canon.clone() }
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Records canonicalization work performed by a session of this engine —
    /// refinement steps, individualization searches run, and searches
    /// avoided outright by vacant fingerprints — so [`CacheStats`] reports
    /// the end-to-end cost of the keying next to the hits it buys.
    pub(crate) fn record_canon(&self, steps: u64, searches: u64, skips: u64) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.canon_steps += steps;
        inner.canon_searches += searches;
        inner.prekey_skips += skips;
    }

    /// Drops stale recency pairs once the queue outgrows the live entry set,
    /// keeping the lazy-LRU bookkeeping O(1) amortized per touch.
    fn compact(inner: &mut CacheInner) {
        if inner.recency.len() <= inner.entries.len().saturating_mul(4).max(64) {
            return;
        }
        let entries = &inner.entries;
        inner.recency.retain(|(id, tick)| entries.get(id).is_some_and(|e| e.tick == *tick));
    }

    /// Removes every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.entries.clear();
        inner.buckets.clear();
        inner.recency.clear();
    }

    /// A consistent snapshot of the cache's counters and occupancy: all
    /// fields are read under one acquisition of the inner lock, so no
    /// concurrent lookup is ever half-reflected — in particular
    /// `hits + misses` is exactly the number of settled lookups and the
    /// hit rate can never exceed 1.0.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            canon_steps: inner.canon_steps,
            canon_searches: inner.canon_searches,
            prekey_skips: inner.prekey_skips,
            snapshot_loads: inner.snapshot_loads,
            snapshot_entries: inner.snapshot_entries,
            snapshot_rejects: inner.snapshot_rejects,
            entries: inner.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Exports the resident entries for snapshotting, in insertion (entry-id)
    /// order — a deterministic order, so saving the same cache state twice
    /// produces byte-identical snapshot files.
    pub(crate) fn export_entries(&self) -> Vec<SnapshotEntry> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let mut ids: Vec<u64> = inner.entries.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .filter(|id| {
                // Weighted aggregate entries stay in memory only: the
                // snapshot format (VERSION 1) persists Boolean shapes, whose
                // fingerprint payload is always zero, and stays stable.
                inner.entries[id].shape.payload.is_none()
            })
            .map(|id| {
                let entry = &inner.entries[id];
                SnapshotEntry {
                    fingerprint: entry.fingerprint,
                    shape: Arc::clone(&entry.shape),
                    canon: entry.canon.clone(),
                    attribution: Arc::clone(&entry.attribution),
                }
            })
            .collect()
    }

    /// Admits one snapshot entry: inserted like a fresh compilation but
    /// counted under `snapshot_entries` instead of `insertions`, and never
    /// evicting — entries beyond the capacity bound are dropped (returns
    /// `false`), so a snapshot written by a larger cache degrades to a
    /// truncated warm start instead of churning the LRU queue.
    pub(crate) fn admit(&self, entry: SnapshotEntry) -> bool {
        debug_assert!(
            entry.attribution.degradation.is_none(),
            "snapshots never carry degraded results"
        );
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.entries.len() >= self.capacity {
            return false;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.insert(
            id,
            CacheEntry {
                fingerprint: entry.fingerprint,
                shape: entry.shape,
                attribution: entry.attribution,
                canon: entry.canon,
                tick,
            },
        );
        inner.buckets.entry(entry.fingerprint).or_default().push(id);
        inner.recency.push_back((id, tick));
        inner.snapshot_entries += 1;
        true
    }

    /// Records the outcome of a snapshot-file load attempt against this
    /// cache's counters.
    pub(crate) fn record_snapshot_load(&self, ok: bool) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if ok {
            inner.snapshot_loads += 1;
        } else {
            inner.snapshot_rejects += 1;
        }
    }

    /// Writes the cache's resident entries to `path` in the versioned binary
    /// snapshot format (see the `persist` module docs). Returns the number of
    /// entries written. The write goes through a sibling temp file renamed
    /// into place, so a crash mid-write never leaves a truncated snapshot at
    /// `path`.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<usize, SnapshotError> {
        crate::persist::save_entries(path.as_ref(), &self.export_entries())
    }

    /// Loads a snapshot written by [`SharedCache::save`] (or
    /// [`ShardedCache::save`]) into this cache, returning the number of
    /// entries admitted. Corrupt, truncated, or version-mismatched files are
    /// rejected with a typed [`SnapshotError`] — the cache is left exactly as
    /// it was (a cold start), never partially loaded, and the rejection is
    /// counted in [`CacheStats::snapshot_rejects`].
    pub fn load(&self, path: impl AsRef<std::path::Path>) -> Result<usize, SnapshotError> {
        let entries = match crate::persist::load_entries(path.as_ref()) {
            Ok(entries) => entries,
            Err(error) => {
                self.record_snapshot_load(false);
                return Err(error);
            }
        };
        let admitted = entries.into_iter().map(|e| self.admit(e)).filter(|&ok| ok).count();
        self.record_snapshot_load(true);
        Ok(admitted)
    }
}

impl fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCache").field("stats", &self.stats()).finish()
    }
}

/// One resident cache entry in transferable form: everything the snapshot
/// format persists — the fingerprint pre-key, the dense shape, the canonical
/// witness when one was paid for, and the dense attribution.
#[derive(Clone, Debug)]
pub(crate) struct SnapshotEntry {
    pub(crate) fingerprint: Fingerprint,
    pub(crate) shape: Arc<Shape>,
    pub(crate) canon: Option<Arc<CanonInfo>>,
    pub(crate) attribution: Arc<Attribution>,
}

impl CacheStats {
    /// Accumulates another shard's counters into this aggregate (capacities
    /// and entry counts sum alongside the event counters).
    fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.canon_steps += other.canon_steps;
        self.canon_searches += other.canon_searches;
        self.prekey_skips += other.prekey_skips;
        self.snapshot_loads += other.snapshot_loads;
        self.snapshot_entries += other.snapshot_entries;
        self.snapshot_rejects += other.snapshot_rejects;
        self.entries += other.entries;
        self.capacity += other.capacity;
    }
}

/// N independently locked [`SharedCache`] shards behind one cache interface.
///
/// Entries are routed by a deterministic FNV-1a hash of their
/// isomorphism-invariant fingerprint pre-key — every presentation of a lineage
/// shape lands on the same shard (isomorphic lineages share a fingerprint),
/// so sharding never changes *which* lookups hit, only which lock they take.
/// The shard index is process-independent ([`ShardedCache::shard_of`]), so it
/// doubles as the partition function for a multi-process fleet: each process
/// can own a subset of shards instead of duplicating the whole cache.
///
/// The total capacity is split evenly (each shard holds
/// `ceil(capacity / shards)` entries, LRU-evicted per shard), and snapshots
/// ([`ShardedCache::save`] / [`ShardedCache::load`]) are shard-count
/// independent: one file holds every entry, and loading re-routes each entry
/// to whatever shard owns its fingerprint under the *current* shard count.
pub struct ShardedCache {
    shards: Vec<SharedCache>,
}

impl ShardedCache {
    /// A cache of `shards` shards (at least 1) bounded to `capacity` entries
    /// in total (each shard to its even share, at least 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedCache { shards: (0..shards).map(|_| SharedCache::new(per_shard)).collect() }
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The total entry-count bound, summed across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(SharedCache::capacity).sum()
    }

    /// The shard owning `fp`: FNV-1a over the fingerprint's raw fields, mod
    /// the shard count. Deterministic across processes and runs — the fleet
    /// partition function.
    pub(crate) fn shard_index(&self, fp: Fingerprint) -> usize {
        let (num_vars, num_clauses, widths, degrees, payload) = fp.raw_parts();
        let mut hash = 0xcbf2_9ce4_8422_2325_u64;
        let mut eat = |bytes: &[u8]| {
            for &byte in bytes {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&num_vars.to_le_bytes());
        eat(&num_clauses.to_le_bytes());
        eat(&widths.to_le_bytes());
        eat(&degrees.to_le_bytes());
        eat(&payload.to_le_bytes());
        (hash % self.shards.len() as u64) as usize
    }

    /// The shard that serves `lineage` (and every lineage isomorphic to it).
    /// The serving layer reports this index per request so a fleet operator
    /// can see which partition answered.
    pub fn shard_of(&self, lineage: &Dnf) -> usize {
        self.shard_index(Prekeyed::of(lineage).fingerprint)
    }

    fn shard(&self, fp: Fingerprint) -> &SharedCache {
        &self.shards[self.shard_index(fp)]
    }

    /// Routed [`SharedCache::lookup`].
    pub(crate) fn lookup(&self, fp: Fingerprint) -> Lookup {
        self.shard(fp).lookup(fp)
    }

    /// Routed [`SharedCache::finish_lookup`].
    pub(crate) fn finish_lookup(
        &self,
        fp: Fingerprint,
        key: &CanonicalKey,
        resolved: &[(u64, Arc<CanonInfo>)],
    ) -> Option<CacheHit> {
        self.shard(fp).finish_lookup(fp, key, resolved)
    }

    /// Routed [`SharedCache::insert`].
    pub(crate) fn insert(
        &self,
        fp: Fingerprint,
        shape: &Arc<Shape>,
        canon: Option<Arc<CanonInfo>>,
        attribution: Arc<Attribution>,
    ) {
        self.shard(fp).insert(fp, shape, canon, attribution);
    }

    /// Routed [`SharedCache::peek`].
    pub(crate) fn peek(&self, fp: Fingerprint) -> Vec<Resident> {
        self.shard(fp).peek(fp)
    }

    /// Records canonicalization telemetry. The work is engine-wide (one
    /// session call spans many fingerprints), so it is recorded on shard 0
    /// and reported through the aggregate [`ShardedCache::stats`].
    pub(crate) fn record_canon(&self, steps: u64, searches: u64, skips: u64) {
        self.shards[0].record_canon(steps, searches, skips);
    }

    /// Removes every entry from every shard (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.clear();
        }
    }

    /// The aggregate counters: every field summed across shards (each
    /// shard's snapshot is internally consistent; a miss and the hit that
    /// follows it for the same shape always land on the same shard, so the
    /// summed hit rate never exceeds 1.0 either).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.accumulate(&shard.stats());
        }
        total
    }

    /// Per-shard counter snapshots, in shard-index order. Hits, misses,
    /// insertions, evictions, and occupancy are genuinely per-shard;
    /// engine-wide telemetry (canonicalization work, snapshot-file loads and
    /// rejects) is recorded on shard 0.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(SharedCache::stats).collect()
    }

    /// Writes every shard's resident entries to one snapshot file (shard
    /// order, then insertion order — deterministic). Returns the number of
    /// entries written. The snapshot is shard-count independent: any engine
    /// can load it, whatever its shard count.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<usize, SnapshotError> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.export_entries());
        }
        crate::persist::save_entries(path.as_ref(), &entries)
    }

    /// Loads a snapshot, routing each entry to the shard that owns its
    /// fingerprint under *this* cache's shard count. Returns the number of
    /// entries admitted (a shard at capacity drops its excess). Corrupt or
    /// version-mismatched files are rejected with a typed [`SnapshotError`],
    /// counted in [`CacheStats::snapshot_rejects`], and leave every shard
    /// untouched — a cold start, never a partial load.
    pub fn load(&self, path: impl AsRef<std::path::Path>) -> Result<usize, SnapshotError> {
        let entries = match crate::persist::load_entries(path.as_ref()) {
            Ok(entries) => entries,
            Err(error) => {
                self.shards[0].record_snapshot_load(false);
                return Err(error);
            }
        };
        let admitted = entries
            .into_iter()
            .map(|e| self.shard(e.fingerprint).admit(e))
            .filter(|&ok| ok)
            .count();
        self.shards[0].record_snapshot_load(true);
        Ok(admitted)
    }
}

impl fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Computes the full canonical key of `lineage` — dense renaming,
/// fingerprint, and the individualization search — and returns the
/// refinement steps spent. A benchmarking probe for the keying cost; not
/// used on the serving path.
pub fn canonical_key_probe(lineage: &Dnf) -> u64 {
    let prekeyed = Prekeyed::of(lineage);
    let (_, steps) = prekeyed.shape.canonicalize();
    steps
}

/// Computes only the fingerprint pre-key of `lineage` (the work a
/// vacant-bucket lookup pays) and returns a digest of it so the computation
/// cannot be optimized away. A benchmarking probe.
pub fn prekey_probe(lineage: &Dnf) -> u64 {
    use std::hash::{Hash, Hasher};
    let prekeyed = Prekeyed::of(lineage);
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    prekeyed.fingerprint.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::EngineStats;
    use banzhaf_arith::Natural;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn dummy_attribution(tag: u64) -> Arc<Attribution> {
        Arc::new(Attribution {
            algorithm: "test",
            values: [(v(0), Score::Exact(Natural::from(tag)))].into_iter().collect(),
            model_count: None,
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            stats: EngineStats::default(),
            degradation: None,
        })
    }

    fn prekeyed_of(clauses: Vec<Vec<u32>>) -> Prekeyed {
        let clauses: Vec<Vec<Var>> =
            clauses.into_iter().map(|c| c.into_iter().map(Var).collect()).collect();
        Prekeyed::of(&Dnf::from_clauses(clauses))
    }

    /// Runs the full two-phase lookup protocol the session uses: fingerprint
    /// first; on contention canonicalize the probe and any unkeyed
    /// residents, then settle.
    fn probe(cache: &SharedCache, p: &Prekeyed) -> Option<CacheHit> {
        match cache.lookup(p.fingerprint) {
            Lookup::Vacant => None,
            Lookup::Occupied(residents) => {
                let (mine, _) = p.shape.canonicalize();
                let resolved: Vec<(u64, Arc<CanonInfo>)> = residents
                    .iter()
                    .filter(|r| r.canon.is_none())
                    .map(|r| (r.id, Arc::new(r.shape.canonicalize().0)))
                    .collect();
                cache.finish_lookup(p.fingerprint, &mine.key, &resolved)
            }
        }
    }

    fn insert(cache: &SharedCache, p: &Prekeyed, tag: u64) {
        cache.insert(p.fingerprint, &p.shape, None, dummy_attribution(tag));
    }

    /// A presentation-keyed attribution for a 3-path: the middle variable
    /// (degree 2) scores 100, the leaves 1 — asymmetric on purpose, so a
    /// stale canonical witness composed with another presentation's values
    /// is detectable.
    fn path3_attribution(p: &Prekeyed) -> Arc<Attribution> {
        let mut degree: HashMap<u32, usize> = HashMap::new();
        for clause in &p.shape.clauses {
            for &var in clause {
                *degree.entry(var).or_default() += 1;
            }
        }
        let values = degree
            .into_iter()
            .map(|(i, d)| (Var(i), Score::Exact(Natural::from(if d == 2 { 100u64 } else { 1 }))))
            .collect();
        Arc::new(Attribution {
            algorithm: "test",
            values,
            model_count: None,
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            stats: EngineStats::default(),
            degradation: None,
        })
    }

    /// The original fact holding the middle (degree-2) position of a 3-path.
    fn path3_middle(p: &Prekeyed) -> Var {
        let mut degree: HashMap<u32, usize> = HashMap::new();
        for clause in &p.shape.clauses {
            for &var in clause {
                *degree.entry(var).or_default() += 1;
            }
        }
        let dense = degree.into_iter().find(|&(_, d)| d == 2).expect("3-path has a middle").0;
        p.originals[dense as usize]
    }

    #[test]
    fn lru_evicts_the_least_recently_used_shape() {
        let cache = SharedCache::new(2);
        let a = prekeyed_of(vec![vec![0]]);
        let b = prekeyed_of(vec![vec![0, 1]]);
        let c = prekeyed_of(vec![vec![0, 1, 2]]);
        insert(&cache, &a, 1);
        insert(&cache, &b, 2);
        // Touch `a` so `b` is the LRU victim.
        assert!(probe(&cache, &a).is_some());
        insert(&cache, &c, 3);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(probe(&cache, &a).is_some(), "recently touched entry survives");
        assert!(probe(&cache, &b).is_none(), "LRU entry was evicted");
        assert!(probe(&cache, &c).is_some());
    }

    #[test]
    fn counters_track_hits_misses_and_insertions() {
        let cache = SharedCache::new(8);
        let p = prekeyed_of(vec![vec![0, 1]]);
        assert!(probe(&cache, &p).is_none());
        insert(&cache, &p, 7);
        assert!(probe(&cache, &p).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions, stats.evictions), (1, 1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Canonicalization telemetry flows through `record_canon`.
        cache.record_canon(5, 2, 1);
        let stats = cache.stats();
        assert_eq!((stats.canon_steps, stats.canon_searches, stats.prekey_skips), (5, 2, 1));
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let cache = SharedCache::new(4);
        let p = prekeyed_of(vec![vec![0]]);
        insert(&cache, &p, 1);
        for _ in 0..10_000 {
            assert!(probe(&cache, &p).is_some());
        }
        let inner = cache.inner.lock().unwrap();
        assert!(
            inner.recency.len() <= 64 + 4,
            "lazy LRU queue must be compacted, got {}",
            inner.recency.len()
        );
    }

    #[test]
    fn concurrent_sessions_share_entries() {
        let cache = std::sync::Arc::new(SharedCache::new(16));
        let p = prekeyed_of(vec![vec![0, 1, 2]]);
        insert(&cache, &p, 9);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        assert!(probe(&cache, &p).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 400);
    }

    #[test]
    fn snapshots_are_consistent_under_concurrent_lookups() {
        // Every worker alternates a guaranteed miss with a guaranteed hit —
        // miss first — so at any *consistent* point in time hits ≤ misses.
        // With the old torn snapshot (each counter its own relaxed atomic,
        // bumped after the lock was dropped) a reader could observe the hit
        // of a pair whose miss was still unrecorded and see hits > misses,
        // i.e. transient hit rates above their true value (and, with more
        // workers than pairs, above 1.0).
        let cache = SharedCache::new(8);
        let present = prekeyed_of(vec![vec![0, 1]]);
        let missing = prekeyed_of(vec![vec![0, 1, 2, 3]]);
        insert(&cache, &present, 1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..2_000 {
                        assert!(probe(&cache, &missing).is_none());
                        assert!(probe(&cache, &present).is_some());
                    }
                });
            }
            for _ in 0..5_000 {
                let stats = cache.stats();
                assert!(
                    stats.hits <= stats.misses,
                    "torn snapshot: {} hits vs {} misses",
                    stats.hits,
                    stats.misses
                );
                assert!(stats.hit_rate() <= 1.0);
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 8_000);
        assert_eq!(stats.misses, 8_000);
    }

    #[test]
    fn relabelled_lineages_share_one_key_and_shapes_key_apart() {
        // First-occurrence renaming keyed the 3-path by which variable held
        // the middle label ({x,y} ∨ {y,z} vs {y,x} ∨ {y,z}): one
        // isomorphism class, two keys, a spurious miss. The
        // refinement-based key identifies every labelling...
        let middle_mid = prekeyed_of(vec![vec![0, 1], vec![1, 2]]);
        let middle_large = prekeyed_of(vec![vec![9, 0], vec![9, 1]]);
        let middle_small = prekeyed_of(vec![vec![0, 1], vec![0, 2]]);
        assert_eq!(middle_mid.fingerprint, middle_large.fingerprint);
        let (mid, steps) = middle_mid.shape.canonicalize();
        let (large, _) = middle_large.shape.canonicalize();
        let (small, _) = middle_small.shape.canonicalize();
        assert_eq!(mid.key, large.key, "isomorphic lineages must key equal");
        assert_eq!(mid.key, small.key, "isomorphic lineages must key equal");
        assert!(steps > 0);
        // ...while non-isomorphic shapes (different model counts) stay apart.
        let path4 = prekeyed_of(vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let star4 = prekeyed_of(vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        assert_ne!(
            path4.shape.canonicalize().0.key,
            star4.shape.canonicalize().0.key,
            "non-isomorphic shapes must key apart"
        );
        // The path and the star already separate on the cheap pre-key (their
        // degree multisets differ), so a cache holding one never pays a
        // search when the other arrives.
        assert_ne!(path4.fingerprint, star4.fingerprint);
    }

    #[test]
    fn shared_fingerprint_shapes_occupy_separate_entries_via_lazy_canonicalization() {
        // Two triangles vs a hexagon: the classic 1-WL-equivalent pair
        // shares a fingerprint (equal counts, widths, degrees), so the
        // second arrival forces the lazy canonicalization of both — and the
        // exact keys must keep the entries apart.
        let triangles = prekeyed_of(vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 0],
            vec![3, 4],
            vec![4, 5],
            vec![5, 3],
        ]);
        let hexagon = prekeyed_of(vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![5, 0],
        ]);
        assert_eq!(triangles.fingerprint, hexagon.fingerprint);
        let cache = SharedCache::new(8);
        assert!(probe(&cache, &triangles).is_none());
        insert(&cache, &triangles, 1);
        {
            // The first insert is lazy: no witness computed yet.
            let inner = cache.inner.lock().unwrap();
            assert!(inner.entries.values().all(|e| e.canon.is_none()));
        }
        // The hexagon contests the bucket, canonicalizes both shapes, and
        // still misses — non-isomorphic shapes are never served across.
        assert!(probe(&cache, &hexagon).is_none());
        insert(&cache, &hexagon, 2);
        assert_eq!(cache.stats().entries, 2, "colliding fingerprints keep separate entries");
        // Each shape now hits its own entry, with its own values.
        let t = probe(&cache, &triangles).expect("triangles hit their entry");
        let h = probe(&cache, &hexagon).expect("hexagon hits its entry");
        assert_eq!(t.attribution.values[&v(0)].exact(), Some(Natural::from(1u64)));
        assert_eq!(h.attribution.values[&v(0)].exact(), Some(Natural::from(2u64)));
        // A relabelled copy of the triangles still lands on the triangles'
        // entry (and transfers values through the composed witnesses).
        let relabelled = prekeyed_of(vec![
            vec![5, 3],
            vec![3, 1],
            vec![1, 5],
            vec![0, 2],
            vec![2, 4],
            vec![4, 0],
        ]);
        let r = probe(&cache, &relabelled).expect("relabelled triangles hit");
        assert_eq!(r.attribution.values[&v(0)].exact(), Some(Natural::from(1u64)));
    }

    #[test]
    fn cross_presentation_reinsert_replaces_shape_and_witness_together() {
        // Two sessions race isomorphic 3-paths through *different dense
        // presentations* of a contested bucket: both carry a witness, and
        // the second insert matches the first by canonical key. The entry
        // must stay internally consistent — shape, witness and attribution
        // all in the last writer's presentation — or later hits compose the
        // first writer's stale witness with the second writer's values and
        // silently misattribute the middle variable.
        let a = prekeyed_of(vec![vec![0, 1], vec![1, 2]]); // middle at dense 1
        let b = prekeyed_of(vec![vec![0, 1], vec![0, 2]]); // middle at dense 0
        assert_ne!(*a.shape, *b.shape, "the presentations must differ");
        let (ca, _) = a.shape.canonicalize();
        let (cb, _) = b.shape.canonicalize();
        assert_eq!(ca.key, cb.key, "isomorphic shapes share one canonical key");
        let cache = SharedCache::new(8);
        cache.insert(a.fingerprint, &a.shape, Some(Arc::new(ca)), path3_attribution(&a));
        cache.insert(b.fingerprint, &b.shape, Some(Arc::new(cb)), path3_attribution(&b));
        assert_eq!(cache.stats().entries, 1, "equal canonical keys share one entry");
        // A third labelling hits the entry and maps the values back through
        // the composed witnesses: the middle fact must carry the middle
        // score regardless of which writer landed last.
        let c = prekeyed_of(vec![vec![7, 3], vec![3, 9]]); // middle fact: 3
        let (mine, _) = c.shape.canonicalize();
        let hit = probe(&cache, &c).expect("isomorphic probe hits the shared entry");
        let mapped = c.map_back_via(&mine, &hit.canon, &hit.attribution);
        assert_eq!(mapped.values[&v(3)].exact(), Some(Natural::from(100u64)));
        assert_eq!(mapped.values[&v(7)].exact(), Some(Natural::from(1u64)));
        assert_eq!(mapped.values[&v(9)].exact(), Some(Natural::from(1u64)));
    }

    #[test]
    fn concurrent_cross_presentation_inserts_never_corrupt_the_entry() {
        // The racy version of the scenario above: two threads repeatedly
        // insert the two presentations (each with its own witness, as serve
        // workers missing a contested bucket would) while verifying every
        // hit they observe. Any interleaving that leaves the entry's witness
        // and attribution in different presentations trips the middle-score
        // assertion.
        let cache = SharedCache::new(8);
        let presentations =
            [prekeyed_of(vec![vec![0, 1], vec![1, 2]]), prekeyed_of(vec![vec![0, 1], vec![0, 2]])];
        let cache = &cache;
        std::thread::scope(|scope| {
            for p in &presentations {
                scope.spawn(move || {
                    let mine = Arc::new(p.shape.canonicalize().0);
                    let middle = path3_middle(p);
                    for _ in 0..500 {
                        cache.insert(
                            p.fingerprint,
                            &p.shape,
                            Some(Arc::clone(&mine)),
                            path3_attribution(p),
                        );
                        if let Some(hit) = probe(cache, p) {
                            let mapped = p.map_back_via(&mine, &hit.canon, &hit.attribution);
                            assert_eq!(
                                mapped.values[&middle].exact(),
                                Some(Natural::from(100u64)),
                                "stale witness composed with another presentation's values"
                            );
                        }
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 1, "equal canonical keys share one entry");
    }

    #[test]
    fn dense_dnf_is_isomorphic_to_the_input() {
        // The backend runs the dense presentation; it must be the same
        // function modulo renaming — model counts are renaming-invariant.
        let phi = Dnf::from_clauses(vec![vec![v(7), v(2)], vec![v(2), v(5)], vec![v(9)]]);
        let prekeyed = Prekeyed::of(&phi);
        assert_eq!(
            phi.brute_force_model_count(),
            prekeyed.dnf.brute_force_model_count(),
            "dense renaming must preserve the function"
        );
        assert_eq!(prekeyed.dnf.num_vars(), phi.num_vars());
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = SharedCache::new(4);
        let p = prekeyed_of(vec![vec![0]]);
        insert(&cache, &p, 1);
        assert!(probe(&cache, &p).is_some());
        cache.clear();
        assert!(probe(&cache, &p).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.insertions, 1);
    }

    fn weighted_of(kind: AggregateKind, clauses: Vec<(Vec<u32>, i64)>) -> Prekeyed {
        let lineage = WeightedDnf::from_weighted_clauses(
            kind,
            clauses
                .into_iter()
                .map(|(c, w)| (c.into_iter().map(Var).collect::<Vec<Var>>(), Rational::from(w))),
        );
        Prekeyed::of_weighted(&lineage)
    }

    #[test]
    fn weighted_lineages_key_apart_from_their_boolean_skeleton() {
        let boolean = prekeyed_of(vec![vec![0, 1], vec![1, 2]]);
        let weighted = weighted_of(AggregateKind::Sum, vec![(vec![0, 1], 3), (vec![1, 2], 5)]);
        // Even the cheap pre-key separates them: Boolean payload is 0,
        // weighted payloads never are.
        assert_ne!(boolean.fingerprint, weighted.fingerprint);
        let cache = SharedCache::new(8);
        insert(&cache, &boolean, 1);
        assert!(probe(&cache, &weighted).is_none(), "weighted probe must not hit a Boolean entry");
        insert(&cache, &weighted, 2);
        assert_eq!(cache.stats().entries, 2);
        assert!(probe(&cache, &boolean).is_some());
        assert!(probe(&cache, &weighted).is_some());
    }

    #[test]
    fn different_kinds_or_weights_occupy_separate_entries() {
        let sum = weighted_of(AggregateKind::Sum, vec![(vec![0, 1], 3), (vec![1, 2], 5)]);
        let count = weighted_of(AggregateKind::Count, vec![(vec![0, 1], 3), (vec![1, 2], 5)]);
        let other = weighted_of(AggregateKind::Sum, vec![(vec![0, 1], 3), (vec![1, 2], 7)]);
        assert_ne!(sum.fingerprint, count.fingerprint, "kind is part of the pre-key");
        assert_ne!(sum.fingerprint, other.fingerprint, "weights are part of the pre-key");
        let cache = SharedCache::new(8);
        insert(&cache, &sum, 1);
        assert!(probe(&cache, &count).is_none(), "a SUM lineage never serves a COUNT hit");
        assert!(probe(&cache, &other).is_none(), "different weights never share a hit");
        insert(&cache, &count, 2);
        insert(&cache, &other, 3);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn isomorphic_weighted_lineages_share_one_entry() {
        // The same weighted 3-path under two labellings — the weight must
        // follow its clause through the renaming for the keys to agree.
        let a = weighted_of(AggregateKind::Max, vec![(vec![0, 1], 2), (vec![1, 2], 9)]);
        let b = weighted_of(AggregateKind::Max, vec![(vec![7, 3], 9), (vec![3, 9], 2)]);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.shape.canonicalize().0.key, b.shape.canonicalize().0.key);
        let cache = SharedCache::new(8);
        insert(&cache, &a, 1);
        assert!(probe(&cache, &b).is_some(), "isomorphic weighted lineages share an entry");
        // Swapping the two weights *also* shares the entry — the 3-path's
        // reflection is a genuine weighted isomorphism carrying each weight
        // to its clause's image, so the swap is a relabelling in disguise.
        let swapped = weighted_of(AggregateKind::Max, vec![(vec![0, 1], 9), (vec![1, 2], 2)]);
        assert_eq!(a.shape.canonicalize().0.key, swapped.shape.canonicalize().0.key);
        assert!(probe(&cache, &swapped).is_some(), "the reflected 3-path is the same function");
        // On a skeleton whose automorphisms can NOT realize the move — the
        // 4-path, whose only symmetry is the reflection fixing the middle —
        // shifting the odd weight from the middle clause to an end clause
        // is a different weighted function and must key apart. The pre-key
        // cannot see the difference (equal width, degree, and
        // (width, weight) multisets), so this resolves at the canonical key.
        let middle = weighted_of(
            AggregateKind::Max,
            vec![(vec![0, 1], 2), (vec![1, 2], 9), (vec![2, 3], 2)],
        );
        let end = weighted_of(
            AggregateKind::Max,
            vec![(vec![0, 1], 9), (vec![1, 2], 2), (vec![2, 3], 2)],
        );
        assert_eq!(middle.fingerprint, end.fingerprint);
        assert_ne!(middle.shape.canonicalize().0.key, end.shape.canonicalize().0.key);
        insert(&cache, &middle, 2);
        assert!(probe(&cache, &end).is_none(), "weight placement distinguishes entries");
    }

    #[test]
    fn weighted_entries_stay_out_of_snapshots() {
        let cache = SharedCache::new(8);
        let boolean = prekeyed_of(vec![vec![0, 1]]);
        let weighted = weighted_of(AggregateKind::Count, vec![(vec![0, 1], 1)]);
        insert(&cache, &boolean, 1);
        insert(&cache, &weighted, 2);
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 1, "only the Boolean entry is persisted");
        assert!(exported[0].shape.payload.is_none());
    }

    #[test]
    fn dense_weighted_lineage_preserves_the_aggregate() {
        // The backend runs the dense weighted presentation; its Banzhaf
        // values must be those of the original modulo renaming.
        let lineage = WeightedDnf::from_weighted_clauses(
            AggregateKind::Sum,
            vec![
                (vec![Var(7), Var(2)], Rational::from(3i64)),
                (vec![Var(2), Var(5)], Rational::from(5i64)),
            ],
        );
        let prekeyed = Prekeyed::of_weighted(&lineage);
        let dense = prekeyed.weighted.as_ref().expect("weighted lookup keeps the dense lineage");
        assert_eq!(dense.kind(), AggregateKind::Sum);
        assert_eq!(dense.num_vars(), lineage.num_vars());
        for (dense_var, original_var) in prekeyed.originals.iter().enumerate() {
            assert_eq!(
                dense.brute_force_aggregate_banzhaf(Var(dense_var as u32)),
                lineage.brute_force_aggregate_banzhaf(*original_var),
                "dense renaming must preserve per-fact aggregate Banzhaf values"
            );
        }
    }
}
