//! The single configuration type replacing the per-call option structs.

use crate::attributor::Attributor;
use crate::registry::{backend, first_with, Precision};
use banzhaf::{Budget, PivotHeuristic};
use banzhaf_arith::Ratio;
use banzhaf_par::ThreadPool;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// The attribution algorithm an [`crate::Engine`] dispatches to.
///
/// The first three are the paper's contributions, the last three the
/// baselines it compares against; all of them sit behind the same
/// [`Attributor`] interface.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Algorithm {
    /// ExaBan — exact values over a fully compiled d-tree (Fig. 1).
    ExaBan,
    /// AdaBan — anytime deterministic ε-approximation (Fig. 3).
    AdaBan,
    /// IchiBan — ranking/top-k by interval separation (Sec. 4.1).
    IchiBan,
    /// The Sig22 exact baseline (CNF encoding + DPLL compilation).
    Sig22,
    /// Monte Carlo estimation (randomized, no deterministic guarantee).
    MonteCarlo,
    /// The CNF-proxy ranking heuristic (linear time, no guarantee).
    CnfProxy,
}

impl Algorithm {
    /// Every algorithm the engine knows, in the paper's presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::ExaBan,
        Algorithm::AdaBan,
        Algorithm::IchiBan,
        Algorithm::Sig22,
        Algorithm::MonteCarlo,
        Algorithm::CnfProxy,
    ];

    /// `true` iff the backend is a deterministic function of the lineage, so
    /// its results may be transferred between isomorphic lineages by the
    /// session cache. Monte Carlo is excluded: its RNG advances across calls,
    /// so serving one lineage's samples for another would silently correlate
    /// estimates that are supposed to be independent. Delegates to the
    /// algorithm's [`crate::Backend`] descriptor.
    pub fn cacheable(self) -> bool {
        backend(self).cacheable
    }

    /// The short display name used in reports (from the algorithm's
    /// [`crate::Backend`] descriptor).
    pub fn name(self) -> &'static str {
        backend(self).name
    }

    /// `true` iff the backend attributes weighted aggregate lineages (from
    /// the algorithm's [`crate::Backend`] descriptor).
    pub fn supports_aggregates(self) -> bool {
        backend(self).aggregates
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rung of a degradation ladder: the fallback algorithm plus the budget
/// it may spend re-attributing a lineage the primary algorithm failed on.
///
/// The rung's wall-clock allowance is whatever remains of the request's
/// deadline, but never less than `grace` — the final (estimate) rung must be
/// able to produce *something* even when the deadline has already passed,
/// which is what turns a hard timeout into a degraded answer instead of an
/// error.
#[derive(Clone, Copy, Debug)]
pub struct Rung {
    /// The fallback algorithm this rung runs.
    pub algorithm: Algorithm,
    /// Step cap for this rung (`None` = limited only by wall clock).
    pub max_steps: Option<u64>,
    /// Minimum wall-clock allowance, even past the request deadline.
    pub grace: Duration,
}

impl Rung {
    /// A rung running `algorithm` with the default 50 ms grace allowance.
    pub fn new(algorithm: Algorithm) -> Self {
        Rung { algorithm, max_steps: None, grace: Duration::from_millis(50) }
    }

    /// Sets the rung's step cap.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the rung's minimum wall-clock allowance.
    pub fn with_grace(mut self, grace: Duration) -> Self {
        self.grace = grace;
        self
    }
}

/// What a session does when the primary attributor exhausts its budget (or,
/// under a ladder, panics mid-compile).
///
/// The default is [`FallbackPolicy::Strict`]: budget exhaustion surfaces as
/// an interruption error exactly as it always has, keeping results
/// bit-identical across configurations. [`FallbackPolicy::Ladder`] instead
/// re-attributes the *same canonical lineage* on each rung in turn —
/// typically exact → certified interval → point estimate — so overload
/// degrades answer precision instead of availability. Degraded results carry
/// a [`crate::Degradation`] record and are never inserted into the shared
/// cache (they reflect a budget, not the lineage).
#[derive(Clone, Debug, Default)]
pub enum FallbackPolicy {
    /// Fail with `Interrupted` when the budget runs out (the default).
    #[default]
    Strict,
    /// Walk these rungs in order until one produces a result.
    Ladder(Vec<Rung>),
}

impl FallbackPolicy {
    /// The standard ladder, assembled from the backend registry by
    /// capability: the first certified-interval backend, then the first
    /// point-estimate backend as the rung of last resort (its cost is linear
    /// in samples, so it always lands within the grace allowance). Adding an
    /// interval or estimate backend to the registry re-ranks the ladder with
    /// no change here.
    pub fn ladder() -> Self {
        let rungs = [Precision::Interval, Precision::Estimate]
            .into_iter()
            .filter_map(|precision| first_with(precision, false))
            .map(|b| Rung::new(b.algorithm))
            .collect();
        FallbackPolicy::Ladder(rungs)
    }

    /// `true` iff this is the strict (fail-on-exhaustion) policy.
    pub fn is_strict(&self) -> bool {
        matches!(self, FallbackPolicy::Strict)
    }

    /// The ladder's rungs (empty under [`FallbackPolicy::Strict`]).
    pub fn rungs(&self) -> &[Rung] {
        match self {
            FallbackPolicy::Strict => &[],
            FallbackPolicy::Ladder(rungs) => rungs,
        }
    }
}

/// Configuration of the engine's shared attribution cache: whether it is on,
/// how many entries it holds, how many independently locked shards it is
/// split across, and an optional warm-start snapshot path.
///
/// Non-exhaustive by design, like [`crate::BatchOptions`]: construct with
/// [`CacheConfig::new`] (or [`CacheConfig::disabled`]) and refine through the
/// `with_*` builders, so new knobs never break callers. Attach to an engine
/// with [`EngineConfig::with_cache_config`]:
///
/// ```
/// use banzhaf_engine::{CacheConfig, EngineConfig};
///
/// let config = EngineConfig::default()
///     .with_cache_config(CacheConfig::new().with_capacity(4096).with_shards(4));
/// assert!(config.cache.enabled);
/// assert_eq!(config.cache.shards, 4);
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CacheConfig {
    /// Enable the engine-level shared attribution cache keyed by canonical
    /// lineage. Only applies to deterministic backends
    /// ([`Algorithm::cacheable`]); the randomized Monte Carlo baseline always
    /// resamples.
    pub enabled: bool,
    /// Total entry-count bound across all shards; least recently used shapes
    /// are evicted beyond it (per shard — each shard is bounded to its share
    /// `ceil(capacity / shards)`). The default (1024) keeps worst-case memory
    /// modest while covering the repeated-shape rate of the synthetic corpora
    /// many times over.
    pub capacity: usize,
    /// Number of independently locked cache shards (at least 1). Entries are
    /// routed by a deterministic hash of their isomorphism-invariant
    /// fingerprint, so the shard index doubles as the partition function for
    /// a multi-process fleet. Results are bit-identical at every shard count;
    /// more shards only cut lock contention (and partition eviction).
    pub shards: usize,
    /// Warm-start snapshot path. When set, [`crate::Engine::new`] loads the
    /// snapshot (a corrupt or version-mismatched file is rejected with a
    /// typed error, counted in `snapshot_rejects`, and the engine starts
    /// cold), and the last clone of the engine writes the cache back to the
    /// same path on drop. [`crate::Engine::save_cache`] saves on demand.
    pub warm_start: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { enabled: true, capacity: 1024, shards: 1, warm_start: None }
    }
}

impl CacheConfig {
    /// The default cache configuration: enabled, 1024 entries, one shard, no
    /// warm-start snapshot.
    pub fn new() -> Self {
        CacheConfig::default()
    }

    /// A configuration with the cache disabled (every attribution compiles).
    pub fn disabled() -> Self {
        CacheConfig { enabled: false, ..CacheConfig::default() }
    }

    /// Enables or disables the cache.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Bounds the cache to `capacity` entries in total (LRU eviction beyond).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Splits the cache across `shards` independently locked shards
    /// (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the warm-start snapshot path (loaded at engine construction,
    /// written back when the last engine clone drops).
    pub fn with_warm_start(mut self, path: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }
}

/// Configuration of the attribution pipeline: algorithm choice, compilation
/// heuristic, approximation and budget parameters, and engine features
/// (caching, Shapley values).
///
/// One `EngineConfig` replaces the per-call option structs
/// (`AdaBanOptions`, `IchiBanOptions`, `McOptions`) previously threaded
/// through every caller; [`EngineConfig::attributor`] turns it into a
/// ready-to-run [`Attributor`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Which algorithm to dispatch to.
    pub algorithm: Algorithm,
    /// Shannon pivot-selection heuristic for d-tree compilation.
    pub heuristic: PivotHeuristic,
    /// Relative error ε for the approximate algorithms. `None` requests the
    /// exact/certain mode (AdaBan with ε = 0, IchiBan's certain top-k).
    pub epsilon: Option<Ratio>,
    /// Per-attribution wall-clock timeout (`None` = unbounded).
    pub timeout: Option<Duration>,
    /// Per-attribution cap on decomposition steps (`None` = unbounded).
    pub max_steps: Option<u64>,
    /// Monte Carlo samples per variable (the paper's `MC50#vars` is 50).
    pub mc_samples_per_var: u64,
    /// RNG seed for the randomized baseline.
    pub seed: u64,
    /// AdaBan's lazy bound recomputation (optimization (1) of Sec. 3.2.4).
    pub lazy_bounds: bool,
    /// AdaBan/IchiBan's tighter leaf bounds (optimization (4)).
    pub opt4: bool,
    /// The shared attribution cache: enablement, capacity, shard count, and
    /// warm-start snapshot (see [`CacheConfig`]). Replaces the old flat
    /// `cache: bool` / `cache_capacity: usize` knobs.
    pub cache: CacheConfig,
    /// Also compute exact Shapley values (exact backends only), reusing the
    /// d-tree compiled for the Banzhaf pass.
    pub include_shapley: bool,
    /// Worker threads for batch attribution (`Session::attribute_batch`,
    /// `Session::explain`) and for the Monte Carlo sampling loops. `1` (the
    /// default) runs everything on the calling thread; `0` means one worker
    /// per available CPU. Results are bit-identical at every thread count
    /// under step-cap or unlimited budgets; wall-clock deadlines remain
    /// inherently timing-dependent (contending workers can shift which
    /// borderline instances finish in time).
    pub threads: usize,
    /// What to do when the primary attributor exhausts its budget: fail
    /// strictly (the default, preserving bit-identical behaviour) or degrade
    /// down a ladder of cheaper rungs (see [`FallbackPolicy`]).
    pub fallback: FallbackPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            algorithm: Algorithm::ExaBan,
            heuristic: PivotHeuristic::MostFrequent,
            epsilon: Some(Ratio::from_u64(1, 10)),
            timeout: None,
            max_steps: None,
            mc_samples_per_var: 50,
            seed: 0xBA27AF,
            lazy_bounds: true,
            opt4: true,
            cache: CacheConfig::default(),
            include_shapley: false,
            threads: 1,
            fallback: FallbackPolicy::Strict,
        }
    }
}

impl EngineConfig {
    /// A default configuration running the given algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        EngineConfig { algorithm, ..EngineConfig::default() }
    }

    /// Sets the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets ε from a decimal string such as `"0.1"`.
    ///
    /// # Panics
    /// Panics if the string is not a valid decimal.
    pub fn with_epsilon_str(mut self, epsilon: &str) -> Self {
        self.epsilon = Some(Ratio::from_decimal_str(epsilon).expect("valid ε"));
        self
    }

    /// Requests the exact/certain mode of the approximate algorithms.
    pub fn certain(mut self) -> Self {
        self.epsilon = None;
        self
    }

    /// Sets the per-attribution wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the pivot heuristic.
    pub fn with_heuristic(mut self, heuristic: PivotHeuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Sets the RNG seed for the randomized baseline.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the whole cache configuration (enablement, capacity, shards,
    /// warm-start snapshot) in one call.
    pub fn with_cache_config(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Enables Shapley values alongside the Banzhaf pass (exact backends).
    pub fn with_shapley(mut self, include: bool) -> Self {
        self.include_shapley = include;
        self
    }

    /// Sets the worker-thread count for batch attribution and Monte Carlo
    /// sampling (`0` = one worker per available CPU).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the budget-exhaustion fallback policy.
    pub fn with_fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.fallback = fallback;
        self
    }

    /// The [`ThreadPool`] this configuration describes.
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads)
    }

    /// A fresh [`Budget`] honouring the configured timeout and step cap.
    pub fn budget(&self) -> Budget {
        Budget::new(self.timeout, self.max_steps)
    }

    /// The configured ε, falling back to 0 (exact) in the certain mode.
    pub fn epsilon_or_exact(&self) -> Ratio {
        self.epsilon.clone().unwrap_or_else(Ratio::zero)
    }

    /// Builds the [`Attributor`] this configuration describes, through the
    /// algorithm's [`crate::Backend`] descriptor — the registry's `build`
    /// function is the only construction site.
    pub fn attributor(&self) -> Box<dyn Attributor> {
        (backend(self.algorithm).build)(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_headline_setting() {
        let config = EngineConfig::default();
        assert_eq!(config.algorithm, Algorithm::ExaBan);
        assert_eq!(config.epsilon_or_exact(), Ratio::from_u64(1, 10));
        assert!(config.cache.enabled);
        assert_eq!(config.cache.capacity, 1024);
        assert_eq!(config.cache.shards, 1);
        assert!(config.cache.warm_start.is_none());
        assert!(config.lazy_bounds && config.opt4);
    }

    #[test]
    fn builder_methods_compose() {
        let config = EngineConfig::new(Algorithm::AdaBan)
            .with_epsilon_str("0.25")
            .with_timeout(Duration::from_millis(5))
            .with_seed(7)
            .with_cache_config(CacheConfig::disabled())
            .with_shapley(true);
        assert_eq!(config.algorithm, Algorithm::AdaBan);
        assert_eq!(config.epsilon_or_exact(), Ratio::from_u64(1, 4));
        assert_eq!(config.timeout, Some(Duration::from_millis(5)));
        assert!(!config.cache.enabled && config.include_shapley);
        // The certain mode drops ε entirely.
        assert!(config.certain().epsilon.is_none());
    }

    #[test]
    fn cache_config_builders_compose() {
        let cache = CacheConfig::new()
            .with_capacity(16)
            .with_shards(0) // clamped to 1
            .with_shards(4)
            .with_warm_start("/tmp/snapshot.bzc");
        assert!(cache.enabled);
        assert_eq!((cache.capacity, cache.shards), (16, 4));
        assert_eq!(cache.warm_start.as_deref(), Some(std::path::Path::new("/tmp/snapshot.bzc")));
        assert!(!CacheConfig::disabled().enabled);
        assert!(!CacheConfig::new().with_enabled(false).enabled);
    }

    #[test]
    fn every_algorithm_builds_an_attributor() {
        for algorithm in Algorithm::ALL {
            let attributor = EngineConfig::new(algorithm).attributor();
            assert_eq!(attributor.name(), algorithm.name());
            assert!(!format!("{algorithm}").is_empty());
        }
    }

    #[test]
    fn standard_ladder_is_assembled_by_capability() {
        let rungs: Vec<Algorithm> =
            FallbackPolicy::ladder().rungs().iter().map(|r| r.algorithm).collect();
        assert_eq!(rungs, vec![Algorithm::AdaBan, Algorithm::MonteCarlo]);
        assert!(FallbackPolicy::Strict.is_strict());
    }
}
