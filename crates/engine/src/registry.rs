//! The backend registry: one declarative descriptor per algorithm.
//!
//! Every attribution backend the engine can dispatch to is described by one
//! [`Backend`] entry in [`REGISTRY`] — its display name, the precision class
//! of its results, which lineage kinds it accepts (Boolean and/or aggregate),
//! whether its results are cacheable, and how to build its [`Attributor`]
//! from an [`EngineConfig`]. Everything that used to `match` on
//! [`Algorithm`] — attributor construction, display names, cache
//! admissibility, the fallback ladder's rung selection — now reads the
//! registry instead, so **adding a backend is one descriptor plus its
//! [`Attributor`] implementation**: sessions, the degradation ladder, the
//! serving layer and the bench harness all pick it up by capability, with no
//! scattered dispatch sites to update.

use crate::attributor::{
    AdaBanAttributor, Attributor, CnfProxyAttributor, ExaBanAttributor, IchiBanAttributor,
    MonteCarloAttributor, Sig22Attributor,
};
use crate::config::{Algorithm, EngineConfig};
use banzhaf::{AdaBanOptions, IchiBanOptions};
use banzhaf_baselines::McOptions;

/// The precision class of a backend's scores — what kind of guarantee a
/// [`crate::Score`] from it carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Precision {
    /// Exact values (`Score::Exact` / `Score::Rational`).
    Exact,
    /// Certified intervals containing the exact value.
    Interval,
    /// Point estimates with no deterministic guarantee.
    Estimate,
}

impl Precision {
    /// The display label used in reports and the README's backend table.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Exact => "exact",
            Precision::Interval => "interval",
            Precision::Estimate => "estimate",
        }
    }
}

/// One attribution backend, declaratively: identity, capabilities, and the
/// constructor mapping an [`EngineConfig`] to a ready-to-run [`Attributor`].
pub struct Backend {
    /// The [`Algorithm`] this descriptor implements.
    pub algorithm: Algorithm,
    /// The short display name (`Algorithm::name` delegates here).
    pub name: &'static str,
    /// The precision class of the backend's scores.
    pub precision: Precision,
    /// `true` iff the backend attributes Boolean (unweighted) lineages.
    pub boolean: bool,
    /// `true` iff the backend attributes weighted aggregate lineages
    /// (COUNT/SUM/MIN/MAX) through [`Attributor::attribute_aggregate`].
    pub aggregates: bool,
    /// `true` iff the backend is a deterministic function of the lineage, so
    /// its results may be transferred between isomorphic lineages by the
    /// shared cache (`Algorithm::cacheable` delegates here).
    pub cacheable: bool,
    /// Builds the backend's [`Attributor`] from an engine configuration.
    pub build: fn(&EngineConfig) -> Box<dyn Attributor>,
}

/// Every backend the engine knows, in [`Algorithm::ALL`] order. The sole
/// source of truth for dispatch: no `match` on [`Algorithm`] exists outside
/// this module.
pub static REGISTRY: &[Backend] = &[
    Backend {
        algorithm: Algorithm::ExaBan,
        name: "ExaBan",
        precision: Precision::Exact,
        boolean: true,
        aggregates: true,
        cacheable: true,
        build: |config| {
            Box::new(ExaBanAttributor {
                heuristic: config.heuristic,
                include_shapley: config.include_shapley,
            })
        },
    },
    Backend {
        algorithm: Algorithm::AdaBan,
        name: "AdaBan",
        precision: Precision::Interval,
        boolean: true,
        aggregates: false,
        cacheable: true,
        build: |config| {
            let mut options = AdaBanOptions::with_epsilon(config.epsilon_or_exact());
            options.heuristic = config.heuristic;
            options.lazy = config.lazy_bounds;
            options.use_opt4 = config.opt4;
            Box::new(AdaBanAttributor { options })
        },
    },
    Backend {
        algorithm: Algorithm::IchiBan,
        name: "IchiBan",
        precision: Precision::Interval,
        boolean: true,
        aggregates: false,
        cacheable: true,
        build: |config| {
            let mut options = match &config.epsilon {
                Some(eps) => IchiBanOptions::with_epsilon(eps.clone()),
                None => IchiBanOptions::certain(),
            };
            options.heuristic = config.heuristic;
            options.use_opt4 = config.opt4;
            Box::new(IchiBanAttributor { options })
        },
    },
    Backend {
        algorithm: Algorithm::Sig22,
        name: "Sig22",
        precision: Precision::Exact,
        boolean: true,
        aggregates: false,
        cacheable: true,
        build: |_| Box::new(Sig22Attributor),
    },
    Backend {
        algorithm: Algorithm::MonteCarlo,
        name: "MC",
        precision: Precision::Estimate,
        boolean: true,
        aggregates: true,
        cacheable: false,
        build: |config| {
            Box::new(
                MonteCarloAttributor::new(
                    McOptions { samples_per_var: config.mc_samples_per_var },
                    config.seed,
                )
                .with_pool(config.pool()),
            )
        },
    },
    Backend {
        algorithm: Algorithm::CnfProxy,
        name: "CNFProxy",
        precision: Precision::Estimate,
        boolean: true,
        aggregates: false,
        cacheable: false,
        build: |_| Box::new(CnfProxyAttributor),
    },
];

/// The registry descriptor of `algorithm`. Looked up by iteration — the
/// registry is tiny and this keeps the descriptor, not an enum `match`, as
/// the single place capabilities live.
pub fn backend(algorithm: Algorithm) -> &'static Backend {
    REGISTRY
        .iter()
        .find(|b| b.algorithm == algorithm)
        .expect("every Algorithm variant has a registry descriptor")
}

/// The first registry backend of the given precision class that accepts
/// aggregate lineages when `aggregates` is set — how the fallback ladder and
/// the session pick rungs by capability instead of by name.
pub fn first_with(precision: Precision, aggregates: bool) -> Option<&'static Backend> {
    REGISTRY.iter().find(|b| b.precision == precision && (!aggregates || b.aggregates))
}

/// Renders the registry as the GitHub-flavoured markdown table embedded in
/// the README's "Backends" section. A test asserts the README copy matches,
/// so the table can never drift from the descriptors.
pub fn markdown_table() -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "| Backend | Precision | Boolean | Aggregates | Cacheable |\n\
         |---------|-----------|---------|------------|-----------|\n",
    );
    for b in REGISTRY {
        let tick = |yes: bool| if yes { "yes" } else { "no" };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            b.name,
            b.precision.label(),
            tick(b.boolean),
            tick(b.aggregates),
            tick(b.cacheable),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_algorithm_in_order() {
        assert_eq!(REGISTRY.len(), Algorithm::ALL.len());
        for (entry, algorithm) in REGISTRY.iter().zip(Algorithm::ALL) {
            assert_eq!(entry.algorithm, algorithm, "registry order matches Algorithm::ALL");
            assert_eq!(backend(algorithm).name, entry.name);
        }
    }

    #[test]
    fn capability_lookup_finds_ladder_rungs() {
        // The Boolean ladder: certified intervals, then a point estimate.
        assert_eq!(first_with(Precision::Interval, false).unwrap().algorithm, Algorithm::AdaBan);
        assert_eq!(
            first_with(Precision::Estimate, false).unwrap().algorithm,
            Algorithm::MonteCarlo
        );
        // The aggregate ladder skips the Boolean-only interval backends.
        assert!(first_with(Precision::Interval, true).is_none());
        assert_eq!(first_with(Precision::Estimate, true).unwrap().algorithm, Algorithm::MonteCarlo);
        // Exact aggregate attribution exists (ExaBan's threshold/closed-form
        // routes).
        assert_eq!(first_with(Precision::Exact, true).unwrap().algorithm, Algorithm::ExaBan);
    }

    #[test]
    fn every_descriptor_builds_its_attributor() {
        for entry in REGISTRY {
            let config = EngineConfig::new(entry.algorithm);
            let attributor = (entry.build)(&config);
            assert_eq!(attributor.name(), entry.name);
        }
    }

    #[test]
    fn markdown_table_lists_every_backend() {
        let table = markdown_table();
        for entry in REGISTRY {
            assert!(table.contains(entry.name), "{} missing from the table", entry.name);
        }
        assert_eq!(table.lines().count(), REGISTRY.len() + 2);
    }

    #[test]
    fn readme_backends_table_matches_the_registry() {
        // Satellite guarantee: the README's "Backends" table is generated
        // from the registry and must never drift from it.
        let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
        let readme = std::fs::read_to_string(readme_path).expect("README.md at the repo root");
        let table = markdown_table();
        assert!(
            readme.contains(&table),
            "README.md 'Backends' table is stale; regenerate it with \
             banzhaf_engine::markdown_table():\n{table}"
        );
    }
}
