//! Order-insensitive canonical forms for lineages.
//!
//! The shared cache keys attributions by a canonical renaming of the lineage.
//! The renaming must be a *canonical form* in the graph-isomorphism sense:
//! two lineages receive the same key **iff** one is a variable bijection of
//! the other (clause order is immaterial — [`banzhaf_boolean::Dnf`] already
//! sorts clauses, but *which* order the sort produces depends on the variable
//! names, which is exactly what a renaming changes).
//!
//! The previous scheme — rename variables to a dense numbering by first
//! occurrence, then sort the renamed clauses — is sound (its key is a true
//! renaming of the input, so equal keys do imply isomorphism) but badly
//! incomplete: the renaming walks the clauses in the order the *original*
//! labels sort them, so a mere relabelling changes the walk and hence the
//! key. The 3-path `{x,y} ∨ {y,z}` keys as `{0,1} ∨ {1,2}` when `x<y<z` but
//! as `{0,1} ∨ {0,2}` when the middle variable carries the smallest label —
//! one isomorphism class, two keys, and a spurious cache miss for every
//! labelling family the first-occurrence walk happens to separate.
//!
//! This module computes a genuinely order-insensitive form in two stages:
//!
//! 1. **Colour refinement** (1-dimensional Weisfeiler–Leman) over the
//!    bipartite clause–variable *incidence graph*: variables and clauses
//!    start with colours derived from their degrees/widths, and every round
//!    recolours each node by the multiset of its neighbours' colours, until
//!    the partition stabilizes. The resulting partition is isomorphism-
//!    invariant and usually fine enough to order most variables outright.
//! 2. **Orbit breaking with backtracking**: while some colour class still
//!    holds several variables, the search *individualizes* each candidate of
//!    the first such class in turn (gives it a fresh colour), re-refines, and
//!    recurses. Each discrete leaf yields one candidate renaming; the
//!    lexicographically smallest renamed clause list over all explored
//!    leaves is the canonical form. Two leaves that produce the *same*
//!    clause list witness an automorphism of the input (the composition of
//!    their renamings); the search accumulates the orbits of the discovered
//!    automorphisms in a union-find and skips cell members already known to
//!    be automorphic images of an explored sibling — *before* paying for
//!    their refinement — which collapses the factorially symmetric cases
//!    (stars, cliques, rings, singleton batteries) to a linear number of
//!    leaves, the same pruning that makes nauty-style canonical labelling
//!    practical.
//!
//! Every leaf is a true renaming of the input, so **equal keys imply
//! isomorphic lineages unconditionally** — soundness does not depend on the
//! search. Completeness (isomorphic lineages ⇒ equal keys) holds whenever
//! the search runs to exhaustion, which it does for every lineage whose
//! refinement-invariant leaf count stays within [`MAX_LEAVES`]; past that
//! cap exploration stops early and two differently-labelled copies of such
//! an (astronomically symmetric) lineage may canonicalize differently and
//! merely miss each other in the cache. In practice the heavily symmetric
//! lineages (rings, stars, grids) are exactly the ones where all leaves are
//! automorphic images of one another, so the first leaf already *is* the
//! canonical form and the cap is unreachable without adversarial input.

/// The canonical form of a lineage presented as dense clause lists.
pub(crate) struct CanonicalForm {
    /// `order[i]` is the input variable assigned canonical index `i`.
    pub(crate) order: Vec<u32>,
    /// The clauses renamed through `order`, each sorted, the list sorted.
    pub(crate) clauses: Vec<Vec<u32>>,
    /// Refinement work performed (node signatures computed), the
    /// canonicalization analogue of `compile_steps`.
    pub(crate) steps: u64,
}

/// Backtracking-leaf budget. Exploration past this many discrete partitions
/// stops with the best form found so far (see the module docs for why this
/// only ever degrades cache hit rate, never correctness).
const MAX_LEAVES: usize = 512;

/// Computes the canonical form of `clauses` over variables `0..num_vars`
/// (variables beyond the clauses' support are degree-0 universe padding and
/// are appended after the used variables in input order — no clause mentions
/// them, so the key does not depend on their order).
pub(crate) fn canonical_form(num_vars: usize, clauses: &[Vec<u32>]) -> CanonicalForm {
    let mut searcher = Searcher::new(num_vars, clauses);
    let initial = searcher.initial_colouring();
    searcher.search(initial);
    let (order, canonical_clauses) =
        searcher.best.expect("the search visits at least one discrete leaf");
    CanonicalForm { order, clauses: canonical_clauses, steps: searcher.steps }
}

/// One colouring of the incidence graph: `colours[node]` plus the number of
/// distinct colours (colour ids are always the contiguous range `0..count`).
#[derive(Clone)]
struct Colouring {
    colours: Vec<u32>,
    count: u32,
}

struct Searcher<'a> {
    num_vars: usize,
    clauses: &'a [Vec<u32>],
    /// Incidence adjacency: nodes `0..num_vars` are variables, nodes
    /// `num_vars..num_vars + clauses.len()` are clauses.
    adjacency: Vec<Vec<u32>>,
    /// Best candidate so far: (variable order, renamed sorted clause list).
    best: Option<(Vec<u32>, Vec<Vec<u32>>)>,
    /// Union-find over variables: two variables share a root iff a
    /// discovered automorphism maps one to the other. Grown lazily as leaves
    /// collide; used to skip automorphic siblings during branching.
    orbit: Vec<u32>,
    leaves: usize,
    steps: u64,
}

impl<'a> Searcher<'a> {
    fn new(num_vars: usize, clauses: &'a [Vec<u32>]) -> Self {
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); num_vars + clauses.len()];
        for (c, clause) in clauses.iter().enumerate() {
            let clause_node = (num_vars + c) as u32;
            for &v in clause {
                adjacency[v as usize].push(clause_node);
                adjacency[clause_node as usize].push(v);
            }
        }
        Searcher {
            num_vars,
            clauses,
            adjacency,
            best: None,
            orbit: (0..num_vars as u32).collect(),
            leaves: 0,
            steps: 0,
        }
    }

    /// Union-find root with path halving.
    fn orbit_root(&mut self, v: u32) -> u32 {
        let mut v = v;
        while self.orbit[v as usize] != v {
            let parent = self.orbit[v as usize];
            self.orbit[v as usize] = self.orbit[parent as usize];
            v = self.orbit[v as usize];
        }
        v
    }

    /// Records that an automorphism maps `a` to `b`.
    fn orbit_union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.orbit_root(a), self.orbit_root(b));
        if ra != rb {
            self.orbit[ra.max(rb) as usize] = ra.min(rb);
        }
    }

    /// The isomorphism-invariant starting partition: variables coloured by
    /// degree (unused universe variables sort after used ones), clauses by
    /// width. Refinement would reach the same split in one round; starting
    /// from it just saves that round.
    fn initial_colouring(&mut self) -> Colouring {
        let signatures: Vec<(u32, u32)> = (0..self.adjacency.len())
            .map(|node| {
                let degree = self.adjacency[node].len() as u32;
                if node < self.num_vars {
                    // Used variables before unused ones, then by degree.
                    (u32::from(degree == 0), degree)
                } else {
                    (2, degree)
                }
            })
            .collect();
        let colouring = self.colour_by_rank(&signatures);
        self.refine(colouring)
    }

    /// Assigns contiguous colour ids by ascending signature rank. The ids are
    /// isomorphism-invariant as long as the signatures are.
    fn colour_by_rank<S: Ord>(&mut self, signatures: &[S]) -> Colouring {
        self.steps += signatures.len() as u64;
        let mut order: Vec<u32> = (0..signatures.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| signatures[a as usize].cmp(&signatures[b as usize]));
        let mut colours = vec![0u32; signatures.len()];
        let mut count = 0u32;
        for pair in 0..order.len() {
            if pair > 0 && signatures[order[pair] as usize] != signatures[order[pair - 1] as usize]
            {
                count += 1;
            }
            colours[order[pair] as usize] = count;
        }
        Colouring { colours, count: count + 1 }
    }

    /// Runs colour refinement to a fixpoint: recolour every node by (its
    /// colour, the sorted colours of its neighbours) until the number of
    /// classes stops growing (classes never merge, so equal counts mean the
    /// partition is stable).
    fn refine(&mut self, mut colouring: Colouring) -> Colouring {
        loop {
            let signatures: Vec<(u32, Vec<u32>)> = self
                .adjacency
                .iter()
                .enumerate()
                .map(|(node, neighbours)| {
                    let mut around: Vec<u32> =
                        neighbours.iter().map(|&n| colouring.colours[n as usize]).collect();
                    around.sort_unstable();
                    (colouring.colours[node], around)
                })
                .collect();
            self.steps += self.adjacency.iter().map(|n| n.len() as u64 + 1).sum::<u64>();
            let refined = self.colour_by_rank(&signatures);
            let stable = refined.count == colouring.count;
            colouring = refined;
            if stable {
                return colouring;
            }
        }
    }

    /// The first (lowest-colour) class holding more than one *used* variable,
    /// if any. Unused universe variables are skipped: no clause mentions
    /// them, so splitting their class cannot change any candidate key.
    fn target_cell(&self, colouring: &Colouring) -> Option<Vec<u32>> {
        let mut cells: Vec<Vec<u32>> = Vec::new();
        let mut by_colour: Vec<Option<usize>> = vec![None; colouring.count as usize];
        for v in 0..self.num_vars as u32 {
            if self.adjacency[v as usize].is_empty() {
                continue;
            }
            let colour = colouring.colours[v as usize] as usize;
            match by_colour[colour] {
                Some(slot) => cells[slot].push(v),
                None => {
                    by_colour[colour] = Some(cells.len());
                    cells.push(vec![v]);
                }
            }
        }
        cells
            .into_iter()
            .filter(|cell| cell.len() > 1)
            .min_by_key(|cell| colouring.colours[cell[0] as usize])
    }

    fn search(&mut self, colouring: Colouring) {
        if self.leaves >= MAX_LEAVES {
            return;
        }
        let Some(cell) = self.target_cell(&colouring) else {
            self.leaf(&colouring);
            return;
        };
        // Individualize each candidate of the cell in turn and recurse; the
        // canonical form is the minimal leaf over every explored child, so
        // exploring all of them is exactly the complete backtracking search.
        //
        // Orbit pruning — checked *before* paying for the child's refinement,
        // which is the dominant cost on symmetric cells — skips any member
        // already automorphic to an explored sibling (per the automorphisms
        // the leaves have discovered so far): its subtree is an isomorphic
        // image and can only rediscover the same candidates. This is what
        // keeps factorially symmetric cells (stars, cliques, rings) at a
        // linear number of leaves and refinements.
        let mut explored: Vec<u32> = Vec::new();
        for &v in &cell {
            let root = self.orbit_root(v);
            if explored.iter().any(|&u| self.orbit_root(u) == root) {
                continue;
            }
            explored.push(v);
            let mut child = colouring.clone();
            child.colours[v as usize] = child.count;
            child.count += 1;
            let refined = self.refine(child);
            self.search(refined);
            if self.leaves >= MAX_LEAVES {
                return;
            }
        }
    }

    /// A discrete leaf: every used variable has its own colour. Build the
    /// candidate renaming and keep it if it beats the best so far.
    fn leaf(&mut self, colouring: &Colouring) {
        self.leaves += 1;
        // Canonical order: used variables sorted by colour, then the unused
        // universe block (individualized colours can grow past the unused
        // class's, so the used/unused split is made explicit rather than
        // left to colour order); unused variables fall back to input order,
        // which is harmless because no clause mentions them.
        let mut order: Vec<u32> = (0..self.num_vars as u32).collect();
        order.sort_by_key(|&v| {
            (self.adjacency[v as usize].is_empty(), colouring.colours[v as usize], v)
        });
        let mut rank = vec![0u32; self.num_vars];
        for (index, &v) in order.iter().enumerate() {
            rank[v as usize] = index as u32;
        }
        let mut renamed: Vec<Vec<u32>> = self
            .clauses
            .iter()
            .map(|clause| {
                let mut c: Vec<u32> = clause.iter().map(|&v| rank[v as usize]).collect();
                c.sort_unstable();
                c
            })
            .collect();
        renamed.sort_unstable();
        self.steps += self.num_vars as u64 + self.clauses.len() as u64;
        match &self.best {
            Some((best_order, best_clauses)) if renamed == *best_clauses => {
                // Two renamings producing the same clause list compose to an
                // automorphism of the input: canonical index i is variable
                // `best_order[i]` under one and `order[i]` under the other.
                // Feed its orbits to the branching prune.
                let pairs: Vec<(u32, u32)> =
                    best_order.iter().copied().zip(order.iter().copied()).collect();
                for (a, b) in pairs {
                    self.orbit_union(a, b);
                }
            }
            Some((_, best_clauses)) if renamed < *best_clauses => {
                self.best = Some((order, renamed));
            }
            None => self.best = Some((order, renamed)),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Applies `form.order` to check the form really is a renaming of the
    /// input: renaming the input clauses through the inverse order and
    /// sorting must reproduce `form.clauses`.
    fn is_renaming_of(form: &CanonicalForm, num_vars: usize, clauses: &[Vec<u32>]) -> bool {
        let mut rank = vec![0u32; num_vars];
        for (index, &v) in form.order.iter().enumerate() {
            rank[v as usize] = index as u32;
        }
        let mut renamed: Vec<Vec<u32>> = clauses
            .iter()
            .map(|c| {
                let mut c: Vec<u32> = c.iter().map(|&v| rank[v as usize]).collect();
                c.sort_unstable();
                c
            })
            .collect();
        renamed.sort_unstable();
        renamed == form.clauses
    }

    #[test]
    fn order_is_a_permutation_and_clauses_are_a_renaming() {
        let clauses = vec![vec![0, 1], vec![1, 2], vec![3]];
        let form = canonical_form(5, &clauses);
        let mut sorted = form.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert!(is_renaming_of(&form, 5, &clauses));
        assert!(form.steps > 0);
    }

    #[test]
    fn relabelled_paths_share_one_form_and_stars_key_apart() {
        // The miss that motivated this module: first-occurrence renaming
        // keyed the 3-path differently depending on which variable carried
        // the middle label. All labellings must now share one form...
        let middle_label_large = vec![vec![0, 2], vec![1, 2]];
        let middle_label_small = vec![vec![0, 1], vec![0, 2]];
        let middle_label_mid = vec![vec![0, 1], vec![1, 2]];
        let reference = canonical_form(3, &middle_label_mid);
        assert_eq!(canonical_form(3, &middle_label_large).clauses, reference.clauses);
        assert_eq!(canonical_form(3, &middle_label_small).clauses, reference.clauses);
        // ...while genuinely non-isomorphic shapes stay apart: the 4-path
        // vs the 3-leaf star (these have different model counts, so a
        // collision would transfer wrong attribution values).
        let path4 = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let star4 = vec![vec![0, 1], vec![0, 2], vec![0, 3]];
        assert_ne!(canonical_form(4, &path4).clauses, canonical_form(4, &star4).clauses);
    }

    #[test]
    fn rings_are_invariant_under_rotation_and_reflection() {
        let ring = |perm: &[u32]| -> Vec<Vec<u32>> {
            (0..perm.len()).map(|i| vec![perm[i], perm[(i + 1) % perm.len()]]).collect()
        };
        let identity: Vec<u32> = (0..8).collect();
        let rotated: Vec<u32> = (0..8).map(|i| (i + 3) % 8).collect();
        let reflected: Vec<u32> = (0..8).map(|i| (16 - i) % 8).collect();
        let scrambled: Vec<u32> = vec![5, 2, 7, 0, 3, 6, 1, 4];
        let reference = canonical_form(8, &ring(&identity));
        for perm in [&rotated, &reflected, &scrambled] {
            let form = canonical_form(8, &ring(perm));
            assert_eq!(form.clauses, reference.clauses, "{perm:?}");
        }
    }

    #[test]
    fn fully_symmetric_singletons_stay_cheap() {
        // n singleton clauses: every variable is automorphic to every other,
        // so the first leaf is already canonical, every later leaf collides
        // with it and feeds the orbit union-find, and the discovered orbits
        // prune the n!-leaf search tree down to a linear walk.
        let clauses: Vec<Vec<u32>> = (0..12).map(|v| vec![v]).collect();
        let form = canonical_form(12, &clauses);
        let expected: Vec<Vec<u32>> = (0..12).map(|v| vec![v]).collect();
        assert_eq!(form.clauses, expected);
        // The orbit prune caps the work far below the 512-leaf safety net:
        // without it this input walks ~512 leaves × 12 levels of refinement.
        assert!(
            form.steps < 60_000,
            "orbit pruning must collapse the symmetric search: {} steps",
            form.steps
        );
    }

    #[test]
    fn unused_universe_variables_sort_last() {
        // Variables 1 and 3 never occur in a clause; the used variables must
        // occupy the low canonical indices regardless.
        let clauses = vec![vec![0, 2], vec![2, 4]];
        let form = canonical_form(5, &clauses);
        for clause in &form.clauses {
            for &v in clause {
                assert!(v < 3, "used variables must map below the unused block");
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        // Constant false: no clauses.
        let none = canonical_form(3, &[]);
        assert_eq!(none.clauses, Vec::<Vec<u32>>::new());
        assert_eq!(none.order.len(), 3);
        // Constant true: one empty clause.
        let all = canonical_form(0, &[vec![]]);
        assert_eq!(all.clauses, vec![Vec::<u32>::new()]);
        // Empty universe, no clauses.
        let empty = canonical_form(0, &[]);
        assert!(empty.order.is_empty());
    }

    #[test]
    fn two_triangles_differ_from_a_hexagon() {
        // The classic 1-WL-equivalent pair (all nodes degree 2 both sides):
        // refinement alone cannot split them, so this exercises the
        // individualization/backtracking stage.
        let triangles =
            vec![vec![0, 1], vec![1, 2], vec![2, 0], vec![3, 4], vec![4, 5], vec![5, 3]];
        let hexagon = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 5], vec![5, 0]];
        let a = canonical_form(6, &triangles);
        let b = canonical_form(6, &hexagon);
        assert_ne!(a.clauses, b.clauses);
        // Relabelled copies of each still land on their own form.
        let triangles_relabelled =
            vec![vec![5, 3], vec![3, 1], vec![1, 5], vec![0, 2], vec![2, 4], vec![4, 0]];
        assert_eq!(canonical_form(6, &triangles_relabelled).clauses, a.clauses);
        let hexagon_relabelled =
            vec![vec![4, 2], vec![2, 0], vec![0, 3], vec![3, 5], vec![5, 1], vec![1, 4]];
        assert_eq!(canonical_form(6, &hexagon_relabelled).clauses, b.clauses);
    }
}
