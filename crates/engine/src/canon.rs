//! Order-insensitive canonical forms for lineages.
//!
//! The shared cache keys attributions by a canonical renaming of the lineage.
//! The renaming must be a *canonical form* in the graph-isomorphism sense:
//! two lineages receive the same key **iff** one is a variable bijection of
//! the other (clause order is immaterial — [`banzhaf_boolean::Dnf`] already
//! sorts clauses, but *which* order the sort produces depends on the variable
//! names, which is exactly what a renaming changes).
//!
//! The previous scheme — rename variables to a dense numbering by first
//! occurrence, then sort the renamed clauses — is sound (its key is a true
//! renaming of the input, so equal keys do imply isomorphism) but badly
//! incomplete: the renaming walks the clauses in the order the *original*
//! labels sort them, so a mere relabelling changes the walk and hence the
//! key. The 3-path `{x,y} ∨ {y,z}` keys as `{0,1} ∨ {1,2}` when `x<y<z` but
//! as `{0,1} ∨ {0,2}` when the middle variable carries the smallest label —
//! one isomorphism class, two keys, and a spurious cache miss for every
//! labelling family the first-occurrence walk happens to separate.
//!
//! This module computes a genuinely order-insensitive form in two stages:
//!
//! 1. **Colour refinement** (1-dimensional Weisfeiler–Leman) over the
//!    bipartite clause–variable *incidence graph*: variables and clauses
//!    start with colours derived from their degrees/widths, and cells are
//!    split by the multiset of their members' neighbour colours until the
//!    partition stabilizes. The resulting partition is isomorphism-invariant
//!    and usually fine enough to order most variables outright. Refinement
//!    runs as a Hopcroft-style *worklist*: only cells holding a neighbour of
//!    a fragment split in the previous round are re-examined (with one
//!    largest fragment per split skipped — members with equal counts against
//!    every small fragment have equal counts against the large remainder
//!    too), neighbour-colour multisets are counting-sorted into scratch
//!    buffers reused across rounds *and* across individualization search
//!    nodes, and new colour ids are assigned positionally so the fixpoint —
//!    partition and ids both — is identical to the full-recompute rounds the
//!    seed shipped (kept as a [`tests::oracle`] the proptests compare
//!    against).
//! 2. **Orbit breaking with backtracking**: while some colour class still
//!    holds several variables, the search *individualizes* each candidate of
//!    the first such class in turn (gives it a fresh colour), re-refines, and
//!    recurses. Each discrete leaf yields one candidate renaming; the
//!    lexicographically smallest renamed clause list over all explored
//!    leaves is the canonical form. Two leaves that produce the *same*
//!    clause list witness an automorphism of the input (the composition of
//!    their renamings); the search accumulates the orbits of the discovered
//!    automorphisms in a union-find and skips cell members already known to
//!    be automorphic images of an explored sibling — *before* paying for
//!    their refinement — which collapses the factorially symmetric cases
//!    (stars, cliques, rings, singleton batteries) to a linear number of
//!    leaves, the same pruning that makes nauty-style canonical labelling
//!    practical.
//!
//! Every leaf is a true renaming of the input, so **equal keys imply
//! isomorphic lineages unconditionally** — soundness does not depend on the
//! search. Completeness (isomorphic lineages ⇒ equal keys) holds whenever
//! the search runs to exhaustion, which it does for every lineage whose
//! refinement-invariant leaf count stays within [`MAX_LEAVES`]; past that
//! cap exploration stops early and two differently-labelled copies of such
//! an (astronomically symmetric) lineage may canonicalize differently and
//! merely miss each other in the cache. In practice the heavily symmetric
//! lineages (rings, stars, grids) are exactly the ones where all leaves are
//! automorphic images of one another, so the first leaf already *is* the
//! canonical form and the cap is unreachable without adversarial input.
//!
//! Because even the worklist search costs real work, the cache avoids it
//! entirely where it can: [`fingerprint`] computes a cheap isomorphism
//! *invariant* (variable/clause counts plus hashed clause-width and
//! variable-degree multisets) in one linear pass. Two isomorphic lineages
//! always share a fingerprint, so an empty fingerprint bucket is a definite
//! cache miss and the canonical form only needs to be computed once a
//! *second* distinct shape shows up under the same fingerprint.

use banzhaf::{Budget, Interrupted};
use banzhaf_arith::Rational;
use banzhaf_boolean::AggregateKind;

/// The canonical form of a lineage presented as dense clause lists.
pub(crate) struct CanonicalForm {
    /// `order[i]` is the input variable assigned canonical index `i`.
    pub(crate) order: Vec<u32>,
    /// The clauses renamed through `order`, each sorted, the list sorted.
    pub(crate) clauses: Vec<Vec<u32>>,
    /// Refinement work performed (node signatures computed), the
    /// canonicalization analogue of `compile_steps`.
    pub(crate) steps: u64,
}

/// Backtracking-leaf budget. Exploration past this many discrete partitions
/// stops with the best form found so far (see the module docs for why this
/// only ever degrades cache hit rate, never correctness).
const MAX_LEAVES: usize = 512;

/// Computes the canonical form of `clauses` over variables `0..num_vars`
/// (variables beyond the clauses' support are degree-0 universe padding and
/// are appended after the used variables in input order — no clause mentions
/// them, so the key does not depend on their order). Production callers go
/// through [`canonical_form_classed`] (the cache derives clause classes from
/// the shape's payload); this unclassed spelling serves the oracle proptests.
#[cfg(test)]
pub(crate) fn canonical_form(num_vars: usize, clauses: &[Vec<u32>]) -> CanonicalForm {
    canonical_form_classed(num_vars, clauses, None)
}

/// [`canonical_form`] over a *clause-classed* lineage: `classes[c]` is an
/// isomorphism-invariant label of clause `c` (weighted lineages label each
/// clause by the rank of its weight, see `cache::Shape::canonicalize`). The
/// labels join the clause nodes' initial colours, so refinement separates
/// clauses of different classes and only class-preserving renamings count as
/// automorphisms; the candidate leaves are ordered by `(renamed clause list,
/// induced class sequence)`, so two weighted-isomorphic lineages pick the
/// same witness even when the Boolean skeleton alone has automorphisms that
/// permute differently-weighted clauses (the 3-path with distinct end-clause
/// weights is the motivating case). With `classes: None` — or all labels
/// equal — every choice reduces to the unclassed search, bit-identically.
pub(crate) fn canonical_form_classed(
    num_vars: usize,
    clauses: &[Vec<u32>],
    classes: Option<&[u32]>,
) -> CanonicalForm {
    let mut searcher = Searcher::new(num_vars, clauses, classes);
    let initial = searcher.initial_colouring();
    searcher.search(initial);
    let (order, canonical_clauses, _) =
        searcher.best.expect("the search visits at least one discrete leaf");
    CanonicalForm { order, clauses: canonical_clauses, steps: searcher.steps }
}

/// [`canonical_form`] under a cooperative [`Budget`]: every refinement round
/// charges its step lump, so a step cap or deadline interrupts the
/// individualization descent mid-stream instead of letting a pathologically
/// symmetric shape stall the whole batch-planning walk. With an unexhausted
/// budget the result — form, witness order, and step count — is bit-identical
/// to the unbudgeted path; on exhaustion the caller gets `Err` and treats the
/// shape as unkeyable (a cache miss, never a wrong key).
#[cfg(test)]
pub(crate) fn canonical_form_budgeted(
    num_vars: usize,
    clauses: &[Vec<u32>],
    budget: &Budget,
) -> Result<CanonicalForm, Interrupted> {
    canonical_form_classed_budgeted(num_vars, clauses, None, budget)
}

/// [`canonical_form_classed`] under a cooperative [`Budget`] — the weighted
/// analogue of [`canonical_form_budgeted`], with the same interrupt contract.
pub(crate) fn canonical_form_classed_budgeted(
    num_vars: usize,
    clauses: &[Vec<u32>],
    classes: Option<&[u32]>,
    budget: &Budget,
) -> Result<CanonicalForm, Interrupted> {
    let mut searcher = Searcher::new(num_vars, clauses, classes);
    searcher.budget = Some(budget);
    let initial = searcher.initial_colouring();
    if !searcher.interrupted {
        searcher.search(initial);
    }
    if searcher.interrupted {
        return Err(Interrupted);
    }
    let (order, canonical_clauses, _) =
        searcher.best.expect("the uninterrupted search visits at least one discrete leaf");
    Ok(CanonicalForm { order, clauses: canonical_clauses, steps: searcher.steps })
}

/// A cheap isomorphism invariant of a lineage: any variable bijection
/// preserves every field, so isomorphic lineages always share a fingerprint
/// while most non-isomorphic ones separate without any refinement at all.
/// The converse does not hold (two triangles and a hexagon collide), which
/// is why the cache only treats an *empty* fingerprint bucket as an answer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Fingerprint {
    num_vars: u32,
    num_clauses: u32,
    /// FNV-1a over the sorted clause-width multiset.
    widths: u64,
    /// FNV-1a over the sorted variable-degree multiset.
    degrees: u64,
    /// An isomorphism-invariant digest of the clause weights and aggregate
    /// kind for weighted (aggregate) lineages; `0` for plain Boolean ones.
    /// Weighted shapes never share a bucket with their Boolean skeleton, and
    /// a SUM lineage never pre-keys equal to the COUNT over the same clauses.
    payload: u64,
}

impl Fingerprint {
    /// The fingerprint's raw fields, in declaration order — the stable
    /// identity the snapshot format and the shard router hash. Kept as an
    /// explicit tuple (not struct access) so every consumer of the raw form
    /// breaks loudly if a field is ever added.
    pub(crate) fn raw_parts(self) -> (u32, u32, u64, u64, u64) {
        (self.num_vars, self.num_clauses, self.widths, self.degrees, self.payload)
    }

    /// Rebuilds a fingerprint from [`Fingerprint::raw_parts`] (snapshot
    /// deserialization). The caller is responsible for validating that the
    /// fingerprint matches its entry's shape — see `persist`.
    pub(crate) fn from_raw_parts(parts: (u32, u32, u64, u64, u64)) -> Fingerprint {
        Fingerprint {
            num_vars: parts.0,
            num_clauses: parts.1,
            widths: parts.2,
            degrees: parts.3,
            payload: parts.4,
        }
    }

    /// This fingerprint with the given weighted-payload digest attached.
    pub(crate) fn with_payload(self, payload: u64) -> Fingerprint {
        Fingerprint { payload, ..self }
    }
}

/// Computes the [`Fingerprint`] of `clauses` over variables `0..num_vars` in
/// one linear pass — no refinement, no search. The payload field is `0`: this
/// is the pre-key of a plain Boolean lineage.
pub(crate) fn fingerprint(num_vars: usize, clauses: &[Vec<u32>]) -> Fingerprint {
    let mut widths: Vec<u32> = clauses.iter().map(|c| c.len() as u32).collect();
    widths.sort_unstable();
    let mut degrees = vec![0u32; num_vars];
    for clause in clauses {
        for &v in clause {
            degrees[v as usize] += 1;
        }
    }
    degrees.sort_unstable();
    Fingerprint {
        num_vars: num_vars as u32,
        num_clauses: clauses.len() as u32,
        widths: fnv1a(&widths),
        degrees: fnv1a(&degrees),
        payload: 0,
    }
}

/// The isomorphism-invariant payload digest of a weighted lineage: FNV-1a
/// over the aggregate kind and the *sorted* multiset of
/// `(clause width, weight)` pairs. Any variable bijection preserves widths
/// and carries each clause's weight along, so isomorphic weighted lineages
/// always digest equal; differing weight multisets or kinds (SUM vs COUNT)
/// almost always separate. Never `0` — the value reserved for Boolean
/// lineages — so a weighted shape cannot land in a Boolean bucket.
pub(crate) fn weighted_payload(
    kind: AggregateKind,
    clauses: &[Vec<u32>],
    weights: &[Rational],
) -> u64 {
    debug_assert_eq!(clauses.len(), weights.len(), "weights align with clauses");
    let mut items: Vec<(u32, String)> = clauses
        .iter()
        .zip(weights)
        .map(|(clause, weight)| (clause.len() as u32, weight.to_string()))
        .collect();
    items.sort_unstable();
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    // A stable per-kind tag, independent of the enum's in-memory layout.
    let tag: u8 = match kind {
        AggregateKind::Count => 1,
        AggregateKind::Sum => 2,
        AggregateKind::Min => 3,
        AggregateKind::Max => 4,
    };
    eat(&[tag]);
    for (width, weight) in &items {
        eat(&width.to_le_bytes());
        eat(weight.as_bytes());
        eat(&[0xFF]);
    }
    hash.max(1)
}

/// FNV-1a over the little-endian bytes of `values`.
fn fnv1a(values: &[u32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &value in values {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

/// One colouring of the incidence graph: `colours[node]` plus the number of
/// distinct colours (colour ids are always the contiguous range `0..count`).
#[derive(Clone)]
struct Colouring {
    colours: Vec<u32>,
    count: u32,
}

/// Reusable buffers for the worklist refiner. Owned by the [`Searcher`] so
/// individualization descents allocate nothing after the first refinement.
#[derive(Default)]
struct Scratch {
    /// All nodes grouped by colour: each cell is a contiguous run and cells
    /// appear in colour-id order, so a cell's id is its positional index.
    elems: Vec<u32>,
    /// Start offset of cell `k` in `elems`, ascending.
    starts: Vec<u32>,
    /// Counting-sort cursors for rebuilding `elems`.
    cursor: Vec<u32>,
    /// Whether cell `k` is queued for re-examination this round.
    dirty: Vec<bool>,
    /// The dirty cell ids of the current round.
    queue: Vec<u32>,
    /// Per-colour neighbour counts for the multiset counting sort; always
    /// zeroed between members (reset via `touched`).
    counts: Vec<u32>,
    /// The colours with a non-zero count for the member in hand.
    touched: Vec<u32>,
    /// Flat sorted neighbour-colour multisets, one degree-wide row per
    /// member of the cell in hand.
    arena: Vec<u32>,
    /// Member indices of the cell in hand, sorted by multiset row.
    perm: Vec<u32>,
    /// The cell's members reordered fragment-by-fragment.
    staged: Vec<u32>,
    /// Fragment boundaries within the cell in hand (local indices).
    frags: Vec<u32>,
    /// Absolute start offsets of the round's new fragments (each split
    /// cell's fragments beyond its first), ascending.
    fresh_starts: Vec<u32>,
    /// `(start, len)` ranges of the fragments that seed the next round's
    /// dirty set — every fragment except one largest per split cell.
    propagate: Vec<(u32, u32)>,
    /// Merge buffer for `starts` ∪ `fresh_starts`.
    merged: Vec<u32>,
}

/// A leaf candidate: (variable order, renamed sorted clause list, the class
/// labels induced on that list — empty when unclassed).
type Candidate = (Vec<u32>, Vec<Vec<u32>>, Vec<u32>);

struct Searcher<'a> {
    num_vars: usize,
    clauses: &'a [Vec<u32>],
    /// Per-clause class labels ([`canonical_form_classed`]); `None` for
    /// plain Boolean shapes, where every clause is interchangeable with any
    /// other of the same width.
    classes: Option<&'a [u32]>,
    /// Incidence adjacency: nodes `0..num_vars` are variables, nodes
    /// `num_vars..num_vars + clauses.len()` are clauses.
    adjacency: Vec<Vec<u32>>,
    /// Best candidate so far.
    best: Option<Candidate>,
    /// Union-find over variables: two variables share a root iff a
    /// discovered automorphism maps one to the other. Grown lazily as leaves
    /// collide; used to skip automorphic siblings during branching.
    orbit: Vec<u32>,
    leaves: usize,
    steps: u64,
    scratch: Scratch,
    /// Cooperative budget charged per refinement round (`None` on the
    /// unbudgeted path, which stays bit-identical to the seed).
    budget: Option<&'a Budget>,
    /// Set once the budget interrupts; the search unwinds without exploring
    /// (or charging) further.
    interrupted: bool,
}

impl<'a> Searcher<'a> {
    fn new(num_vars: usize, clauses: &'a [Vec<u32>], classes: Option<&'a [u32]>) -> Self {
        debug_assert!(
            classes.is_none_or(|c| c.len() == clauses.len()),
            "class labels align with clauses"
        );
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); num_vars + clauses.len()];
        for (c, clause) in clauses.iter().enumerate() {
            let clause_node = (num_vars + c) as u32;
            for &v in clause {
                adjacency[v as usize].push(clause_node);
                adjacency[clause_node as usize].push(v);
            }
        }
        Searcher {
            num_vars,
            clauses,
            classes,
            adjacency,
            best: None,
            orbit: (0..num_vars as u32).collect(),
            leaves: 0,
            steps: 0,
            scratch: Scratch::default(),
            budget: None,
            interrupted: false,
        }
    }

    /// Union-find root with path halving.
    fn orbit_root(&mut self, v: u32) -> u32 {
        let mut v = v;
        while self.orbit[v as usize] != v {
            let parent = self.orbit[v as usize];
            self.orbit[v as usize] = self.orbit[parent as usize];
            v = self.orbit[v as usize];
        }
        v
    }

    /// Records that an automorphism maps `a` to `b`.
    fn orbit_union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.orbit_root(a), self.orbit_root(b));
        if ra != rb {
            self.orbit[ra.max(rb) as usize] = ra.min(rb);
        }
    }

    /// The isomorphism-invariant starting partition: variables coloured by
    /// degree (unused universe variables sort after used ones), clauses by
    /// width — and, when classed, by class, so differently-weighted clauses
    /// never share a cell. Refinement would reach the degree/width split in
    /// one round; starting from it just saves that round.
    fn initial_colouring(&mut self) -> Colouring {
        let signatures: Vec<(u32, u32, u32)> = (0..self.adjacency.len())
            .map(|node| {
                let degree = self.adjacency[node].len() as u32;
                if node < self.num_vars {
                    // Used variables before unused ones, then by degree.
                    (u32::from(degree == 0), degree, 0)
                } else {
                    let class = self.classes.map_or(0, |c| c[node - self.num_vars]);
                    (2, degree, class)
                }
            })
            .collect();
        let mut colouring = self.colour_by_rank(&signatures);
        self.refine(&mut colouring, None);
        colouring
    }

    /// Assigns contiguous colour ids by ascending signature rank. The ids are
    /// isomorphism-invariant as long as the signatures are.
    fn colour_by_rank<S: Ord>(&mut self, signatures: &[S]) -> Colouring {
        self.steps += signatures.len() as u64;
        let mut order: Vec<u32> = (0..signatures.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| signatures[a as usize].cmp(&signatures[b as usize]));
        let mut colours = vec![0u32; signatures.len()];
        let mut count = 0u32;
        for pair in 0..order.len() {
            if pair > 0 && signatures[order[pair] as usize] != signatures[order[pair - 1] as usize]
            {
                count += 1;
            }
            colours[order[pair] as usize] = count;
        }
        Colouring { colours, count: count + 1 }
    }

    /// Runs worklist colour refinement to a fixpoint, in place.
    ///
    /// Each round re-examines only the *dirty* cells — with `seed: None`
    /// every cell (fresh start), with `seed: Some(v)` only the cells holding
    /// a neighbour of the just-individualized `v` (the parent partition was
    /// stable, so `v`'s fresh singleton is the only perturbation). A dirty
    /// cell splits into fragments ordered by their members' sorted
    /// neighbour-colour multisets, in place; after a round with splits, all
    /// colour ids are renumbered positionally. Both choices reproduce the
    /// exact ids a full `(old colour, sorted multiset)` signature sort would
    /// assign — every multi-member cell is degree-uniform (the initial
    /// colouring splits by degree and refinement only ever splits), so the
    /// equal-length multiset rows compare like full signatures — which keeps
    /// this refiner bit-identical to the full-recompute oracle it replaced.
    /// The next round's dirty set is seeded from every fragment except one
    /// largest per split cell: members with equal neighbour counts against
    /// every small fragment had equal counts against the whole old cell, so
    /// their counts against the skipped remainder are equal too.
    #[allow(clippy::too_many_lines)]
    fn refine(&mut self, colouring: &mut Colouring, seed: Option<u32>) {
        let budget = self.budget;
        let mut interrupted = false;
        let adjacency = &self.adjacency;
        let Scratch {
            elems,
            starts,
            cursor,
            dirty,
            queue,
            counts,
            touched,
            arena,
            perm,
            staged,
            frags,
            fresh_starts,
            propagate,
            merged,
        } = &mut self.scratch;
        let n = adjacency.len();
        let mut steps = 0u64;
        let cell_len = |starts: &[u32], k: usize| -> usize {
            let end = starts.get(k + 1).copied().unwrap_or(n as u32);
            (end - starts[k]) as usize
        };

        // Group nodes by colour with a counting sort; cells land contiguous
        // and in colour-id order, so a cell's id is its position in `starts`.
        let mut count = colouring.count as usize;
        cursor.clear();
        cursor.resize(count, 0);
        for &c in &colouring.colours {
            cursor[c as usize] += 1;
        }
        starts.clear();
        let mut acc = 0u32;
        for slot in cursor.iter_mut() {
            starts.push(acc);
            let size = *slot;
            *slot = acc;
            acc += size;
        }
        elems.clear();
        elems.resize(n, 0);
        for node in 0..n as u32 {
            let c = colouring.colours[node as usize] as usize;
            elems[cursor[c] as usize] = node;
            cursor[c] += 1;
        }

        dirty.clear();
        dirty.resize(count, false);
        counts.clear();
        counts.resize(count, 0);
        queue.clear();
        match seed {
            None => {
                for (k, d) in dirty.iter_mut().enumerate() {
                    if cell_len(starts, k) > 1 {
                        *d = true;
                        queue.push(k as u32);
                    }
                }
            }
            Some(v) => {
                for &nb in &adjacency[v as usize] {
                    let c = colouring.colours[nb as usize] as usize;
                    if !dirty[c] && cell_len(starts, c) > 1 {
                        dirty[c] = true;
                        queue.push(c as u32);
                    }
                }
            }
        }

        'rounds: while !queue.is_empty() {
            // Ascending cell order keeps `fresh_starts` sorted, which the
            // positional renumbering below relies on.
            queue.sort_unstable();
            fresh_starts.clear();
            propagate.clear();
            for &cq in queue.iter() {
                let c = cq as usize;
                let start = starts[c] as usize;
                let len = cell_len(starts, c);
                if len < 2 {
                    continue;
                }
                let deg = adjacency[elems[start] as usize].len();
                if deg == 0 {
                    // Degree-0 cells (unused variables, empty clauses) have
                    // empty multisets and can never split.
                    continue;
                }
                steps += (len * (deg + 1)) as u64;
                if let Some(b) = budget {
                    // Fault injection: simulate budget exhaustion mid-round
                    // (only reachable on the budgeted planning path).
                    banzhaf_par::failpoint!("canon::refine", {
                        interrupted = true;
                        break 'rounds;
                    });
                    if b.charge((len * (deg + 1)) as u64).is_err() {
                        interrupted = true;
                        break 'rounds;
                    }
                }
                // One degree-wide sorted multiset row per member, built by
                // counting sort — no per-node allocations.
                arena.clear();
                for i in 0..len {
                    let node = elems[start + i] as usize;
                    debug_assert_eq!(adjacency[node].len(), deg, "cells are degree-uniform");
                    for &nb in &adjacency[node] {
                        let col = colouring.colours[nb as usize];
                        if counts[col as usize] == 0 {
                            touched.push(col);
                        }
                        counts[col as usize] += 1;
                    }
                    touched.sort_unstable();
                    for &col in touched.iter() {
                        for _ in 0..counts[col as usize] {
                            arena.push(col);
                        }
                        counts[col as usize] = 0;
                    }
                    touched.clear();
                }
                perm.clear();
                perm.extend(0..len as u32);
                perm.sort_unstable_by(|&a, &b| {
                    let (a, b) = (a as usize * deg, b as usize * deg);
                    arena[a..a + deg].cmp(&arena[b..b + deg])
                });
                frags.clear();
                frags.push(0);
                for i in 1..len {
                    let (a, b) = (perm[i - 1] as usize * deg, perm[i] as usize * deg);
                    if arena[a..a + deg] != arena[b..b + deg] {
                        frags.push(i as u32);
                    }
                }
                if frags.len() == 1 {
                    continue;
                }
                staged.clear();
                for i in 0..len {
                    staged.push(elems[start + perm[i] as usize]);
                }
                elems[start..start + len].copy_from_slice(staged);
                let frag_len = |frags: &[u32], f: usize| -> u32 {
                    let end = frags.get(f + 1).copied().unwrap_or(len as u32);
                    end - frags[f]
                };
                let mut largest = 0;
                for f in 1..frags.len() {
                    if frag_len(frags, f) > frag_len(frags, largest) {
                        largest = f;
                    }
                }
                for f in 0..frags.len() {
                    let fstart = start as u32 + frags[f];
                    if f > 0 {
                        fresh_starts.push(fstart);
                    }
                    if f != largest {
                        propagate.push((fstart, frag_len(frags, f)));
                    }
                }
            }
            queue.clear();
            if fresh_starts.is_empty() {
                break;
            }
            // Renumber positionally: unsplit cells keep their relative order
            // and fragments slot in where their cell sat, exactly the id
            // order a full signature sort would assign.
            merged.clear();
            let (mut a, mut b) = (0usize, 0usize);
            while a < starts.len() && b < fresh_starts.len() {
                if starts[a] < fresh_starts[b] {
                    merged.push(starts[a]);
                    a += 1;
                } else {
                    merged.push(fresh_starts[b]);
                    b += 1;
                }
            }
            merged.extend_from_slice(&starts[a..]);
            merged.extend_from_slice(&fresh_starts[b..]);
            for k in 0..merged.len() {
                let cstart = merged[k] as usize;
                let cend = merged.get(k + 1).copied().unwrap_or(n as u32) as usize;
                for &node in &elems[cstart..cend] {
                    colouring.colours[node as usize] = k as u32;
                }
            }
            count = merged.len();
            colouring.count = count as u32;
            std::mem::swap(starts, merged);
            dirty.clear();
            dirty.resize(count, false);
            counts.clear();
            counts.resize(count, 0);
            for &(fstart, flen) in propagate.iter() {
                for i in 0..flen as usize {
                    let node = elems[fstart as usize + i] as usize;
                    for &nb in &adjacency[node] {
                        let c = colouring.colours[nb as usize] as usize;
                        if !dirty[c] && cell_len(starts, c) > 1 {
                            dirty[c] = true;
                            queue.push(c as u32);
                        }
                    }
                }
            }
        }
        self.steps += steps;
        self.interrupted |= interrupted;
    }

    /// The first (lowest-colour) class holding more than one *used* variable,
    /// if any. Unused universe variables are skipped: no clause mentions
    /// them, so splitting their class cannot change any candidate key.
    fn target_cell(&self, colouring: &Colouring) -> Option<Vec<u32>> {
        let mut cells: Vec<Vec<u32>> = Vec::new();
        let mut by_colour: Vec<Option<usize>> = vec![None; colouring.count as usize];
        for v in 0..self.num_vars as u32 {
            if self.adjacency[v as usize].is_empty() {
                continue;
            }
            let colour = colouring.colours[v as usize] as usize;
            match by_colour[colour] {
                Some(slot) => cells[slot].push(v),
                None => {
                    by_colour[colour] = Some(cells.len());
                    cells.push(vec![v]);
                }
            }
        }
        cells
            .into_iter()
            .filter(|cell| cell.len() > 1)
            .min_by_key(|cell| colouring.colours[cell[0] as usize])
    }

    fn search(&mut self, colouring: Colouring) {
        if self.interrupted || self.leaves >= MAX_LEAVES {
            return;
        }
        let Some(cell) = self.target_cell(&colouring) else {
            self.leaf(&colouring);
            return;
        };
        // Individualize each candidate of the cell in turn and recurse; the
        // canonical form is the minimal leaf over every explored child, so
        // exploring all of them is exactly the complete backtracking search.
        //
        // Orbit pruning — checked *before* paying for the child's refinement,
        // which is the dominant cost on symmetric cells — skips any member
        // already automorphic to an explored sibling (per the automorphisms
        // the leaves have discovered so far): its subtree is an isomorphic
        // image and can only rediscover the same candidates. This is what
        // keeps factorially symmetric cells (stars, cliques, rings) at a
        // linear number of leaves and refinements.
        let mut explored: Vec<u32> = Vec::new();
        for &v in &cell {
            let root = self.orbit_root(v);
            if explored.iter().any(|&u| self.orbit_root(u) == root) {
                continue;
            }
            explored.push(v);
            let mut child = colouring.clone();
            child.colours[v as usize] = child.count;
            child.count += 1;
            self.refine(&mut child, Some(v));
            self.search(child);
            if self.interrupted || self.leaves >= MAX_LEAVES {
                return;
            }
        }
    }

    /// A discrete leaf: every used variable has its own colour. Build the
    /// candidate renaming and keep it if it beats the best so far.
    fn leaf(&mut self, colouring: &Colouring) {
        self.leaves += 1;
        // Canonical order: used variables sorted by colour, then the unused
        // universe block (individualized colours can grow past the unused
        // class's, so the used/unused split is made explicit rather than
        // left to colour order); unused variables fall back to input order,
        // which is harmless because no clause mentions them.
        let mut order: Vec<u32> = (0..self.num_vars as u32).collect();
        order.sort_by_key(|&v| {
            (self.adjacency[v as usize].is_empty(), colouring.colours[v as usize], v)
        });
        let mut rank = vec![0u32; self.num_vars];
        for (index, &v) in order.iter().enumerate() {
            rank[v as usize] = index as u32;
        }
        // Classes ride along with their clause through the rename-and-sort:
        // the renamed clauses are distinct sets, so sorting the (clause,
        // class) pairs orders exactly as the clause-only sort did — for
        // unclassed shapes (all labels 0) the candidate comparison below is
        // bit-identical to the classless search.
        let mut renamed: Vec<(Vec<u32>, u32)> = self
            .clauses
            .iter()
            .enumerate()
            .map(|(c, clause)| {
                let mut r: Vec<u32> = clause.iter().map(|&v| rank[v as usize]).collect();
                r.sort_unstable();
                (r, self.classes.map_or(0, |labels| labels[c]))
            })
            .collect();
        renamed.sort_unstable();
        let (renamed, class_seq): (Vec<Vec<u32>>, Vec<u32>) = renamed.into_iter().unzip();
        self.steps += self.num_vars as u64 + self.clauses.len() as u64;
        match &self.best {
            Some((best_order, best_clauses, best_classes))
                if renamed == *best_clauses && class_seq == *best_classes =>
            {
                // Two renamings producing the same (clause list, class
                // sequence) compose to a class-preserving automorphism of
                // the input: canonical index i is variable `best_order[i]`
                // under one and `order[i]` under the other. Feed its orbits
                // to the branching prune. (Equal clause lists with *unequal*
                // class sequences are a skeleton automorphism that permutes
                // weights — not an automorphism of the weighted lineage, so
                // it must not prune the search.)
                let pairs: Vec<(u32, u32)> =
                    best_order.iter().copied().zip(order.iter().copied()).collect();
                for (a, b) in pairs {
                    self.orbit_union(a, b);
                }
            }
            Some((_, best_clauses, best_classes))
                if (&renamed, &class_seq) < (best_clauses, best_classes) =>
            {
                self.best = Some((order, renamed, class_seq));
            }
            None => self.best = Some((order, renamed, class_seq)),
            _ => {}
        }
    }
}

/// The stable refinement of the initial colouring — test-only visibility so
/// the proptests can compare partitions (not just final keys) against the
/// full-recompute oracle.
#[cfg(test)]
fn refined_colours(num_vars: usize, clauses: &[Vec<u32>]) -> (Vec<u32>, u32) {
    let mut searcher = Searcher::new(num_vars, clauses, None);
    let colouring = searcher.initial_colouring();
    (colouring.colours, colouring.count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The seed's full-recompute refiner, kept verbatim as a correctness
    /// oracle: every round rebuilds `(colour, sorted neighbour colours)`
    /// signatures for *all* nodes and re-ranks them. The worklist refiner
    /// must reproduce its partition — ids included — exactly.
    pub(super) mod oracle {
        use super::super::{CanonicalForm, Colouring, MAX_LEAVES};

        pub(crate) fn canonical_form(num_vars: usize, clauses: &[Vec<u32>]) -> CanonicalForm {
            let mut searcher = Searcher::new(num_vars, clauses);
            let initial = searcher.initial_colouring();
            searcher.search(initial);
            let (order, canonical_clauses) =
                searcher.best.expect("the search visits at least one discrete leaf");
            CanonicalForm { order, clauses: canonical_clauses, steps: searcher.steps }
        }

        pub(crate) fn refined_colours(num_vars: usize, clauses: &[Vec<u32>]) -> (Vec<u32>, u32) {
            let mut searcher = Searcher::new(num_vars, clauses);
            let colouring = searcher.initial_colouring();
            (colouring.colours, colouring.count)
        }

        struct Searcher<'a> {
            num_vars: usize,
            clauses: &'a [Vec<u32>],
            adjacency: Vec<Vec<u32>>,
            best: Option<(Vec<u32>, Vec<Vec<u32>>)>,
            orbit: Vec<u32>,
            leaves: usize,
            steps: u64,
        }

        impl<'a> Searcher<'a> {
            fn new(num_vars: usize, clauses: &'a [Vec<u32>]) -> Self {
                let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); num_vars + clauses.len()];
                for (c, clause) in clauses.iter().enumerate() {
                    let clause_node = (num_vars + c) as u32;
                    for &v in clause {
                        adjacency[v as usize].push(clause_node);
                        adjacency[clause_node as usize].push(v);
                    }
                }
                Searcher {
                    num_vars,
                    clauses,
                    adjacency,
                    best: None,
                    orbit: (0..num_vars as u32).collect(),
                    leaves: 0,
                    steps: 0,
                }
            }

            fn orbit_root(&mut self, v: u32) -> u32 {
                let mut v = v;
                while self.orbit[v as usize] != v {
                    let parent = self.orbit[v as usize];
                    self.orbit[v as usize] = self.orbit[parent as usize];
                    v = self.orbit[v as usize];
                }
                v
            }

            fn orbit_union(&mut self, a: u32, b: u32) {
                let (ra, rb) = (self.orbit_root(a), self.orbit_root(b));
                if ra != rb {
                    self.orbit[ra.max(rb) as usize] = ra.min(rb);
                }
            }

            fn initial_colouring(&mut self) -> Colouring {
                let signatures: Vec<(u32, u32)> = (0..self.adjacency.len())
                    .map(|node| {
                        let degree = self.adjacency[node].len() as u32;
                        if node < self.num_vars {
                            (u32::from(degree == 0), degree)
                        } else {
                            (2, degree)
                        }
                    })
                    .collect();
                let colouring = self.colour_by_rank(&signatures);
                self.refine(colouring)
            }

            fn colour_by_rank<S: Ord>(&mut self, signatures: &[S]) -> Colouring {
                self.steps += signatures.len() as u64;
                let mut order: Vec<u32> = (0..signatures.len() as u32).collect();
                order
                    .sort_unstable_by(|&a, &b| signatures[a as usize].cmp(&signatures[b as usize]));
                let mut colours = vec![0u32; signatures.len()];
                let mut count = 0u32;
                for pair in 0..order.len() {
                    if pair > 0
                        && signatures[order[pair] as usize] != signatures[order[pair - 1] as usize]
                    {
                        count += 1;
                    }
                    colours[order[pair] as usize] = count;
                }
                Colouring { colours, count: count + 1 }
            }

            fn refine(&mut self, mut colouring: Colouring) -> Colouring {
                loop {
                    let signatures: Vec<(u32, Vec<u32>)> = self
                        .adjacency
                        .iter()
                        .enumerate()
                        .map(|(node, neighbours)| {
                            let mut around: Vec<u32> =
                                neighbours.iter().map(|&n| colouring.colours[n as usize]).collect();
                            around.sort_unstable();
                            (colouring.colours[node], around)
                        })
                        .collect();
                    self.steps += self.adjacency.iter().map(|n| n.len() as u64 + 1).sum::<u64>();
                    let refined = self.colour_by_rank(&signatures);
                    let stable = refined.count == colouring.count;
                    colouring = refined;
                    if stable {
                        return colouring;
                    }
                }
            }

            fn target_cell(&self, colouring: &Colouring) -> Option<Vec<u32>> {
                let mut cells: Vec<Vec<u32>> = Vec::new();
                let mut by_colour: Vec<Option<usize>> = vec![None; colouring.count as usize];
                for v in 0..self.num_vars as u32 {
                    if self.adjacency[v as usize].is_empty() {
                        continue;
                    }
                    let colour = colouring.colours[v as usize] as usize;
                    match by_colour[colour] {
                        Some(slot) => cells[slot].push(v),
                        None => {
                            by_colour[colour] = Some(cells.len());
                            cells.push(vec![v]);
                        }
                    }
                }
                cells
                    .into_iter()
                    .filter(|cell| cell.len() > 1)
                    .min_by_key(|cell| colouring.colours[cell[0] as usize])
            }

            fn search(&mut self, colouring: Colouring) {
                if self.leaves >= MAX_LEAVES {
                    return;
                }
                let Some(cell) = self.target_cell(&colouring) else {
                    self.leaf(&colouring);
                    return;
                };
                let mut explored: Vec<u32> = Vec::new();
                for &v in &cell {
                    let root = self.orbit_root(v);
                    if explored.iter().any(|&u| self.orbit_root(u) == root) {
                        continue;
                    }
                    explored.push(v);
                    let mut child = colouring.clone();
                    child.colours[v as usize] = child.count;
                    child.count += 1;
                    let refined = self.refine(child);
                    self.search(refined);
                    if self.leaves >= MAX_LEAVES {
                        return;
                    }
                }
            }

            fn leaf(&mut self, colouring: &Colouring) {
                self.leaves += 1;
                let mut order: Vec<u32> = (0..self.num_vars as u32).collect();
                order.sort_by_key(|&v| {
                    (self.adjacency[v as usize].is_empty(), colouring.colours[v as usize], v)
                });
                let mut rank = vec![0u32; self.num_vars];
                for (index, &v) in order.iter().enumerate() {
                    rank[v as usize] = index as u32;
                }
                let mut renamed: Vec<Vec<u32>> = self
                    .clauses
                    .iter()
                    .map(|clause| {
                        let mut c: Vec<u32> = clause.iter().map(|&v| rank[v as usize]).collect();
                        c.sort_unstable();
                        c
                    })
                    .collect();
                renamed.sort_unstable();
                self.steps += self.num_vars as u64 + self.clauses.len() as u64;
                match &self.best {
                    Some((best_order, best_clauses)) if renamed == *best_clauses => {
                        let pairs: Vec<(u32, u32)> =
                            best_order.iter().copied().zip(order.iter().copied()).collect();
                        for (a, b) in pairs {
                            self.orbit_union(a, b);
                        }
                    }
                    Some((_, best_clauses)) if renamed < *best_clauses => {
                        self.best = Some((order, renamed));
                    }
                    None => self.best = Some((order, renamed)),
                    _ => {}
                }
            }
        }
    }

    /// Applies `form.order` to check the form really is a renaming of the
    /// input: renaming the input clauses through the inverse order and
    /// sorting must reproduce `form.clauses`.
    fn is_renaming_of(form: &CanonicalForm, num_vars: usize, clauses: &[Vec<u32>]) -> bool {
        let mut rank = vec![0u32; num_vars];
        for (index, &v) in form.order.iter().enumerate() {
            rank[v as usize] = index as u32;
        }
        let mut renamed: Vec<Vec<u32>> = clauses
            .iter()
            .map(|c| {
                let mut c: Vec<u32> = c.iter().map(|&v| rank[v as usize]).collect();
                c.sort_unstable();
                c
            })
            .collect();
        renamed.sort_unstable();
        renamed == form.clauses
    }

    /// The shape families the refiner proptests sweep: rings, paths, stars,
    /// cliques, double-stars, and random clause soups.
    fn shape(kind: usize, size: usize, rng: &mut StdRng) -> (usize, Vec<Vec<u32>>) {
        let n = size as u32;
        match kind {
            0 => (size, (0..n).map(|i| vec![i, (i + 1) % n]).collect()),
            1 => (size, (0..n - 1).map(|i| vec![i, i + 1]).collect()),
            2 => (size, (1..n).map(|i| vec![0, i]).collect()),
            3 => {
                let k = size.min(6) as u32;
                let mut clauses = Vec::new();
                for a in 0..k {
                    for b in a + 1..k {
                        clauses.push(vec![a, b]);
                    }
                }
                (k as usize, clauses)
            }
            4 => {
                // Two stars joined hub-to-hub: hubs 0 and 1.
                let mut clauses = vec![vec![0, 1]];
                for i in 2..n {
                    clauses.push(vec![u32::from(i % 2 != 0), i]);
                }
                (size, clauses)
            }
            _ => {
                let clauses = (0..size)
                    .map(|_| {
                        let width = rng.gen_range(1..=size.min(3));
                        let mut clause: Vec<u32> = Vec::new();
                        while clause.len() < width {
                            let v = rng.gen_range(0..n);
                            if !clause.contains(&v) {
                                clause.push(v);
                            }
                        }
                        clause.sort_unstable();
                        clause
                    })
                    .collect();
                (size, clauses)
            }
        }
    }

    /// A uniformly random relabelling of `clauses` over the same universe.
    fn relabel(num_vars: usize, clauses: &[Vec<u32>], rng: &mut StdRng) -> Vec<Vec<u32>> {
        let mut perm: Vec<u32> = (0..num_vars as u32).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        clauses
            .iter()
            .map(|clause| {
                let mut c: Vec<u32> = clause.iter().map(|&v| perm[v as usize]).collect();
                c.sort_unstable();
                c
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn worklist_refiner_matches_the_full_recompute_oracle(
            kind in 0usize..6,
            size in 3usize..12,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (num_vars, base) = shape(kind, size, &mut rng);
            let relabelled = relabel(num_vars, &base, &mut rng);
            for clauses in [&base, &relabelled] {
                // Identical partition — colour ids included, because the
                // search individualizes by id order.
                prop_assert_eq!(
                    refined_colours(num_vars, clauses),
                    oracle::refined_colours(num_vars, clauses)
                );
                // Identical canonical key and identical witness order.
                let fast = canonical_form(num_vars, clauses);
                let slow = oracle::canonical_form(num_vars, clauses);
                prop_assert_eq!(&fast.clauses, &slow.clauses);
                prop_assert_eq!(&fast.order, &slow.order);
                prop_assert!(is_renaming_of(&fast, num_vars, clauses));
            }
            // Relabelling changes neither the key nor the fingerprint.
            prop_assert_eq!(
                canonical_form(num_vars, &base).clauses,
                canonical_form(num_vars, &relabelled).clauses
            );
            prop_assert_eq!(
                fingerprint(num_vars, &base),
                fingerprint(num_vars, &relabelled)
            );
        }
    }

    #[test]
    fn worklist_refinement_is_cheaper_than_the_oracle() {
        let ring: Vec<Vec<u32>> = (0..32).map(|i| vec![i, (i + 1) % 32]).collect();
        let fast = canonical_form(32, &ring);
        let slow = oracle::canonical_form(32, &ring);
        assert_eq!(fast.clauses, slow.clauses);
        assert!(
            fast.steps < slow.steps / 2,
            "worklist refinement must beat full recomputation: {} vs {} steps",
            fast.steps,
            slow.steps
        );
    }

    #[test]
    fn order_is_a_permutation_and_clauses_are_a_renaming() {
        let clauses = vec![vec![0, 1], vec![1, 2], vec![3]];
        let form = canonical_form(5, &clauses);
        let mut sorted = form.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert!(is_renaming_of(&form, 5, &clauses));
        assert!(form.steps > 0);
    }

    #[test]
    fn relabelled_paths_share_one_form_and_stars_key_apart() {
        // The miss that motivated this module: first-occurrence renaming
        // keyed the 3-path differently depending on which variable carried
        // the middle label. All labellings must now share one form...
        let middle_label_large = vec![vec![0, 2], vec![1, 2]];
        let middle_label_small = vec![vec![0, 1], vec![0, 2]];
        let middle_label_mid = vec![vec![0, 1], vec![1, 2]];
        let reference = canonical_form(3, &middle_label_mid);
        assert_eq!(canonical_form(3, &middle_label_large).clauses, reference.clauses);
        assert_eq!(canonical_form(3, &middle_label_small).clauses, reference.clauses);
        // ...while genuinely non-isomorphic shapes stay apart: the 4-path
        // vs the 3-leaf star (these have different model counts, so a
        // collision would transfer wrong attribution values).
        let path4 = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let star4 = vec![vec![0, 1], vec![0, 2], vec![0, 3]];
        assert_ne!(canonical_form(4, &path4).clauses, canonical_form(4, &star4).clauses);
    }

    #[test]
    fn rings_are_invariant_under_rotation_and_reflection() {
        let ring = |perm: &[u32]| -> Vec<Vec<u32>> {
            (0..perm.len()).map(|i| vec![perm[i], perm[(i + 1) % perm.len()]]).collect()
        };
        let identity: Vec<u32> = (0..8).collect();
        let rotated: Vec<u32> = (0..8).map(|i| (i + 3) % 8).collect();
        let reflected: Vec<u32> = (0..8).map(|i| (16 - i) % 8).collect();
        let scrambled: Vec<u32> = vec![5, 2, 7, 0, 3, 6, 1, 4];
        let reference = canonical_form(8, &ring(&identity));
        for perm in [&rotated, &reflected, &scrambled] {
            let form = canonical_form(8, &ring(perm));
            assert_eq!(form.clauses, reference.clauses, "{perm:?}");
        }
    }

    #[test]
    fn fully_symmetric_singletons_stay_cheap() {
        // n singleton clauses: every variable is automorphic to every other,
        // so the first leaf is already canonical, every later leaf collides
        // with it and feeds the orbit union-find, and the discovered orbits
        // prune the n!-leaf search tree down to a linear walk.
        let clauses: Vec<Vec<u32>> = (0..12).map(|v| vec![v]).collect();
        let form = canonical_form(12, &clauses);
        let expected: Vec<Vec<u32>> = (0..12).map(|v| vec![v]).collect();
        assert_eq!(form.clauses, expected);
        // The orbit prune caps the work far below the 512-leaf safety net:
        // without it this input walks ~512 leaves × 12 levels of refinement.
        assert!(
            form.steps < 60_000,
            "orbit pruning must collapse the symmetric search: {} steps",
            form.steps
        );
    }

    #[test]
    fn unused_universe_variables_sort_last() {
        // Variables 1 and 3 never occur in a clause; the used variables must
        // occupy the low canonical indices regardless.
        let clauses = vec![vec![0, 2], vec![2, 4]];
        let form = canonical_form(5, &clauses);
        for clause in &form.clauses {
            for &v in clause {
                assert!(v < 3, "used variables must map below the unused block");
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        // Constant false: no clauses.
        let none = canonical_form(3, &[]);
        assert_eq!(none.clauses, Vec::<Vec<u32>>::new());
        assert_eq!(none.order.len(), 3);
        // Constant true: one empty clause.
        let all = canonical_form(0, &[vec![]]);
        assert_eq!(all.clauses, vec![Vec::<u32>::new()]);
        // Empty universe, no clauses.
        let empty = canonical_form(0, &[]);
        assert!(empty.order.is_empty());
        // Fingerprints of degenerate inputs are well-defined too.
        assert_ne!(fingerprint(3, &[]), fingerprint(0, &[]));
    }

    #[test]
    fn step_capped_budget_interrupts_the_clique_search() {
        // A clique is the worst case for the descent: refinement can never
        // split its single vertex orbit, so the individualization search does
        // all the work. A tight step cap must interrupt that descent instead
        // of running it to exhaustion.
        let mut clauses = Vec::new();
        for a in 0..6u32 {
            for b in a + 1..6 {
                clauses.push(vec![a, b]);
            }
        }
        let full = canonical_form(6, &clauses);
        // With an unexhausted budget the budgeted path is bit-identical.
        let unlimited =
            canonical_form_budgeted(6, &clauses, &Budget::unlimited()).expect("unlimited");
        assert_eq!(unlimited.clauses, full.clauses);
        assert_eq!(unlimited.order, full.order);
        assert_eq!(unlimited.steps, full.steps);
        // A cap far below the full search's refinement cost interrupts it.
        let capped = Budget::with_max_steps((full.steps / 4).max(1));
        assert!(canonical_form_budgeted(6, &clauses, &capped).is_err());
        assert!(
            capped.steps_used() <= full.steps,
            "an interrupted descent must stop charging: {} charged vs {} full",
            capped.steps_used(),
            full.steps
        );
    }

    #[test]
    fn two_triangles_differ_from_a_hexagon() {
        // The classic 1-WL-equivalent pair (all nodes degree 2 both sides):
        // refinement alone cannot split them, so this exercises the
        // individualization/backtracking stage.
        let triangles =
            vec![vec![0, 1], vec![1, 2], vec![2, 0], vec![3, 4], vec![4, 5], vec![5, 3]];
        let hexagon = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 5], vec![5, 0]];
        let a = canonical_form(6, &triangles);
        let b = canonical_form(6, &hexagon);
        assert_ne!(a.clauses, b.clauses);
        // They do share a fingerprint (equal counts, widths, and degrees) —
        // the pair the cache's lazy canonicalization must keep apart.
        assert_eq!(fingerprint(6, &triangles), fingerprint(6, &hexagon));
        // Relabelled copies of each still land on their own form.
        let triangles_relabelled =
            vec![vec![5, 3], vec![3, 1], vec![1, 5], vec![0, 2], vec![2, 4], vec![4, 0]];
        assert_eq!(canonical_form(6, &triangles_relabelled).clauses, a.clauses);
        let hexagon_relabelled =
            vec![vec![4, 2], vec![2, 0], vec![0, 3], vec![3, 5], vec![5, 1], vec![1, 4]];
        assert_eq!(canonical_form(6, &hexagon_relabelled).clauses, b.clauses);
    }
}
