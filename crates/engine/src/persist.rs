//! The warm-start snapshot format: cache entries serialized to a hand-rolled
//! versioned binary layout, so a restarted engine starts warm instead of
//! recompiling the world.
//!
//! No serde in-tree — like the bench layer's JSON parser, this is an explicit
//! reader/writer pair that fails loudly: every read is bounds-checked, every
//! structural invariant is validated, and anything unexpected is a typed
//! [`SnapshotError`] (never a panic, never a silently garbled entry). The
//! cache layers treat a rejected snapshot as a cold start.
//!
//! # Layout (version 1)
//!
//! ```text
//! magic      8 bytes   b"BZHSNAP\0"
//! version    u32 LE    1
//! count      u64 LE    number of entries
//! entries    ...       see below
//! checksum   u64 LE    FNV-1a over every byte after the magic, before this
//! ```
//!
//! Each entry carries the fingerprint pre-key (4 raw fields), the dense
//! shape (clauses of `u32` variables), the optional canonical witness
//! (variable order + canonical key clauses), and the dense attribution
//! (algorithm name, per-variable scores, model count, optional Shapley
//! values, compile-time stats). Naturals are little-endian `u64` limb
//! vectors; all lengths are `u32` LE. Integrity is layered: the checksum
//! catches accidental corruption (truncation, bit flips, garbage tails), and
//! the reader additionally recomputes each entry's fingerprint from its
//! shape and validates each witness is a permutation — a snapshot that
//! parses but lies about its keys is rejected rather than served.

use crate::attribution::{Attribution, EngineStats, Score};
use crate::cache::{CanonInfo, CanonicalKey, Shape, SnapshotEntry};
use crate::canon::{fingerprint, Fingerprint};
use crate::config::Algorithm;
use banzhaf::{ApproxInterval, ShapleyValue};
use banzhaf_arith::{Int, Natural, Rational, Sign};
use banzhaf_boolean::Var;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// The 8-byte file magic ("BanZHaf SNAPshot", NUL-terminated).
const MAGIC: &[u8; 8] = b"BZHSNAP\0";
/// The current format version. Readers reject every other version — the
/// format is versioned precisely so a future layout change degrades old
/// engines to a cold start instead of feeding them garbage.
const VERSION: u32 = 1;

/// Why a snapshot file was rejected. Every variant degrades the loading
/// cache to a cold start; none of them panics or admits a partial load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file is a snapshot of an unsupported format version.
    UnsupportedVersion(u32),
    /// The trailing FNV-1a checksum does not match the content — the file
    /// was truncated, bit-flipped, or had bytes appended.
    ChecksumMismatch,
    /// A structural invariant failed at byte offset `at`.
    Corrupt {
        /// Byte offset of the failed read or validation.
        at: usize,
        /// What the reader expected there.
        what: &'static str,
    },
    /// The entry names an attribution algorithm this engine does not know.
    UnknownAlgorithm(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt { at, what } => {
                write!(f, "corrupt snapshot at byte {at}: expected {what}")
            }
            SnapshotError::UnknownAlgorithm(name) => {
                write!(f, "snapshot names unknown algorithm {name:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// FNV-1a over `bytes` — the same constants as the fingerprint hasher, kept
/// process-independent on purpose (snapshots move between machines).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Maps a persisted algorithm name back to the engine's `&'static str` for
/// it. Attributions store `&'static str` names, so a loaded entry must
/// resolve to one of the engine's own statics — an unknown name rejects the
/// snapshot (a newer engine's backend, or garbage).
fn static_algorithm_name(name: &str) -> Option<&'static str> {
    Algorithm::ALL.iter().map(|a| a.name()).find(|n| *n == name)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn natural(&mut self, n: &Natural) {
        let limbs = n.limbs();
        self.u32(limbs.len() as u32);
        for &limb in limbs {
            self.u64(limb);
        }
    }
    fn clauses(&mut self, clauses: &[Vec<u32>]) {
        self.u32(clauses.len() as u32);
        for clause in clauses {
            self.u32(clause.len() as u32);
            for &var in clause {
                self.u32(var);
            }
        }
    }
    fn score(&mut self, score: &Score) {
        match score {
            Score::Exact(n) => {
                self.u8(0);
                self.natural(n);
            }
            Score::Interval(i) => {
                self.u8(1);
                self.natural(&i.lower);
                self.natural(&i.upper);
            }
            Score::Estimate(e) => {
                self.u8(2);
                self.u64(e.to_bits());
            }
            Score::Rational(r) => {
                self.u8(3);
                self.u8(u8::from(r.is_negative()));
                self.natural(r.numer().magnitude());
                self.natural(r.denom());
            }
        }
    }
    fn entry(&mut self, entry: &SnapshotEntry) {
        let (num_vars, num_clauses, widths, degrees, payload) = entry.fingerprint.raw_parts();
        // Weighted aggregate entries are filtered out before export; the
        // version-1 layout persists Boolean shapes, whose payload is zero.
        debug_assert!(
            payload == 0 && entry.shape.payload.is_none(),
            "snapshots persist Boolean entries only"
        );
        self.u32(num_vars);
        self.u32(num_clauses);
        self.u64(widths);
        self.u64(degrees);
        self.u32(entry.shape.num_vars as u32);
        self.clauses(&entry.shape.clauses);
        match &entry.canon {
            None => self.u8(0),
            Some(canon) => {
                self.u8(1);
                self.u32(canon.order.len() as u32);
                for &v in &canon.order {
                    self.u32(v);
                }
                self.clauses(&canon.key.clauses);
            }
        }
        let att = &entry.attribution;
        let name = att.algorithm.as_bytes();
        self.u32(name.len() as u32);
        self.buf.extend_from_slice(name);
        // Values in sorted variable order: the in-memory map iterates in
        // arbitrary order, and a deterministic file (same cache state ⇒ same
        // bytes) is what makes snapshot diffs and the checksum meaningful.
        let mut values: Vec<(&Var, &Score)> = att.values.iter().collect();
        values.sort_by_key(|(v, _)| v.0);
        self.u32(values.len() as u32);
        for (v, score) in values {
            self.u32(v.0);
            self.score(score);
        }
        match &att.model_count {
            None => self.u8(0),
            Some(n) => {
                self.u8(1);
                self.natural(n);
            }
        }
        match &att.shapley {
            None => self.u8(0),
            Some(shapley) => {
                self.u8(1);
                let mut values: Vec<(&Var, &ShapleyValue)> = shapley.iter().collect();
                values.sort_by_key(|(v, _)| v.0);
                self.u32(values.len() as u32);
                for (v, s) in values {
                    self.u32(v.0);
                    self.natural(&s.numer);
                    self.natural(&s.denom);
                }
            }
        }
        self.u64(att.stats.compile_steps);
        self.u64(att.stats.dtree_nodes as u64);
        self.u64(att.stats.wall.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.u8(u8::from(att.stats.cache_hit));
        self.u64(att.stats.canon_steps);
        self.u64(att.stats.canon_searches);
        self.u64(att.stats.prekey_skips);
    }
}

/// Serializes `entries` into a complete snapshot file image.
fn encode(entries: &[SnapshotEntry]) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.u64(entries.len() as u64);
    for entry in entries {
        w.entry(entry);
    }
    let checksum = fnv1a_bytes(&w.buf[MAGIC.len()..]);
    w.u64(checksum);
    w.buf
}

/// Writes `entries` to `path` (via a sibling temp file renamed into place, so
/// a crash mid-write never leaves a truncated snapshot behind). Returns the
/// number of entries written.
pub(crate) fn save_entries(path: &Path, entries: &[SnapshotEntry]) -> Result<usize, SnapshotError> {
    let bytes = encode(entries);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(SnapshotError::Io)?;
    std::fs::rename(&tmp, path).map_err(SnapshotError::Io)?;
    Ok(entries.len())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn corrupt<T>(&self, what: &'static str) -> Result<T, SnapshotError> {
        Err(SnapshotError::Corrupt { at: self.at, what })
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        match self.bytes.get(self.at..self.at + n) {
            Some(slice) => {
                self.at += n;
                Ok(slice)
            }
            None => self.corrupt(what),
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn flag(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => self.corrupt(what),
        }
    }

    fn natural(&mut self) -> Result<Natural, SnapshotError> {
        let count = self.u32("limb count")?;
        let mut limbs = Vec::new();
        for _ in 0..count {
            limbs.push(self.u64("limb")?);
        }
        if limbs.last() == Some(&0) {
            // The writer always emits normalized limbs; a denormalized
            // vector means the file was not written by us.
            return self.corrupt("normalized limbs");
        }
        Ok(Natural::from_limbs(limbs))
    }

    /// Reads a clause list over variables `0..num_vars`, validating bounds
    /// and the sorted dense presentation (vars ascending within a clause,
    /// clauses ascending) the cache's exact-match comparisons rely on.
    fn clauses(&mut self, num_vars: u32) -> Result<Vec<Vec<u32>>, SnapshotError> {
        let count = self.u32("clause count")?;
        let mut clauses: Vec<Vec<u32>> = Vec::new();
        for _ in 0..count {
            let len = self.u32("clause length")?;
            let mut clause = Vec::new();
            for _ in 0..len {
                let var = self.u32("clause variable")?;
                if var >= num_vars {
                    return self.corrupt("variable within the shape's universe");
                }
                if clause.last().is_some_and(|&prev| prev > var) {
                    return self.corrupt("sorted clause variables");
                }
                clause.push(var);
            }
            if clauses.last().is_some_and(|prev| prev > &clause) {
                return self.corrupt("sorted clauses");
            }
            clauses.push(clause);
        }
        Ok(clauses)
    }

    fn score(&mut self) -> Result<Score, SnapshotError> {
        match self.u8("score tag")? {
            0 => Ok(Score::Exact(self.natural()?)),
            1 => {
                let lower = self.natural()?;
                let upper = self.natural()?;
                if lower > upper {
                    // `ApproxInterval::new` debug-asserts the order; reject
                    // instead of panicking on a hostile file.
                    return self.corrupt("interval lower <= upper");
                }
                Ok(Score::Interval(ApproxInterval::new(lower, upper)))
            }
            2 => Ok(Score::Estimate(f64::from_bits(self.u64("estimate bits")?))),
            3 => {
                let negative = self.flag("rational sign")?;
                let numer = self.natural()?;
                let denom = self.natural()?;
                if denom.is_zero() {
                    return self.corrupt("non-zero rational denominator");
                }
                let sign = if negative { Sign::Negative } else { Sign::Positive };
                Ok(Score::Rational(Rational::new(Int::from_sign_mag(sign, numer), denom)))
            }
            _ => self.corrupt("score tag in 0..=3"),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn entry(&mut self) -> Result<SnapshotEntry, SnapshotError> {
        let fp = Fingerprint::from_raw_parts((
            self.u32("fingerprint num_vars")?,
            self.u32("fingerprint num_clauses")?,
            self.u64("fingerprint widths")?,
            self.u64("fingerprint degrees")?,
            // Version-1 snapshots hold Boolean entries only; their aggregate
            // payload field is always zero.
            0,
        ));
        let num_vars = self.u32("shape num_vars")?;
        let clauses = self.clauses(num_vars)?;
        // The fingerprint is re-derived, not trusted: a checksum-valid file
        // whose pre-key disagrees with its shape would route lookups (and
        // shards) wrong forever after.
        if fingerprint(num_vars as usize, &clauses) != fp {
            return self.corrupt("fingerprint matching the shape");
        }
        let shape = Arc::new(Shape { num_vars: num_vars as usize, clauses, payload: None });
        let canon = if self.flag("canon flag")? {
            let len = self.u32("witness length")?;
            if len != num_vars {
                return self.corrupt("witness covering every variable");
            }
            let mut order = Vec::new();
            let mut seen = vec![false; num_vars as usize];
            for _ in 0..len {
                let v = self.u32("witness variable")?;
                if v >= num_vars || std::mem::replace(&mut seen[v as usize], true) {
                    return self.corrupt("witness permutation");
                }
                order.push(v);
            }
            let key_clauses = self.clauses(num_vars)?;
            if key_clauses.len() != shape.clauses.len() {
                return self.corrupt("canonical key with the shape's clause count");
            }
            Some(Arc::new(CanonInfo {
                key: CanonicalKey {
                    num_vars: num_vars as usize,
                    clauses: key_clauses,
                    payload: None,
                },
                order,
            }))
        } else {
            None
        };
        let name_len = self.u32("algorithm name length")? as usize;
        let at = self.at;
        let name_bytes = self.take(name_len, "algorithm name")?;
        let Ok(name) = std::str::from_utf8(name_bytes) else {
            return Err(SnapshotError::Corrupt { at, what: "utf-8 algorithm name" });
        };
        let Some(algorithm) = static_algorithm_name(name) else {
            return Err(SnapshotError::UnknownAlgorithm(name.to_owned()));
        };
        let value_count = self.u32("value count")?;
        let mut values: HashMap<Var, Score> = HashMap::new();
        for _ in 0..value_count {
            let v = self.u32("value variable")?;
            if v >= num_vars {
                return self.corrupt("value variable within the universe");
            }
            let score = self.score()?;
            if values.insert(Var(v), score).is_some() {
                return self.corrupt("distinct value variables");
            }
        }
        let model_count = if self.flag("model count flag")? { Some(self.natural()?) } else { None };
        let shapley = if self.flag("shapley flag")? {
            let count = self.u32("shapley count")?;
            let mut map: HashMap<Var, ShapleyValue> = HashMap::new();
            for _ in 0..count {
                let v = self.u32("shapley variable")?;
                if v >= num_vars {
                    return self.corrupt("shapley variable within the universe");
                }
                let numer = self.natural()?;
                let denom = self.natural()?;
                if map.insert(Var(v), ShapleyValue { numer, denom }).is_some() {
                    return self.corrupt("distinct shapley variables");
                }
            }
            Some(map)
        } else {
            None
        };
        let stats = EngineStats {
            compile_steps: self.u64("compile steps")?,
            dtree_nodes: self.u64("dtree nodes")? as usize,
            wall: Duration::from_nanos(self.u64("wall nanos")?),
            cache_hit: self.flag("cache-hit flag")?,
            canon_steps: self.u64("canon steps")?,
            canon_searches: self.u64("canon searches")?,
            prekey_skips: self.u64("prekey skips")?,
            degraded: false,
            fallback_steps: 0,
        };
        let attribution = Arc::new(Attribution {
            algorithm,
            values,
            model_count,
            shapley,
            aggregate: None,
            aggregate_total: None,
            stats,
            degradation: None,
        });
        Ok(SnapshotEntry { fingerprint: fp, shape, canon, attribution })
    }
}

/// Parses a complete snapshot file image.
fn decode(bytes: &[u8]) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(SnapshotError::Corrupt { at: bytes.len(), what: "a complete header" });
    }
    // The checksum is verified before anything is parsed: truncations, bit
    // flips and garbage tails all fail here, loudly and in O(n).
    let body = &bytes[MAGIC.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a_bytes(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut r = Reader { bytes: body, at: 0 };
    let version = r.u32("format version")?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let count = r.u64("entry count")?;
    let mut entries = Vec::new();
    for _ in 0..count {
        entries.push(r.entry()?);
    }
    if r.at != body.len() {
        // Checksummed trailing garbage would mean a writer bug; reject it
        // rather than silently ignoring bytes.
        return r.corrupt("end of file after the last entry");
    }
    Ok(entries)
}

/// Reads and validates the snapshot at `path`.
pub(crate) fn load_entries(path: &Path) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Prekeyed;
    use banzhaf_boolean::Dnf;

    fn sample_entries() -> Vec<SnapshotEntry> {
        let p = Prekeyed::of(&Dnf::from_clauses(vec![vec![Var(0), Var(1)], vec![Var(1), Var(2)]]));
        let (canon, _) = p.shape.canonicalize();
        let attribution = Arc::new(Attribution {
            algorithm: Algorithm::ExaBan.name(),
            values: [
                (Var(0), Score::Exact(Natural::from(1u64))),
                (Var(1), Score::Rational(Rational::new(Int::from(-3i64), Natural::from(4u64)))),
                (
                    Var(2),
                    Score::Interval(ApproxInterval::new(Natural::from(1u64), Natural::from(2u64))),
                ),
            ]
            .into_iter()
            .collect(),
            model_count: Some(Natural::from(5u64)),
            shapley: Some(
                [(Var(0), ShapleyValue { numer: Natural::from(1u64), denom: Natural::from(3u64) })]
                    .into_iter()
                    .collect(),
            ),
            aggregate: None,
            aggregate_total: None,
            stats: EngineStats { compile_steps: 42, dtree_nodes: 7, ..EngineStats::default() },
            degradation: None,
        });
        vec![
            SnapshotEntry {
                fingerprint: p.fingerprint,
                shape: Arc::clone(&p.shape),
                canon: Some(Arc::new(canon)),
                attribution: Arc::clone(&attribution),
            },
            SnapshotEntry {
                fingerprint: p.fingerprint,
                shape: Arc::clone(&p.shape),
                canon: None,
                attribution,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let entries = sample_entries();
        let decoded = decode(&encode(&entries)).expect("round trip");
        assert_eq!(decoded.len(), entries.len());
        for (want, have) in entries.iter().zip(&decoded) {
            assert_eq!(want.fingerprint, have.fingerprint);
            assert_eq!(*want.shape, *have.shape);
            assert_eq!(want.canon.is_some(), have.canon.is_some());
            if let (Some(w), Some(h)) = (&want.canon, &have.canon) {
                assert_eq!(w.key, h.key);
                assert_eq!(w.order, h.order);
            }
            assert_eq!(want.attribution.algorithm, have.attribution.algorithm);
            assert_eq!(want.attribution.values.len(), have.attribution.values.len());
            for (v, score) in &want.attribution.values {
                match (score, &have.attribution.values[v]) {
                    (Score::Exact(a), Score::Exact(b)) => assert_eq!(a, b),
                    (Score::Interval(a), Score::Interval(b)) => {
                        assert_eq!((&a.lower, &a.upper), (&b.lower, &b.upper));
                    }
                    (Score::Estimate(a), Score::Estimate(b)) => assert_eq!(a, b),
                    (Score::Rational(a), Score::Rational(b)) => assert_eq!(a, b),
                    _ => panic!("score variant changed through the round trip"),
                }
            }
            assert_eq!(want.attribution.model_count, have.attribution.model_count);
            assert_eq!(
                want.attribution.shapley.as_ref().map(std::collections::HashMap::len),
                have.attribution.shapley.as_ref().map(std::collections::HashMap::len)
            );
            assert_eq!(want.attribution.stats.compile_steps, have.attribution.stats.compile_steps);
            assert_eq!(want.attribution.stats.dtree_nodes, have.attribution.stats.dtree_nodes);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let entries = sample_entries();
        assert_eq!(encode(&entries), encode(&entries), "same state must give identical bytes");
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let good = encode(&sample_entries());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode(&bad), Err(SnapshotError::BadMagic)));
        // Unsupported version (the checksum is recomputed so only the
        // version check can fire).
        let mut bad = good.clone();
        bad[8] = 99;
        let checksum = fnv1a_bytes(&bad[8..bad.len() - 8]);
        let at = bad.len() - 8;
        bad[at..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(decode(&bad), Err(SnapshotError::UnsupportedVersion(99))));
        // Truncation, at every prefix length: never a panic, never an Ok.
        for len in 0..good.len() {
            let err = decode(&good[..len]).expect_err("truncated snapshot must be rejected");
            assert!(
                matches!(
                    err,
                    SnapshotError::BadMagic
                        | SnapshotError::Corrupt { .. }
                        | SnapshotError::ChecksumMismatch
                ),
                "unexpected error for truncation at {len}: {err}"
            );
        }
        // Garbage tail.
        let mut bad = good.clone();
        bad.extend_from_slice(b"trailing garbage");
        assert!(matches!(decode(&bad), Err(SnapshotError::ChecksumMismatch)));
        // A flipped byte in the middle.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x20;
        assert!(matches!(decode(&bad), Err(SnapshotError::ChecksumMismatch)));
    }

    #[test]
    fn unknown_algorithms_are_rejected() {
        let mut entries = sample_entries();
        let mut att = (*entries[0].attribution).clone();
        att.algorithm = "NotARealBackend";
        entries[0].attribution = Arc::new(att);
        let bytes = encode(&entries);
        assert!(
            matches!(decode(&bytes), Err(SnapshotError::UnknownAlgorithm(name)) if name == "NotARealBackend")
        );
    }

    #[test]
    fn lying_fingerprints_are_rejected() {
        // A checksum-valid file whose fingerprint disagrees with its shape
        // must still be rejected: the pre-key is re-derived, not trusted.
        let mut entries = sample_entries();
        entries[0].fingerprint = Fingerprint::from_raw_parts((3, 2, 0xDEAD, 0xBEEF, 0));
        let bytes = encode(&entries);
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::Corrupt { what: "fingerprint matching the shape", .. })
        ));
    }
}
