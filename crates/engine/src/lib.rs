//! The unified attribution pipeline: one front door over every algorithm of
//! *Banzhaf Values for Facts in Query Answering* (SIGMOD 2024) and its
//! baselines.
//!
//! The repo's lower layers expose the raw machinery — lineage DNFs
//! (`banzhaf-boolean`), d-tree compilation (`banzhaf-dtree`), the algorithms
//! (`banzhaf`, `banzhaf-baselines`), query evaluation (`banzhaf-query`). This
//! crate composes them behind three abstractions:
//!
//! * [`Attributor`] — the pluggable algorithm interface: `attribute` (all
//!   facts), `attribute_var`, `rank` and `top_k`, each honouring a
//!   cooperative [`Budget`] deadline and returning the unified
//!   [`Attribution`] / [`Ranked`] result types with per-run [`EngineStats`].
//!   Implementations exist for ExaBan, AdaBan, IchiBan, Sig22, Monte Carlo
//!   and the CNF proxy; new estimators plug into the same slot.
//! * [`EngineConfig`] — one configuration (algorithm, pivot heuristic, ε,
//!   budget, seed, features) replacing the per-call option structs.
//! * [`Engine`] / [`Session`] — the end-to-end pipeline: evaluate a UCQ over
//!   a [`banzhaf_db::Database`], compute per-answer lineage, and batch
//!   attribution across answers while sharing work through the engine-level
//!   [`SharedCache`] keyed by canonical lineage (isomorphic lineages of
//!   distinct answers — and of distinct *sessions* — are attributed once;
//!   size-bounded, LRU-evicted, hit/miss/eviction counters in [`CacheStats`])
//!   and through the shared bottom-up model-count pass. Lookups resolve in
//!   two levels: a cheap isomorphism-invariant *fingerprint* (clause/var
//!   counts plus width and degree multiset hashes) settles the common case
//!   without any search, and only contested fingerprints fall back to the
//!   exact order-insensitive canonical form (worklist colour refinement plus
//!   orbit-breaking backtracking over the clause–variable incidence graph),
//!   so *any* variable renaming or clause reordering of a cached lineage
//!   hits.
//!
//! ```
//! use banzhaf_engine::{Algorithm, Engine, EngineConfig};
//! use banzhaf_boolean::{Dnf, Var};
//!
//! // Example 13 of the paper, attributed through the engine.
//! let phi = Dnf::from_clauses(vec![
//!     vec![Var(0), Var(1)],
//!     vec![Var(0), Var(2)],
//!     vec![Var(3)],
//! ]);
//! let engine = Engine::new(EngineConfig::new(Algorithm::ExaBan));
//! let attribution = engine.session().attribute(&phi).unwrap();
//! assert_eq!(attribution.model_count.as_ref().unwrap().to_u64(), Some(11));
//! assert_eq!(attribution.ranking()[0].0, Var(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod attributor;
mod cache;
mod canon;
mod config;
mod live;
mod persist;
mod registry;
mod session;

pub use attribution::{Attribution, Degradation, DegradeReason, EngineStats, Ranked, Score};
pub use attributor::{
    AdaBanAttributor, Attributor, CnfProxyAttributor, ExaBanAttributor, IchiBanAttributor,
    MonteCarloAttributor, Sig22Attributor,
};
pub use banzhaf::{Budget, Interrupted, PivotHeuristic};
pub use banzhaf_arith::Rational;
pub use banzhaf_boolean::{AggregateKind, WeightedDnf};
pub use banzhaf_db::{Database, Update};
pub use banzhaf_par::ThreadPool;
pub use banzhaf_query::{
    evaluate_aggregate, parse_program, AggregateAnswer, AggregateError, AggregateResult, UnionQuery,
};
pub use cache::{canonical_key_probe, prekey_probe, CacheStats, ShardedCache, SharedCache};
pub use config::{Algorithm, CacheConfig, EngineConfig, FallbackPolicy, Rung};
pub use live::{AnswerChange, LiveSession, LiveStats, TouchedAnswer, UpdateReport};
pub use persist::SnapshotError;
pub use registry::{backend, first_with, markdown_table, Backend, Precision, REGISTRY};
pub use session::{
    AnswerAttribution, BatchOptions, Engine, EngineSnapshot, QueryAttribution, Session,
    SessionStats,
};
