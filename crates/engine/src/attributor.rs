//! The pluggable [`Attributor`] interface and its backend implementations.

use crate::attribution::{Attribution, EngineStats, Ranked, Score};
use banzhaf::{
    adaban, adaban_all, aggregate_banzhaf_all, exaban_all, exaban_all_with_counts, ichiban_rank,
    ichiban_topk, model_counts, shapley_all, AdaBanOptions, ApproxInterval, Budget, DTree,
    IchiBanOptions, Interrupted, PivotHeuristic,
};
use banzhaf_arith::Natural;
use banzhaf_baselines::{
    cnf_proxy, mc_aggregate_banzhaf_par, mc_banzhaf_par, sig22_exact, McOptions,
};
use banzhaf_boolean::{Dnf, Var, WeightedDnf};
use banzhaf_par::{seed, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One attribution algorithm behind a uniform interface.
///
/// Implementations wrap the paper's algorithms (ExaBan, AdaBan, IchiBan) and
/// the baselines (Sig22, Monte Carlo, CNF proxy); every new estimator —
/// Kernel Banzhaf, aggregate-query variants — plugs into this same slot.
/// Backends are deterministic given their configuration (the Monte Carlo
/// baseline is deterministic given its seed), and every entry point honours
/// the cooperative `deadline` budget.
///
/// Attributors are `Send + Sync`: one attributor instance serves concurrent
/// callers, which is what lets a [`crate::Session`] fan batch attribution out
/// across a thread pool without cloning backend state.
pub trait Attributor: Send + Sync {
    /// The backend's display name (matches [`crate::Algorithm::name`]).
    fn name(&self) -> &'static str;

    /// Computes attribution scores for every fact of the lineage's universe.
    fn attribute(&self, lineage: &Dnf, deadline: &Budget) -> Result<Attribution, Interrupted>;

    /// [`Attributor::attribute`] with an explicit sample-stream index.
    ///
    /// Deterministic backends ignore `stream` (the default implementation
    /// delegates to `attribute`). Randomized backends use it to select a
    /// well-defined, reproducible sample stream instead of advancing internal
    /// state — the contract batch-parallel execution relies on: when a
    /// [`crate::Session`] assigns stream `base + i` to instance `i`, the
    /// estimates are bit-identical no matter how many workers run the batch
    /// or in which order the instances execute.
    fn attribute_indexed(
        &self,
        lineage: &Dnf,
        stream: u64,
        deadline: &Budget,
    ) -> Result<Attribution, Interrupted> {
        let _ = stream;
        self.attribute(lineage, deadline)
    }

    /// Computes attribution scores for an *aggregate* answer: a weighted
    /// lineage whose clauses carry the numeric contribution of their
    /// grounding, under the lineage's own [`banzhaf_boolean::AggregateKind`].
    ///
    /// Only backends whose registry descriptor declares
    /// [`crate::Backend::aggregates`] implement this; the session consults the
    /// registry before dispatching, so the default is an unambiguous
    /// programming-error panic rather than a silent Boolean fallback.
    fn attribute_aggregate(
        &self,
        lineage: &WeightedDnf,
        deadline: &Budget,
    ) -> Result<Attribution, Interrupted> {
        let _ = (lineage, deadline);
        panic!(
            "{} does not support aggregate lineages; consult the backend registry's \
             `aggregates` capability before dispatching",
            self.name()
        )
    }

    /// [`Attributor::attribute_aggregate`] with an explicit sample-stream
    /// index — same contract as [`Attributor::attribute_indexed`].
    fn attribute_aggregate_indexed(
        &self,
        lineage: &WeightedDnf,
        stream: u64,
        deadline: &Budget,
    ) -> Result<Attribution, Interrupted> {
        let _ = stream;
        self.attribute_aggregate(lineage, deadline)
    }

    /// Computes the score of a single fact. The default extracts it from a
    /// full [`Attributor::attribute`] pass; backends that can target one
    /// variable (AdaBan) override this with the cheaper single-variable run.
    ///
    /// A variable outside the lineage's universe has Banzhaf value 0 by
    /// definition; exact backends report that zero as certified.
    fn attribute_var(
        &self,
        lineage: &Dnf,
        x: Var,
        deadline: &Budget,
    ) -> Result<Score, Interrupted> {
        let attribution = self.attribute(lineage, deadline)?;
        Ok(attribution.value(x).cloned().unwrap_or_else(|| {
            if attribution.is_exact() {
                Score::Exact(Natural::zero())
            } else {
                Score::Estimate(0.0)
            }
        }))
    }

    /// Ranks all facts by decreasing Banzhaf value. The default ranks the
    /// scores of a full attribution pass; IchiBan overrides it with the
    /// interval-separation algorithm that can stop before values converge.
    fn rank(&self, lineage: &Dnf, deadline: &Budget) -> Result<Ranked, Interrupted> {
        let attribution = self.attribute(lineage, deadline)?;
        let order = attribution.ranking().into_iter().map(|(v, _)| v).collect();
        Ok(Ranked { order, certified: attribution.is_exact(), stats: attribution.stats })
    }

    /// The `k` facts with the largest Banzhaf values, in decreasing order.
    fn top_k(&self, lineage: &Dnf, k: usize, deadline: &Budget) -> Result<Ranked, Interrupted> {
        let mut ranked = self.rank(lineage, deadline)?;
        ranked.order.truncate(k);
        Ok(ranked)
    }
}

/// ExaBan: full d-tree compilation, then the shared two-pass exact algorithm.
#[derive(Clone, Copy, Debug)]
pub struct ExaBanAttributor {
    /// Shannon pivot-selection heuristic for compilation.
    pub heuristic: PivotHeuristic,
    /// Also compute Shapley values on the same compiled tree.
    pub include_shapley: bool,
}

impl Attributor for ExaBanAttributor {
    fn name(&self) -> &'static str {
        "ExaBan"
    }

    fn attribute(&self, lineage: &Dnf, deadline: &Budget) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        let tree = DTree::compile_full(lineage.clone(), self.heuristic, deadline)?;
        // The two-pass algorithm shares one bottom-up count pass across all
        // variables; the optional Shapley pass reuses the same compiled tree
        // (compilation dominates, so Banzhaf + Shapley cost barely more than
        // Banzhaf alone).
        let result = exaban_all(&tree);
        let shapley = self.include_shapley.then(|| shapley_all(&tree));
        Ok(Attribution {
            algorithm: self.name(),
            values: result.values.into_iter().map(|(v, b)| (v, Score::Exact(b))).collect(),
            model_count: Some(result.model_count),
            shapley,
            aggregate: None,
            aggregate_total: None,
            degradation: None,
            stats: EngineStats {
                compile_steps: tree.expansions(),
                dtree_nodes: tree.num_nodes(),
                wall: start.elapsed(),
                ..EngineStats::default()
            },
        })
    }

    fn attribute_aggregate(
        &self,
        lineage: &WeightedDnf,
        deadline: &Budget,
    ) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        // COUNT/SUM resolve in closed form; MIN/MAX run the rank/threshold
        // decomposition, one ExaBan pass per threshold layer (see
        // `banzhaf::aggregate_banzhaf_all`).
        let (result, cost) = aggregate_banzhaf_all(lineage, self.heuristic, deadline)?;
        Ok(Attribution {
            algorithm: self.name(),
            values: result.values.into_iter().map(|(v, r)| (v, Score::Rational(r))).collect(),
            model_count: None,
            shapley: None,
            aggregate: Some(lineage.kind()),
            aggregate_total: Some(result.total),
            degradation: None,
            stats: EngineStats {
                compile_steps: cost.compile_steps,
                dtree_nodes: cost.dtree_nodes,
                wall: start.elapsed(),
                ..EngineStats::default()
            },
        })
    }
}

/// AdaBan: anytime ε-approximation over an incrementally expanded d-tree.
#[derive(Clone, Debug)]
pub struct AdaBanAttributor {
    /// The AdaBan options (ε, heuristic, optimizations).
    pub options: AdaBanOptions,
}

impl Attributor for AdaBanAttributor {
    fn name(&self) -> &'static str {
        "AdaBan"
    }

    fn attribute(&self, lineage: &Dnf, deadline: &Budget) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        let vars: Vec<Var> = lineage.universe().iter().collect();
        let mut tree = DTree::from_leaf(lineage.clone());
        let intervals = adaban_all(&mut tree, &vars, &self.options, deadline)?;
        // Cross-algorithm reuse on the shared tree: when the incremental
        // compilation happened to complete the d-tree (ε = 0, or small
        // lineages), one bottom-up model-count pass — the same pass ExaBan
        // runs — pins every interval to its exact value and yields the model
        // count, at linear cost in the tree and with zero extra compilation.
        let (values, model_count) = if tree.is_complete() {
            let counts = model_counts(&tree);
            let exact = exaban_all_with_counts(&tree, &counts);
            let values = intervals
                .into_iter()
                .map(|(v, _)| {
                    let b = exact.values[&v].clone();
                    (v, Score::Interval(ApproxInterval::new(b.clone(), b)))
                })
                .collect();
            (values, Some(exact.model_count))
        } else {
            let values = intervals.into_iter().map(|(v, i)| (v, Score::Interval(i))).collect();
            (values, None)
        };
        Ok(Attribution {
            algorithm: self.name(),
            values,
            model_count,
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            degradation: None,
            stats: EngineStats {
                compile_steps: tree.expansions(),
                dtree_nodes: tree.num_nodes(),
                wall: start.elapsed(),
                ..EngineStats::default()
            },
        })
    }

    fn attribute_var(
        &self,
        lineage: &Dnf,
        x: Var,
        deadline: &Budget,
    ) -> Result<Score, Interrupted> {
        let mut tree = DTree::from_leaf(lineage.clone());
        let interval = adaban(&mut tree, x, &self.options, deadline)?;
        Ok(Score::Interval(interval))
    }
}

/// IchiBan: ranking/top-k by interval separation over a shared partial tree.
#[derive(Clone, Debug)]
pub struct IchiBanAttributor {
    /// The IchiBan options (ε or certain mode, heuristic, batch size).
    pub options: IchiBanOptions,
}

impl Attributor for IchiBanAttributor {
    fn name(&self) -> &'static str {
        "IchiBan"
    }

    fn attribute(&self, lineage: &Dnf, deadline: &Budget) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        let mut tree = DTree::from_leaf(lineage.clone());
        let ranking = ichiban_rank(&mut tree, &self.options, deadline)?;
        let values = ranking.intervals.into_iter().map(|(v, i)| (v, Score::Interval(i))).collect();
        Ok(Attribution {
            algorithm: self.name(),
            values,
            model_count: None,
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            degradation: None,
            stats: EngineStats {
                compile_steps: tree.expansions(),
                dtree_nodes: tree.num_nodes(),
                wall: start.elapsed(),
                ..EngineStats::default()
            },
        })
    }

    fn rank(&self, lineage: &Dnf, deadline: &Budget) -> Result<Ranked, Interrupted> {
        let start = Instant::now();
        let mut tree = DTree::from_leaf(lineage.clone());
        let ranking = ichiban_rank(&mut tree, &self.options, deadline)?;
        Ok(Ranked {
            order: ranking.order,
            certified: ranking.certified,
            stats: EngineStats {
                compile_steps: tree.expansions(),
                dtree_nodes: tree.num_nodes(),
                wall: start.elapsed(),
                ..EngineStats::default()
            },
        })
    }

    fn top_k(&self, lineage: &Dnf, k: usize, deadline: &Budget) -> Result<Ranked, Interrupted> {
        let start = Instant::now();
        let mut tree = DTree::from_leaf(lineage.clone());
        let topk = ichiban_topk(&mut tree, k, &self.options, deadline)?;
        Ok(Ranked {
            order: topk.members,
            certified: topk.certified,
            stats: EngineStats {
                compile_steps: tree.expansions(),
                dtree_nodes: tree.num_nodes(),
                wall: start.elapsed(),
                ..EngineStats::default()
            },
        })
    }
}

/// The Sig22 exact baseline: CNF encoding + DPLL-style compilation.
#[derive(Clone, Copy, Debug)]
pub struct Sig22Attributor;

impl Attributor for Sig22Attributor {
    fn name(&self) -> &'static str {
        "Sig22"
    }

    fn attribute(&self, lineage: &Dnf, deadline: &Budget) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        let result = sig22_exact(lineage, deadline)?;
        Ok(Attribution {
            algorithm: self.name(),
            values: result.values.into_iter().map(|(v, b)| (v, Score::Exact(b))).collect(),
            model_count: Some(result.model_count),
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            degradation: None,
            stats: EngineStats {
                compile_steps: result.nodes_explored,
                dtree_nodes: 0,
                wall: start.elapsed(),
                ..EngineStats::default()
            },
        })
    }
}

/// The Monte Carlo baseline. Deterministic given its seed: each call samples
/// from a fresh stream derived from `(seed, stream index)`, where the index
/// is taken from an internal counter (so repeated calls draw independent
/// samples, mirroring a sampling sweep) or supplied explicitly through
/// [`Attributor::attribute_indexed`] (so batch-parallel execution assigns
/// instance `i` the same stream the sequential loop would).
#[derive(Debug)]
pub struct MonteCarloAttributor {
    options: McOptions,
    seed: u64,
    /// Stream index handed to the next plain `attribute` call.
    next_stream: AtomicU64,
    /// Pool for the per-variable sampling loops (sequential by default).
    pool: ThreadPool,
}

impl MonteCarloAttributor {
    /// A Monte Carlo attributor with the given sampling options and seed.
    pub fn new(options: McOptions, seed: u64) -> Self {
        MonteCarloAttributor {
            options,
            seed,
            next_stream: AtomicU64::new(0),
            pool: ThreadPool::sequential(),
        }
    }

    /// Fans the per-variable sampling loops across `pool`. Estimates are
    /// bit-identical to the sequential ones at every thread count (each
    /// variable samples from its own derived seed stream).
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }
}

impl Attributor for MonteCarloAttributor {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn attribute(&self, lineage: &Dnf, deadline: &Budget) -> Result<Attribution, Interrupted> {
        let stream = self.next_stream.fetch_add(1, Ordering::Relaxed);
        self.attribute_indexed(lineage, stream, deadline)
    }

    fn attribute_indexed(
        &self,
        lineage: &Dnf,
        stream: u64,
        deadline: &Budget,
    ) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        let stream_seed = seed::derive(self.seed, stream);
        let estimates = mc_banzhaf_par(lineage, &self.options, stream_seed, deadline, &self.pool)?;
        Ok(Attribution {
            algorithm: self.name(),
            values: estimates.into_iter().map(|(v, e)| (v, Score::Estimate(e))).collect(),
            model_count: None,
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            degradation: None,
            stats: EngineStats { wall: start.elapsed(), ..EngineStats::default() },
        })
    }

    fn attribute_aggregate(
        &self,
        lineage: &WeightedDnf,
        deadline: &Budget,
    ) -> Result<Attribution, Interrupted> {
        let stream = self.next_stream.fetch_add(1, Ordering::Relaxed);
        self.attribute_aggregate_indexed(lineage, stream, deadline)
    }

    fn attribute_aggregate_indexed(
        &self,
        lineage: &WeightedDnf,
        stream: u64,
        deadline: &Budget,
    ) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        let stream_seed = seed::derive(self.seed, stream);
        let estimates =
            mc_aggregate_banzhaf_par(lineage, &self.options, stream_seed, deadline, &self.pool)?;
        Ok(Attribution {
            algorithm: self.name(),
            values: estimates.into_iter().map(|(v, e)| (v, Score::Estimate(e))).collect(),
            model_count: None,
            shapley: None,
            aggregate: Some(lineage.kind()),
            aggregate_total: None,
            degradation: None,
            stats: EngineStats { wall: start.elapsed(), ..EngineStats::default() },
        })
    }
}

/// The CNF-proxy ranking heuristic: linear time, no guarantees.
#[derive(Clone, Copy, Debug)]
pub struct CnfProxyAttributor;

impl Attributor for CnfProxyAttributor {
    fn name(&self) -> &'static str {
        "CNFProxy"
    }

    fn attribute(&self, lineage: &Dnf, deadline: &Budget) -> Result<Attribution, Interrupted> {
        let start = Instant::now();
        deadline.check_deadline()?;
        let scores = cnf_proxy(lineage);
        Ok(Attribution {
            algorithm: self.name(),
            values: scores.into_iter().map(|(v, e)| (v, Score::Estimate(e))).collect(),
            model_count: None,
            shapley: None,
            aggregate: None,
            aggregate_total: None,
            degradation: None,
            stats: EngineStats { wall: start.elapsed(), ..EngineStats::default() },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, EngineConfig};
    use banzhaf::exaban_all;
    use banzhaf_arith::Int;

    fn v(i: u32) -> Var {
        Var(i)
    }

    /// Example 13 of the paper: values x:3, y:1, z:1, u:5; #φ = 11.
    fn example13() -> Dnf {
        Dnf::from_clauses(vec![vec![v(0), v(1)], vec![v(0), v(2)], vec![v(3)]])
    }

    /// A connected lineage with no common variable (needs Shannon expansion).
    fn hard_function() -> Dnf {
        Dnf::from_clauses(vec![
            vec![v(0), v(1)],
            vec![v(1), v(2)],
            vec![v(2), v(3)],
            vec![v(3), v(4)],
            vec![v(4), v(0)],
        ])
    }

    #[test]
    fn exact_backends_agree_with_ground_truth() {
        let phi = example13();
        for algorithm in [Algorithm::ExaBan, Algorithm::Sig22] {
            let attributor = EngineConfig::new(algorithm).attributor();
            let att = attributor.attribute(&phi, &Budget::unlimited()).unwrap();
            assert!(att.is_exact(), "{algorithm}");
            assert_eq!(att.model_count.as_ref().unwrap().to_u64(), Some(11));
            let exact = att.exact_values().unwrap();
            assert_eq!(exact[&v(0)].to_u64(), Some(3));
            assert_eq!(exact[&v(3)].to_u64(), Some(5));
            assert!(att.stats.compile_steps > 0, "{algorithm} records compile work");
        }
    }

    #[test]
    fn interval_backends_bracket_ground_truth() {
        let phi = hard_function();
        let truth = {
            let tree = DTree::compile_full(
                phi.clone(),
                PivotHeuristic::MostFrequent,
                &Budget::unlimited(),
            )
            .unwrap();
            exaban_all(&tree)
        };
        for algorithm in [Algorithm::AdaBan, Algorithm::IchiBan] {
            let attributor = EngineConfig::new(algorithm).attributor();
            let att = attributor.attribute(&phi, &Budget::unlimited()).unwrap();
            for x in phi.universe().iter() {
                let Score::Interval(interval) = att.value(x).unwrap() else {
                    panic!("{algorithm} returns intervals");
                };
                let exact = truth.value(x).unwrap();
                assert!(&interval.lower <= exact && exact <= &interval.upper, "{algorithm} {x}");
            }
        }
    }

    #[test]
    fn adaban_on_a_completed_tree_pins_values_and_model_count() {
        let phi = example13();
        let attributor = EngineConfig::new(Algorithm::AdaBan).certain().attributor();
        let att = attributor.attribute(&phi, &Budget::unlimited()).unwrap();
        // ε = 0 forces every interval to a point.
        assert!(att.is_exact());
        let exact = att.exact_values().unwrap();
        assert_eq!(exact[&v(0)].to_u64(), Some(3));
        assert_eq!(exact[&v(3)].to_u64(), Some(5));
        // When the shared tree completed, the reused count pass reports #φ.
        if let Some(count) = &att.model_count {
            assert_eq!(count.to_u64(), Some(11));
        }
    }

    #[test]
    fn adaban_single_variable_entry_point() {
        let phi = hard_function();
        let attributor = EngineConfig::new(Algorithm::AdaBan).certain().attributor();
        let score = attributor.attribute_var(&phi, v(1), &Budget::unlimited()).unwrap();
        assert_eq!(Int::from(score.exact().unwrap()), phi.brute_force_banzhaf(v(1)));
    }

    #[test]
    fn out_of_universe_variable_scores_certified_zero_on_exact_backends() {
        let phi = example13();
        let exa = EngineConfig::new(Algorithm::ExaBan).attributor();
        let score = exa.attribute_var(&phi, v(99), &Budget::unlimited()).unwrap();
        assert_eq!(score.exact().unwrap().to_u64(), Some(0));
        // A randomized backend reports the same zero, but uncertified.
        let mc = EngineConfig::new(Algorithm::MonteCarlo).attributor();
        let score = mc.attribute_var(&phi, v(99), &Budget::unlimited()).unwrap();
        assert!(score.exact().is_none());
        assert_eq!(score.point(), 0.0);
    }

    #[test]
    fn ichiban_topk_certified_matches_exact_topk() {
        let phi = example13();
        let attributor = EngineConfig::new(Algorithm::IchiBan).certain().attributor();
        let topk = attributor.top_k(&phi, 2, &Budget::unlimited()).unwrap();
        assert!(topk.certified);
        assert_eq!(topk.order, vec![v(3), v(0)]);
    }

    #[test]
    fn default_topk_over_exact_scores_is_certified() {
        let phi = example13();
        let attributor = EngineConfig::new(Algorithm::ExaBan).attributor();
        let topk = attributor.top_k(&phi, 2, &Budget::unlimited()).unwrap();
        assert!(topk.certified);
        assert_eq!(topk.order, vec![v(3), v(0)]);
        // The heuristic baseline ranks but does not certify.
        let proxy = EngineConfig::new(Algorithm::CnfProxy).attributor();
        let ranked = proxy.rank(&phi, &Budget::unlimited()).unwrap();
        assert!(!ranked.certified);
        assert_eq!(ranked.order.len(), 4);
    }

    #[test]
    fn monte_carlo_is_deterministic_given_seed() {
        let phi = example13();
        let a = EngineConfig::new(Algorithm::MonteCarlo).with_seed(9).attributor();
        let b = EngineConfig::new(Algorithm::MonteCarlo).with_seed(9).attributor();
        let ea = a.attribute(&phi, &Budget::unlimited()).unwrap().estimates();
        let eb = b.attribute(&phi, &Budget::unlimited()).unwrap().estimates();
        assert_eq!(ea, eb);
    }

    #[test]
    fn budget_exhaustion_propagates() {
        let phi = hard_function();
        for algorithm in [Algorithm::ExaBan, Algorithm::AdaBan, Algorithm::Sig22] {
            let attributor = EngineConfig::new(algorithm).certain().attributor();
            let result = attributor.attribute(&phi, &Budget::with_max_steps(1));
            assert_eq!(result.unwrap_err(), Interrupted, "{algorithm}");
        }
    }

    fn example_weighted(kind: banzhaf_boolean::AggregateKind) -> WeightedDnf {
        use banzhaf_arith::Rational;
        WeightedDnf::from_weighted_clauses(
            kind,
            vec![
                (vec![v(0), v(1)], Rational::from(3i64)),
                (vec![v(0), v(2)], Rational::from(-2i64)),
                (vec![v(3)], Rational::from(7i64)),
            ],
        )
    }

    #[test]
    fn exaban_aggregate_matches_brute_force_for_every_kind() {
        use banzhaf_boolean::AggregateKind;
        for kind in AggregateKind::ALL {
            let w = example_weighted(kind);
            let attributor = EngineConfig::new(Algorithm::ExaBan).attributor();
            let att = attributor.attribute_aggregate(&w, &Budget::unlimited()).unwrap();
            assert!(att.is_exact(), "{kind}");
            assert_eq!(att.aggregate, Some(kind));
            assert_eq!(att.aggregate_total.as_ref(), Some(&w.brute_force_total()), "{kind}");
            for x in w.universe().iter() {
                assert_eq!(
                    att.value(x).unwrap().exact_rational().unwrap(),
                    w.brute_force_aggregate_banzhaf(x),
                    "{kind} {x}"
                );
            }
        }
    }

    #[test]
    fn mc_aggregate_is_deterministic_given_seed_and_stream() {
        use banzhaf_boolean::AggregateKind;
        let w = example_weighted(AggregateKind::Sum);
        let a = EngineConfig::new(Algorithm::MonteCarlo).with_seed(9).attributor();
        let b = EngineConfig::new(Algorithm::MonteCarlo).with_seed(9).attributor();
        let ea = a.attribute_aggregate_indexed(&w, 0, &Budget::unlimited()).unwrap();
        let eb = b.attribute_aggregate_indexed(&w, 0, &Budget::unlimited()).unwrap();
        assert_eq!(ea.estimates(), eb.estimates());
        assert_eq!(ea.aggregate, Some(AggregateKind::Sum));
        assert!(ea.aggregate_total.is_none(), "estimates certify no exact total");
    }

    #[test]
    #[should_panic(expected = "does not support aggregate lineages")]
    fn non_aggregate_backend_panics_on_aggregate_dispatch() {
        let w = example_weighted(banzhaf_boolean::AggregateKind::Count);
        let attributor = EngineConfig::new(Algorithm::Sig22).attributor();
        let _ = attributor.attribute_aggregate(&w, &Budget::unlimited());
    }
}
